"""Fig. 7 — vertical scalability of the request router (paper §V-B).

One router node swept over the c3 family against a fixed c3.8xlarge QoS
server.  Paper shape: throughput grows with instance size; small routers
(c3.large/xlarge) run out of CPU, from c3.2xlarge upward mild router CPU
under-utilization appears and pressure shifts to the QoS server.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.scale import Scale, current_scale
from repro.experiments.scaling import (
    ScalingPoint,
    scaling_report,
    sweep,
    vertical_points,
)
from repro.simnet.instances import C3_FAMILY

__all__ = ["run", "report", "DEFAULT_VALIDATE"]

#: Simulator-validated points in the quick profile (all under paper scale).
DEFAULT_VALIDATE = ("c3.large", "c3.xlarge")


def run(scale: Optional[Scale] = None,
        validate: Optional[tuple[str, ...]] = None,
        jobs: Optional[int] = None) -> list[ScalingPoint]:
    scale = scale or current_scale()
    if validate is None:
        validate = C3_FAMILY if scale.name == "paper" else DEFAULT_VALIDATE
    return sweep(vertical_points("router", C3_FAMILY),
                 validate=validate, scale=scale, jobs=jobs)


def report(points: Optional[list[ScalingPoint]] = None) -> str:
    points = points or run()
    return scaling_report(
        "Fig. 7: request router vertical scaling "
        "(1 router node vs 1x c3.8xlarge QoS server)", points)
