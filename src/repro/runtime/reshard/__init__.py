"""Live resharding plane: node join/leave with warm bucket-state migration.

The paper pins the partition map at a static ``CRC32(key) mod N``
(Fig. 2); this package makes ``N`` a live variable.  A topology change
is an epoch-numbered two-phase remap:

1. **PREPARE** — the coordinator announces the new map to every QoS
   backend (protocol-v2 TOPOLOGY frame).  Old owners open a *transfer
   window*: keys whose new owner differs get degraded default replies
   (the paper's §III-B degradation model) instead of bucket decisions,
   so no moved credit is spent after the snapshot is taken.
2. **Transfer** — each moved key's warm :class:`BucketSnapshot` —
   including the live lease ledger — travels to its new owner in
   SNAPSHOT_XFER chunks sized under the datagram limit, acknowledged
   per chunk and retried off a timer wheel.
3. **COMMIT** — routers atomically swap their backend list
   (:meth:`RequestRouterDaemon.apply_topology`), drop router-held
   leases for moved keys (the transferred ledger keeps the debits, so
   the over-admission bound is preserved), and the coordinator lifts
   the old owners' freeze.

Credit loss is bounded: after PREPARE is acknowledged the old owner
makes no further decisions on moved keys, so the snapshot is exact and
the only loss is the refill the moved buckets would have accrued during
the transfer window — at most one refill interval for any window
shorter than the interval (see ``DESIGN.md``, "Bounded credit loss").
"""

from repro.runtime.reshard.coordinator import (
    NodeHandle,
    ReshardCoordinator,
    ReshardReport,
)
from repro.runtime.reshard.state import ReshardState
from repro.runtime.reshard.topology import TopologyMap
from repro.runtime.reshard.xfer import (
    ReshardError,
    SnapshotSender,
    XferReport,
    broadcast_topology,
    chunk_snapshots,
)

__all__ = [
    "NodeHandle",
    "ReshardCoordinator",
    "ReshardError",
    "ReshardReport",
    "ReshardState",
    "SnapshotSender",
    "TopologyMap",
    "XferReport",
    "broadcast_topology",
    "chunk_snapshots",
]
