"""Fig. 6 — key pressure of the request-routing hash (paper §V-B).

500 000 QoS keys of four kinds (UUID, timestamp, English vocabulary,
sequential numbers) are routed across 20 QoS servers with
``CRC32(key) mod 20``.  Uniform routing means each server holds 5 % of the
keys; the paper measures min 4.933 %, max 5.065 %, standard deviation
< 0.03 % across all four populations.

This experiment is exact (pure computation) and reproduces the paper's
numbers in distribution, not just shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.hashing import key_pressure
from repro.experiments.scale import Scale, current_scale
from repro.metrics.report import format_table
from repro.workload.keygen import KEY_POPULATIONS

__all__ = ["run", "report", "PressureRow", "N_SERVERS"]

N_SERVERS = 20


@dataclass(frozen=True, slots=True)
class PressureRow:
    population: str
    n_keys: int
    min_pct: float
    max_pct: float
    std_pct: float

    @property
    def ideal_pct(self) -> float:
        return 100.0 / N_SERVERS


def run(scale: Scale | None = None, seed: int = 6) -> list[PressureRow]:
    scale = scale or current_scale()
    rows = []
    for label, factory in KEY_POPULATIONS.items():
        keys = factory(scale.fig6_keys, seed)
        pressure = key_pressure(keys, N_SERVERS)
        mean = sum(pressure) / len(pressure)
        std = math.sqrt(sum((p - mean) ** 2 for p in pressure) / len(pressure))
        rows.append(PressureRow(
            population=label, n_keys=len(keys),
            min_pct=min(pressure) * 100.0,
            max_pct=max(pressure) * 100.0,
            std_pct=std * 100.0))
    return rows


def report(rows: list[PressureRow] | None = None) -> str:
    rows = rows or run()
    table = format_table(
        ("Key population", "keys", "min %", "max %", "std %", "ideal %"),
        [(r.population, r.n_keys, round(r.min_pct, 3), round(r.max_pct, 3),
          round(r.std_pct, 3), r.ideal_pct) for r in rows],
        title=f"Fig. 6: key pressure across {N_SERVERS} QoS servers "
              "(paper: min 4.933%, max 5.065%, std < 0.03%)")
    return table
