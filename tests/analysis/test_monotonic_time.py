"""monotonic-time: time.time() is flagged everywhere, pragma for stamps."""

from __future__ import annotations

RULE = ["monotonic-time"]


def test_duration_arithmetic_flagged(lint):
    result = lint("""
    import time

    def measure(work):
        t0 = time.time()
        work()
        return time.time() - t0
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["monotonic-time"] * 2


def test_monotonic_and_perf_counter_pass(lint):
    result = lint("""
    import time

    def measure(work):
        t0 = time.perf_counter()
        work()
        return time.monotonic() - t0
    """, rules=RULE)
    assert result.ok


def test_module_alias_tracked(lint):
    result = lint("""
    import time as _time

    def now():
        return _time.time()
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["monotonic-time"]


def test_from_import_tracked(lint):
    result = lint("""
    from time import time as wall

    def now():
        return wall()
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["monotonic-time"]


def test_unrelated_time_attribute_not_flagged(lint):
    # ``obj.time()`` on a non-module receiver is someone else's method.
    result = lint("""
    def read(sample):
        return sample.time()
    """, rules=RULE)
    assert result.ok


def test_wall_clock_stamp_with_pragma_passes(lint):
    result = lint("""
    import time

    def machine_info():
        return {
            # Report stamp, not a duration input.
            "unix_time": time.time(),  # janus-lint: disable=monotonic-time
        }
    """, rules=RULE)
    assert result.ok
