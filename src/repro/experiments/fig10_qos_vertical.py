"""Fig. 10 — vertical scalability of the QoS server (paper §V-C).

One QoS server node swept over the c3 family behind five c3.8xlarge
routers (fixed, over-provisioned).  Paper shape: throughput grows with
instance size; routers sit far below saturation; the QoS server shows CPU
under-utilization attributed to its table-lock implementation.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.scale import Scale, current_scale
from repro.experiments.scaling import (
    ScalingPoint,
    scaling_report,
    sweep,
    vertical_points,
)
from repro.simnet.instances import C3_FAMILY

__all__ = ["run", "report", "DEFAULT_VALIDATE"]

DEFAULT_VALIDATE = ("c3.large", "c3.xlarge")


def run(scale: Optional[Scale] = None,
        validate: Optional[tuple[str, ...]] = None,
        jobs: Optional[int] = None) -> list[ScalingPoint]:
    scale = scale or current_scale()
    if validate is None:
        validate = C3_FAMILY if scale.name == "paper" else DEFAULT_VALIDATE
    return sweep(vertical_points("qos", C3_FAMILY),
                 validate=validate, scale=scale, jobs=jobs)


def report(points: Optional[list[ScalingPoint]] = None) -> str:
    points = points or run()
    return scaling_report(
        "Fig. 10: QoS server vertical scaling "
        "(5x c3.8xlarge routers vs 1 QoS server node)", points)
