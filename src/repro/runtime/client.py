"""QoS client for the real runtime (the paper's ``qos_client.php``).

:class:`QoSClient` keeps one persistent HTTP connection per thread to the
Janus endpoint (load balancer or a router directly) and exposes
:meth:`check` — the boolean key-value exchange the paper integrates into
applications with three lines of code::

    client = QoSClient("http://127.0.0.1:8080")
    if client.check(remote_addr):
        serve()
    else:
        throttle_403()

``fail_open`` controls what a *transport* failure (endpoint down) maps to;
the QoS protocol's own default-reply mechanism is separate and handled by
the router (§III-B).

:meth:`QoSClient.check_many` amortizes the HTTP hop: N keys travel in one
``POST /qos/batch`` exchange and the router fans them out over its
multiplexed UDP channels in a single pass.

Tracing: construct with ``trace_sample_rate > 0`` and the client becomes
the head of the trace — sampled checks mint a trace id, record a
``client.check`` span, and send the id with the request (``&trace=`` /
``"trace_id"``), which the router propagates down to the QoS server.
The id comes back in :attr:`QoSCheckResult.trace_id`; feed it to
``GET /trace/<id>`` (or ``janus obs trace``) for the full span tree.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from dataclasses import dataclass
from typing import Sequence
from urllib.parse import quote, urlparse

from repro.core.errors import CommunicationError
from repro.obs.tracing import HeadSampler, default_tracer, format_trace_id

__all__ = ["QoSClient", "QoSCheckResult"]


class _NoDelayHTTPConnection(http.client.HTTPConnection):
    """HTTPConnection with Nagle disabled (loopback latency)."""

    def connect(self) -> None:
        super().connect()
        import socket as _socket
        self.sock.setsockopt(_socket.IPPROTO_TCP, _socket.TCP_NODELAY, 1)


@dataclass(frozen=True, slots=True)
class QoSCheckResult:
    """Full response of one QoS check."""

    allowed: bool
    is_default_reply: bool
    attempts: int
    latency: float
    #: Trace id of this check (0 when untraced): nonzero when this client
    #: sampled the check or the router reported having traced it.
    trace_id: int = 0


class QoSClient:
    """Thread-safe client for a Janus HTTP endpoint."""

    def __init__(self, endpoint: str, *, timeout: float = 5.0,
                 fail_open: bool = True, trace_sample_rate: float = 0.0):
        parsed = urlparse(endpoint)
        if parsed.scheme != "http" or not parsed.hostname:
            raise CommunicationError(f"unsupported endpoint {endpoint!r}")
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout
        self.fail_open = fail_open
        self._local = threading.local()
        self.transport_errors = 0
        self._sampler = HeadSampler(trace_sample_rate)
        self._tracer = default_tracer()
        #: Set once the endpoint answers ``POST /qos/batch`` with 404/405
        #: (a pre-batch router): later batches skip the doomed POST — and
        #: the connection reset its error reply forces — and go straight
        #: to per-key GETs on the persistent connection.
        self._batch_unsupported = False

    def _sample_trace(self) -> int:
        return (self._tracer.new_trace_id() if self._sampler.sample()
                else 0)

    def _connection(self) -> http.client.HTTPConnection:
        conn = getattr(self._local, "conn", None)
        if conn is None:
            conn = _NoDelayHTTPConnection(
                self.host, self.port, timeout=self.timeout)
            self._local.conn = conn
        return conn

    def check_detailed(self, key: str, cost: float = 1.0) -> QoSCheckResult:
        """One QoS request; returns the full result."""
        trace_id = self._sample_trace()
        path = f"/qos?key={quote(key, safe='')}&cost={cost}"
        if trace_id:
            path += f"&trace={format_trace_id(trace_id)}"
            span = self._tracer.start(trace_id, "client.check", "client",
                                      {"key": key})
        else:
            span = None
        t0 = time.monotonic()
        for fresh in (False, True):
            conn = self._connection()
            try:
                if fresh:
                    conn.close()
                conn.request("GET", path)
                response = conn.getresponse()
                body = response.read()
                if response.status != 200:
                    raise CommunicationError(
                        f"endpoint returned HTTP {response.status}")
                payload = json.loads(body)
                result = QoSCheckResult(
                    allowed=bool(payload["allow"]),
                    is_default_reply=bool(payload.get("default", False)),
                    attempts=int(payload.get("attempts", 1)),
                    latency=time.monotonic() - t0,
                    trace_id=trace_id)
                if span is not None:
                    self._tracer.finish(span, allow=result.allowed)
                return result
            except (OSError, http.client.HTTPException, json.JSONDecodeError,
                    KeyError, ValueError):
                # Stale keep-alive connection: retry once on a fresh one.
                self._local.conn = None
                if fresh:
                    break
        self.transport_errors += 1
        if span is not None:
            self._tracer.finish(span, transport_error=True)
        return QoSCheckResult(
            allowed=self.fail_open, is_default_reply=True, attempts=0,
            latency=time.monotonic() - t0, trace_id=trace_id)

    def check(self, key: str, cost: float = 1.0) -> bool:
        """The paper's ``qos_check($key)``: TRUE admits, FALSE throttles."""
        return self.check_detailed(key, cost).allowed

    def check_many_detailed(self, keys: Sequence[str],
                            cost: float = 1.0) -> list[QoSCheckResult]:
        """Many QoS checks in one ``POST /qos/batch`` round trip.

        The router resolves the whole batch concurrently (items sharing a
        backend share one wire frame), so N checks cost one HTTP exchange
        instead of N.  Results come back in key order.  Against a router
        that predates the batch endpoint (HTTP 404/405) this falls back
        to per-key :meth:`check_detailed` calls.
        """
        if not keys:
            return []
        if self._batch_unsupported:
            return self._check_many_fallback(keys, cost)
        trace_id = self._sample_trace()
        payload: dict = {"items": [{"key": key, "cost": cost}
                                   for key in keys]}
        if trace_id:
            payload["trace_id"] = format_trace_id(trace_id)
            span = self._tracer.start(trace_id, "client.check", "client",
                                      {"n": len(keys)})
        else:
            span = None
        body = json.dumps(payload).encode()
        t0 = time.monotonic()
        for fresh in (False, True):
            conn = self._connection()
            try:
                if fresh:
                    conn.close()
                conn.request("POST", "/qos/batch", body=body,
                             headers={"Content-Type": "application/json"})
                response = conn.getresponse()
                payload_bytes = response.read()
                if response.status in (404, 405):   # pre-batch router
                    self._batch_unsupported = True
                    if response.will_close:
                        # A stdlib-style error reply carries
                        # ``Connection: close``: drop the dead socket now
                        # so the first fallback GET reconnects cleanly
                        # instead of burning a failed attempt on it.
                        conn.close()
                        self._local.conn = None
                    if span is not None:
                        self._tracer.finish(span, fallback=True)
                    return self._check_many_fallback(keys, cost)
                if response.status != 200:
                    raise CommunicationError(
                        f"endpoint returned HTTP {response.status}")
                results = json.loads(payload_bytes)["results"]
                if len(results) != len(keys):
                    raise CommunicationError(
                        f"batch answered {len(results)} of {len(keys)} items")
                latency = time.monotonic() - t0
                if span is not None:
                    self._tracer.finish(span)
                return [QoSCheckResult(
                            allowed=bool(entry["allow"]),
                            is_default_reply=bool(entry.get("default", False)),
                            attempts=int(entry.get("attempts", 1)),
                            latency=latency,
                            trace_id=trace_id)
                        for entry in results]
            except (OSError, http.client.HTTPException, json.JSONDecodeError,
                    KeyError, TypeError, ValueError):
                self._local.conn = None
                if fresh:
                    break
        self.transport_errors += 1
        if span is not None:
            self._tracer.finish(span, transport_error=True)
        latency = time.monotonic() - t0
        return [QoSCheckResult(allowed=self.fail_open, is_default_reply=True,
                               attempts=0, latency=latency,
                               trace_id=trace_id)
                for _ in keys]

    def _check_many_fallback(self, keys: Sequence[str],
                             cost: float = 1.0) -> list[QoSCheckResult]:
        """Per-key GETs for pre-batch routers, on one persistent
        connection (:meth:`check_detailed` reuses the thread-local
        keep-alive socket, so the whole batch costs N pipelined requests
        on a single connection instead of a reconnect per batch)."""
        return [self.check_detailed(key, cost) for key in keys]

    def check_many(self, keys: Sequence[str], cost: float = 1.0) -> list[bool]:
        """Batch form of :meth:`check`: one verdict per key, in order."""
        return [result.allowed
                for result in self.check_many_detailed(keys, cost)]

    def close(self) -> None:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            conn.close()
            self._local.conn = None
