"""Clock abstraction shared by the real runtime and the simulator.

Every time-dependent component in the library (leaky buckets, sync loops,
latency recorders) takes a ``clock`` callable returning seconds as ``float``.
The real runtime passes :func:`time.monotonic`; the discrete-event simulator
passes its engine's ``now`` method.  Keeping this a plain callable (rather
than an interface) keeps the hot admission path free of attribute lookups.
"""

from __future__ import annotations

import time
from typing import Callable

Clock = Callable[[], float]

#: Default wall clock used outside the simulator.
MONOTONIC: Clock = time.monotonic


class ManualClock:
    """A hand-advanced clock for tests.

    >>> clk = ManualClock()
    >>> clk()
    0.0
    >>> clk.advance(1.5)
    >>> clk()
    1.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    def advance(self, dt: float) -> None:
        if dt < 0:
            raise ValueError(f"cannot move time backwards (dt={dt})")
        self._now += dt

    def set(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"cannot move time backwards ({t} < {self._now})")
        self._now = float(t)
