"""Wire-model extractor: lift the protocol from code, gate it against docs.

``core/protocol.py`` and ``docs/PROTOCOL.md`` describe the same nine
v1/v2 frame layouts — one in ``struct`` formats, one in tables.  Nothing
before this PR checked them against each other, and reproducibility
reports (Pellegrini, PAPERS.md) show artifact/write-up drift is the
default failure mode, not the exception.  This module closes that gap
statically:

- :func:`extract_wire_model` walks the protocol module's AST (no import,
  no execution) and lifts the **wire model**: frame-type constants
  (``_TYPE_*``), every ``struct.Struct`` format with its computed size,
  and the numeric protocol constants (``MAGIC``, ``MAX_*``, ``FLAG_*``,
  ``TOPOLOGY_*`` …), folding simple constant arithmetic like
  ``2**32 - 1`` and ``_XFER_HEAD.size``.
- :func:`check_doc` compares that model against the frame tables in
  ``docs/PROTOCOL.md`` — the ``type N NAME`` rows, magic, count/key/
  datagram/TTL/lease bounds, trace flag and topology phase bytes — and
  returns one drift message per disagreement.  The
  :class:`WireDocDriftChecker` lint rule turns any drift into a CI
  failure.
- :func:`build_seed_corpus` emits boundary-value datagrams straight from
  the extracted model (maximum counts, maximum key, off-by-one
  truncations, reserved values) as seeds for the protocol fuzz tests in
  ``tests/core/test_protocol.py`` — so the fuzzers start at the edges
  the *code* declares, not edges a test author remembered.

The extracted spec serializes to JSON (:meth:`WireModel.as_dict`,
``janus lint --wire-spec``) and is uploaded as a CI artifact, giving
external implementers a machine-readable contract.
"""

from __future__ import annotations

import ast
import json
import re
import struct as struct_mod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional

from repro.analysis.framework import Checker, Finding, ModuleSource

__all__ = [
    "WireModel",
    "WireDocDriftChecker",
    "build_seed_corpus",
    "check_doc",
    "extract_wire_model",
    "find_protocol_doc",
    "write_corpus",
]

#: Schema version of the wire-spec JSON document.
WIRE_SPEC_VERSION = 1


@dataclass(slots=True)
class WireModel:
    """Everything the extractor lifted from one protocol module."""

    module_path: str
    #: frame-type name (``_TYPE_`` stripped) → type byte value
    frame_types: "dict[str, int]" = field(default_factory=dict)
    #: struct constant name → ``{"format": str, "size": int}``
    structs: "dict[str, dict]" = field(default_factory=dict)
    #: every other module-level integer constant
    constants: "dict[str, int]" = field(default_factory=dict)
    #: source line of each lifted name, for findings
    lines: "dict[str, int]" = field(default_factory=dict)

    def constant(self, name: str) -> Optional[int]:
        return self.constants.get(name)

    def as_dict(self) -> dict:
        return {
            "version": WIRE_SPEC_VERSION,
            "module": self.module_path,
            "frame_types": dict(sorted(self.frame_types.items(),
                                       key=lambda kv: kv[1])),
            "structs": {name: dict(info) for name, info
                        in sorted(self.structs.items())},
            "constants": dict(sorted(self.constants.items())),
        }


class _ConstFolder:
    """Fold the constant arithmetic protocol modules actually use."""

    def __init__(self, model: WireModel):
        self.model = model

    def fold(self, node: ast.expr) -> Optional[int]:
        if isinstance(node, ast.Constant) and \
                isinstance(node.value, int) and \
                not isinstance(node.value, bool):
            return node.value
        if isinstance(node, ast.Name):
            return self.model.constants.get(node.id)
        if isinstance(node, ast.Attribute) and node.attr == "size" and \
                isinstance(node.value, ast.Name):
            info = self.model.structs.get(node.value.id)
            return info["size"] if info else None
        if isinstance(node, ast.UnaryOp) and \
                isinstance(node.op, ast.USub):
            value = self.fold(node.operand)
            return -value if value is not None else None
        if isinstance(node, ast.BinOp):
            left, right = self.fold(node.left), self.fold(node.right)
            if left is None or right is None:
                return None
            if isinstance(node.op, ast.Add):
                return left + right
            if isinstance(node.op, ast.Sub):
                return left - right
            if isinstance(node.op, ast.Mult):
                return left * right
            if isinstance(node.op, ast.FloorDiv) and right != 0:
                return left // right
            if isinstance(node.op, ast.Pow) and 0 <= right <= 64:
                return left ** right
            if isinstance(node.op, ast.LShift) and 0 <= right <= 64:
                return left << right
        return None


def _struct_format(value: ast.expr) -> Optional[str]:
    """The format string of a ``struct.Struct("...")`` call, if that is
    what ``value`` is."""
    if not (isinstance(value, ast.Call) and value.args
            and isinstance(value.args[0], ast.Constant)
            and isinstance(value.args[0].value, str)):
        return None
    func = value.func
    named_struct = (
        (isinstance(func, ast.Attribute) and func.attr == "Struct")
        or (isinstance(func, ast.Name) and func.id == "Struct"))
    return value.args[0].value if named_struct else None


def extract_wire_model(module: ModuleSource) -> WireModel:
    """Statically lift the wire model from a parsed protocol module."""
    model = WireModel(module.path)
    folder = _ConstFolder(model)
    for node in module.tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1 \
                or not isinstance(node.targets[0], ast.Name):
            continue
        name = node.targets[0].id
        fmt = _struct_format(node.value)
        if fmt is not None:
            try:
                size = struct_mod.calcsize(fmt)
            except struct_mod.error:
                continue          # protocol-invariants rule reports this
            model.structs[name] = {"format": fmt, "size": size}
            model.lines[name] = node.lineno
            continue
        value = folder.fold(node.value)
        if value is None:
            continue
        model.lines[name] = node.lineno
        if name.startswith("_TYPE_") and name != "_TYPE_MASK":
            model.frame_types[name[len("_TYPE_"):]] = value
        else:
            model.constants[name] = value
    return model


# ----------------------------------------------------------------- #
# doc cross-check
# ----------------------------------------------------------------- #

#: ``type 6  SNAPSHOT_XFER`` rows in the doc's frame tables.
_DOC_TYPE_ROW = re.compile(r"^type\s+(\d+)\s+([A-Z][A-Z_]+)\b",
                           re.MULTILINE)

#: Scalar doc claims checked against model constants: each pattern's
#: first group captures the documented number (underscores allowed).
_DOC_SCALARS: "tuple[tuple[str, re.Pattern, str], ...]" = (
    ("MAX_FRAME_MESSAGES",
     re.compile(r"1 <= C <= ([\d_]+)"),
     "v2 frame count bound"),
    ("MAX_KEY_BYTES",
     re.compile(r"key length L \(u16, <= ([\d_]+)\)"),
     "key length bound"),
    ("MAX_DATAGRAM_BYTES",
     re.compile(r"([\d_]+)-byte datagram ceiling"),
     "datagram ceiling"),
    ("MAX_LEASE_TTL_MS",
     re.compile(r"ttl_ms \(u32, 0\.\.([\d_]+)\)"),
     "lease TTL bound"),
    ("MAX_BUCKET_LEASES",
     re.compile(r"lease count N \(u16, <= ([\d_]+)\)"),
     "per-bucket lease bound"),
)

#: v1/v2 basic-frame types documented inline rather than as table rows.
_DOC_INLINE_TYPES = re.compile(
    r"type \((\d+)=request,?\s*(\d+)=response\)")

_DOC_PHASES = re.compile(
    r"phase \((\d+) = PREPARE, (\d+) = COMMIT, (\d+) = ABORT\)")


def check_doc(model: WireModel, doc_text: str) -> "list[str]":
    """Compare the extracted model against a PROTOCOL.md; return drifts."""
    drifts: "list[str]" = []
    doc_types = {name: int(num)
                 for num, name in _DOC_TYPE_ROW.findall(doc_text)}
    basic = {"REQUEST", "RESPONSE"}
    for name, value in sorted(model.frame_types.items(),
                              key=lambda kv: kv[1]):
        if name in basic:
            continue
        if name not in doc_types:
            drifts.append(f"frame type {name} (= {value}) has no "
                          f"'type N {name}' row in the doc's tables")
        elif doc_types[name] != value:
            drifts.append(f"doc table says type {doc_types[name]} "
                          f"{name} but the code defines type {value}")
    for name, value in sorted(doc_types.items()):
        if name not in model.frame_types:
            drifts.append(f"doc table lists type {value} {name} but the "
                          f"code defines no _TYPE_{name}")
    inline = _DOC_INLINE_TYPES.search(doc_text)
    if inline is None:
        drifts.append("doc is missing the v1 'type (1=request, "
                      "2=response)' line")
    else:
        for doc_val, name in zip(map(int, inline.groups()),
                                 ("REQUEST", "RESPONSE")):
            code_val = model.frame_types.get(name)
            if code_val is not None and code_val != doc_val:
                drifts.append(f"doc says {name.lower()} is type "
                              f"{doc_val} but the code defines "
                              f"type {code_val}")
    magic = model.constant("MAGIC")
    if magic is not None and f"0x{magic:04X}" not in doc_text:
        drifts.append(f"doc never states the magic 0x{magic:04X}")
    flag = model.constant("FLAG_FRAME_TRACED")
    if flag is not None and f"0x{flag:02X}" not in doc_text:
        drifts.append(f"doc never states the trace flag bit 0x{flag:02X}")
    for const, pattern, label in _DOC_SCALARS:
        value = model.constant(const)
        if value is None:
            continue
        claims = [int(m.replace("_", ""))
                  for m in pattern.findall(doc_text)]
        if not claims:
            drifts.append(f"doc never states the {label} "
                          f"({const} = {value})")
            continue
        for claim in claims:
            if claim != value:
                drifts.append(f"doc claims {label} {claim} but "
                              f"{const} = {value}")
    phases = _DOC_PHASES.search(doc_text)
    if phases is not None:
        for doc_val, const in zip(
                map(int, phases.groups()),
                ("TOPOLOGY_PREPARE", "TOPOLOGY_COMMIT", "TOPOLOGY_ABORT")):
            code_val = model.constant(const)
            if code_val is not None and code_val != doc_val:
                drifts.append(f"doc phase table says {const.split('_')[1]}"
                              f" = {doc_val} but {const} = {code_val}")
    elif model.constant("TOPOLOGY_PREPARE") is not None:
        drifts.append("doc is missing the topology phase byte table")
    return drifts


def find_protocol_doc(module_path: str) -> "Optional[Path]":
    """Locate ``docs/PROTOCOL.md`` above a protocol module, if present."""
    path = Path(module_path).resolve()
    for parent in list(path.parents)[:8]:
        candidate = parent / "docs" / "PROTOCOL.md"
        if candidate.is_file():
            return candidate
    return None


class WireDocDriftChecker(Checker):
    """``core/protocol.py`` must agree with ``docs/PROTOCOL.md``."""

    rule = "wire-doc-drift"
    description = ("extract the wire model (frame types, struct formats, "
                   "bounds) from core/protocol.py and fail on any "
                   "disagreement with docs/PROTOCOL.md's frame tables")
    #: Depends on a file outside the linted tree, so the incremental
    #: cache must always re-run it (see repro.analysis.cache).
    cacheable = False

    def applies_to(self, module: ModuleSource) -> bool:
        path = Path(module.path)
        return path.name == "protocol.py" and "core" in path.parts

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        doc = find_protocol_doc(module.path)
        if doc is None:
            return                 # fixture tree without docs/: nothing to gate
        model = extract_wire_model(module)
        if not model.frame_types:
            return                 # not actually a wire-protocol module
        doc_text = doc.read_text(encoding="utf-8")
        anchor = min(model.lines.values(), default=1)
        for drift in check_doc(model, doc_text):
            yield Finding(rule=self.rule, path=module.path, line=anchor,
                          col=1, message=f"{doc.name} drift: {drift}")


# ----------------------------------------------------------------- #
# boundary-value seed corpus
# ----------------------------------------------------------------- #

def build_seed_corpus(model: WireModel) -> "dict[str, bytes]":
    """Boundary-value datagrams derived from the extracted model.

    Built from the *model*, not from importing the protocol module —
    if extraction drifts from the code, round-tripping these seeds
    through the real decoders fails loudly in the corpus test.
    """
    magic = model.constant("MAGIC") or 0
    v2 = model.constant("VERSION2") or 2
    v1 = model.constant("VERSION") or 1
    max_msgs = model.constant("MAX_FRAME_MESSAGES") or 256
    max_key = model.constant("MAX_KEY_BYTES") or 4096
    traced = model.constant("FLAG_FRAME_TRACED") or 0x80
    req = model.frame_types.get("REQUEST", 1)
    resp = model.frame_types.get("RESPONSE", 2)

    def v2_header(mtype: int, count: int) -> bytes:
        return struct_mod.pack("!HBBH", magic, v2, mtype, count)

    def v2_request(count: int, key: bytes) -> bytes:
        entry = struct_mod.pack("!QH", 1, len(key)) + key + \
            struct_mod.pack("!d", 1.0)
        return v2_header(req, count) + entry * count

    corpus: "dict[str, bytes]" = {
        # valid boundary forms — decoders must accept these exactly
        "v1_request_min": struct_mod.pack("!HBBQ", magic, v1, req, 1)
        + struct_mod.pack("!H", 1) + b"k" + struct_mod.pack("!d", 1.0),
        "v1_response_min": struct_mod.pack("!HBBQ", magic, v1, resp, 1)
        + struct_mod.pack("!BB", 1, 0),
        "v2_request_one": v2_request(1, b"k"),
        "v2_request_max_key": v2_request(1, b"k" * max_key),
        "v2_response_one": v2_header(resp, 1)
        + struct_mod.pack("!QBB", 1, 1, 0),
        "v2_traced_request": v2_header(req | traced, 1)
        + struct_mod.pack("!Q", 7)
        + struct_mod.pack("!QH", 1, 1) + b"k"
        + struct_mod.pack("!d", 1.0),
        # malformed boundary forms — decoders must raise, never crash
        "empty": b"",
        "short_header": struct_mod.pack("!HB", magic, v2),
        "bad_magic": struct_mod.pack("!HBBH", (magic + 1) & 0xFFFF, v2,
                                     req, 1),
        "bad_version": struct_mod.pack("!HBBH", magic, v2 + 1, req, 1),
        "v2_count_zero": v2_header(req, 0),
        "v2_count_over": v2_header(req, max_msgs + 1),
        "v2_count_lies": v2_request(2, b"k")[:-1],
        "v2_key_over": v2_request(1, b"k" * (max_key + 1)),
        "v2_traced_zero_id": v2_header(req | traced, 1)
        + struct_mod.pack("!Q", 0) + struct_mod.pack("!QH", 1, 1)
        + b"k" + struct_mod.pack("!d", 1.0),
        "v2_truncated_trace": v2_header(req | traced, 1) + b"\x00\x07",
    }
    # one empty-body frame per declared type: exercises every decoder's
    # truncation path, including types this build doesn't know yet
    for name, value in sorted(model.frame_types.items()):
        corpus[f"v2_{name.lower()}_empty_body"] = v2_header(value, 1)
    if "TOPOLOGY" in model.frame_types:
        corpus["v2_topology_epoch_zero"] = (
            v2_header(model.frame_types["TOPOLOGY"], 1)
            + struct_mod.pack("!IB", 0, 0)
            + struct_mod.pack("!B", 1) + b"h" + struct_mod.pack("!H", 1))
    if "XFER_ACK" in model.frame_types:
        corpus["v2_ack_epoch_zero"] = (
            v2_header(model.frame_types["XFER_ACK"], 1)
            + struct_mod.pack("!QIH", 1, 0, 0))
    return corpus


#: Corpus seeds every decoder must *accept*; the rest must raise
#: ProtocolError.
VALID_SEEDS = frozenset({
    "v1_request_min", "v1_response_min", "v2_request_one",
    "v2_request_max_key", "v2_response_one", "v2_traced_request",
})


def write_corpus(model: WireModel, directory: "str | Path") -> Path:
    """Write the seed corpus as ``.bin`` files plus a JSON manifest."""
    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    corpus = build_seed_corpus(model)
    manifest = {}
    for name, blob in sorted(corpus.items()):
        (target / f"{name}.bin").write_bytes(blob)
        manifest[name] = {"bytes": len(blob),
                          "valid": name in VALID_SEEDS}
    (target / "manifest.json").write_text(
        json.dumps({"version": WIRE_SPEC_VERSION, "seeds": manifest},
                   indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return target


def _main(argv: "Optional[list[str]]" = None) -> int:
    """``python -m repro.analysis.wiremodel PROTO.py [--out F] [...]``"""
    import argparse
    import sys
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.wiremodel",
        description="extract the wire model from a protocol module")
    parser.add_argument("module", help="path to the protocol module")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the wire-spec JSON here (default: "
                             "stdout)")
    parser.add_argument("--corpus", metavar="DIR", default=None,
                        help="also write the boundary-value seed corpus")
    parser.add_argument("--check-doc", metavar="FILE", default=None,
                        help="check against this PROTOCOL.md (default: "
                             "auto-discover; '-' to skip)")
    args = parser.parse_args(argv)
    text = Path(args.module).read_text(encoding="utf-8")
    model = extract_wire_model(ModuleSource(args.module, text))
    spec = json.dumps(model.as_dict(), indent=2, sort_keys=True) + "\n"
    if args.out:
        Path(args.out).write_text(spec, encoding="utf-8")
    else:
        sys.stdout.write(spec)
    if args.corpus:
        write_corpus(model, args.corpus)
    doc_path: "Optional[Path]" = None
    if args.check_doc and args.check_doc != "-":
        doc_path = Path(args.check_doc)
    elif args.check_doc != "-":
        doc_path = find_protocol_doc(args.module)
    if doc_path is not None:
        drifts = check_doc(model, doc_path.read_text(encoding="utf-8"))
        for drift in drifts:
            print(f"drift: {drift}", file=sys.stderr)
        return 1 if drifts else 0
    return 0


if __name__ == "__main__":
    import sys
    sys.exit(_main())
