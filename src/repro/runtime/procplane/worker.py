"""Shard worker process: daemon subclass, spawn target, forward envelope.

Everything in this module must be picklable or importable from a fresh
``spawn`` interpreter: :class:`WorkerSpec` travels over the spawn
pickle, :func:`worker_main` is the process target, and the daemon is
reconstructed inside the child from the spec alone (the parent's
``RuleStore`` never crosses the process boundary — rules travel as a
tuple and seed an in-process :class:`InMemoryRuleSource`).
"""

from __future__ import annotations

import os
import signal
import socket
import struct
import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.admission import BucketSnapshot, InMemoryRuleSource
from repro.core.config import ProcPlaneConfig, ServerConfig
from repro.core.errors import ProtocolError
from repro.core.hashing import crc32_of
from repro.core.protocol import (
    LeaseRequest,
    QoSRequest,
    VERSION2,
    decode_any_traced,
    encode_lease_request_frame,
    encode_request_frame_parts,
)
from repro.core.rules import QoSRule
from repro.obs.recorder import global_flight_recorder
from repro.obs.tracing import global_trace_buffer
from repro.runtime.udp_server import _RECV_BUFFER, QoSServerDaemon

__all__ = [
    "FORWARD_MAGIC",
    "ShardWorkerDaemon",
    "WorkerSpec",
    "pack_forward",
    "unpack_forward",
    "worker_main",
]

#: Sibling-forward envelope marker.  A forwarded datagram is
#: ``FORWARD_MAGIC + ipv4(router) + port(router) + inner_frame`` so the
#: owning sibling can reply to the router directly — the forwarding
#: worker never sits on the return path.
FORWARD_MAGIC = b"JXF1"

_FORWARD_HEADER = struct.Struct("!4sH")     # ipv4 (inet_aton) + port
_FORWARD_PREFIX = len(FORWARD_MAGIC) + _FORWARD_HEADER.size


def pack_forward(payload: bytes, reply_addr: "tuple[str, int]") -> bytes:
    """Wrap ``payload`` so the receiving sibling replies to ``reply_addr``."""
    host, port = reply_addr
    return (FORWARD_MAGIC
            + _FORWARD_HEADER.pack(socket.inet_aton(host), port)
            + payload)


def unpack_forward(data: bytes) -> "Optional[tuple[bytes, tuple[str, int]]]":
    """Inverse of :func:`pack_forward`; ``None`` if not an envelope."""
    if len(data) <= _FORWARD_PREFIX or not data.startswith(FORWARD_MAGIC):
        return None
    packed_host, port = _FORWARD_HEADER.unpack_from(data, len(FORWARD_MAGIC))
    return data[_FORWARD_PREFIX:], (socket.inet_ntoa(packed_host), port)


@dataclass(frozen=True, slots=True)
class WorkerSpec:
    """Everything one worker process needs, in picklable form.

    ``shard_index``/``n_shards`` are *global* over the whole cluster
    shard space (``n_qos_nodes * processes`` when several multi-process
    nodes share one router partitioner), so a worker's advisory
    ownership test matches the router's CRC32 routing exactly.
    """

    shard_index: int
    n_shards: int
    name: str
    host: str = "127.0.0.1"
    #: Private per-worker port; 0 binds ephemeral (reported in "ready").
    port: int = 0
    #: Shared SO_REUSEPORT fan-in port ("reuseport" mode only); 0 on the
    #: first worker means bind-ephemeral-and-report, siblings then get
    #: the concrete port.
    node_port: int = 0
    fanin: str = "portmap"
    server: ServerConfig = field(default_factory=ServerConfig)
    plane: ProcPlaneConfig = field(default_factory=ProcPlaneConfig)
    rules: "tuple[QoSRule, ...]" = ()
    #: Bucket state to re-seed after a crash restart.
    snapshots: "tuple[BucketSnapshot, ...]" = ()


class ShardWorkerDaemon(QoSServerDaemon):
    """A :class:`QoSServerDaemon` owning one CRC32 shard range.

    In ``"reuseport"`` mode the daemon additionally binds the shared
    node port with ``SO_REUSEPORT`` and runs a fan-in thread that splits
    each kernel-delivered frame by owner: its own share is injected into
    the local FIFO, the rest is forwarded to the owning sibling wrapped
    in the :func:`pack_forward` envelope (the sibling replies to the
    router directly, so a forwarded message costs exactly one extra
    local hop and no extra return hop).
    """

    def __init__(self, spec: WorkerSpec, rule_source):
        self.spec = spec
        super().__init__(
            rule_source,
            host=spec.host,
            port=spec.port,
            config=spec.server,
            name=spec.name,
            shard_range=(spec.shard_index, spec.n_shards),
        )
        self.forwarded_out = 0          # messages handed to a sibling
        self.forwarded_in = 0           # envelopes unwrapped here
        self.forward_drops = 0          # owner's port not yet known
        self.fanin_frames = 0           # datagrams taken off the shared port
        self._sibling_ports: "list[int]" = []
        self._fanin_sock: Optional[socket.socket] = None
        self.fanin_address: "Optional[tuple[str, int]]" = None
        labels = {"server": spec.name, "shard": str(spec.shard_index)}
        self.metrics.counter(
            "janus_worker_forwarded_out_total",
            "Messages forwarded to the owning sibling",
            fn=lambda: self.forwarded_out, **labels)
        self.metrics.counter(
            "janus_worker_forwarded_in_total",
            "Forward envelopes received from siblings",
            fn=lambda: self.forwarded_in, **labels)
        self.metrics.counter(
            "janus_worker_forward_drops_total",
            "Messages dropped because the owner's port was unknown",
            fn=lambda: self.forward_drops, **labels)
        self.metrics.counter(
            "janus_worker_fanin_frames_total",
            "Datagrams received on the shared SO_REUSEPORT port",
            fn=lambda: self.fanin_frames, **labels)
        # Live shard range: starts at the spec's values, retargeted by a
        # supervisor ("shard_range", ...) control message when a reshard
        # renumbers the global shard space.
        self._shard_index = spec.shard_index
        self._n_shards = spec.n_shards
        if spec.fanin == "reuseport":
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
            sock.bind((spec.host, spec.node_port))
            sock.settimeout(self.config.recv_timeout)
            self._fanin_sock = sock
            self.fanin_address = sock.getsockname()
            # Reply from the shared port: the router's connected channel
            # socket only accepts datagrams whose source address is the
            # peer it connected to.
            self.reply_sock = sock
            # Routers aim at the shared fan-in address, so topology
            # ownership during a reshard is judged against it too
            # (node-granularity moves in reuseport mode).
            self.reshard.address = tuple(self.fanin_address)

    # ------------------------------------------------------------------ #

    def _unwrap(self, data: bytes, addr):
        """Strip the sibling-forward envelope (QoSServerDaemon hook)."""
        inner = unpack_forward(data)
        if inner is None:
            return data, addr
        self.forwarded_in += 1
        return inner

    def set_sibling_ports(self, ports: Sequence[int]) -> None:
        """Install the port map (indexed by global shard index)."""
        self._sibling_ports = list(ports)

    def set_shard_range(self, shard_index: int, n_shards: int) -> None:
        """Retarget this worker's global shard range (live reshard).

        A topology change renumbers the global shard space (``N*T`` to
        ``M*T``); the supervisor pushes each surviving worker its new
        index so the advisory ownership test, the fan-in split and rule
        revocation scans agree with the routers' new map.  Ownership is
        advisory (the controller still decides any key it is handed), so
        a brief skew during the rollout only costs extra forwards.
        """
        self._shard_index = shard_index
        self._n_shards = n_shards
        self.controller.shard_range = (shard_index, n_shards)

    # ------------------------------------------------------------------ #

    def start(self) -> "ShardWorkerDaemon":
        if not self._started and self._fanin_sock is not None:
            self._threads.append(threading.Thread(
                target=self._fanin_listener, name=f"{self.name}.fanin",
                daemon=True))
        super().start()
        return self

    def stop(self) -> None:
        super().stop()
        if self._fanin_sock is not None:
            self._fanin_sock.close()

    # ------------------------------------------------------------------ #

    def _fanin_listener(self) -> None:
        """Drain the shared port, splitting each frame by shard owner."""
        sock = self._fanin_sock
        while not self._stop.is_set():
            try:
                data, addr = sock.recvfrom(_RECV_BUFFER)
            except socket.timeout:
                continue
            except OSError:
                return          # socket closed during shutdown
            self.fanin_frames += 1
            self._split_by_owner(data, addr)

    def _split_by_owner(self, data: bytes, addr) -> None:
        """Inject our share of a fan-in frame, forward the rest.

        A frame whose messages all belong to us is injected unmodified
        (no re-encode).  Mixed v2 frames are split into per-owner
        sub-frames that keep the original trace id, so server-side spans
        still join the router's trace.  v1 datagrams carry one message
        and are injected or forwarded whole.
        """
        try:
            version, trace_id, messages = decode_any_traced(data)
        except ProtocolError:
            self.malformed_packets += 1
            return
        n_shards = self._n_shards
        my_index = self._shard_index
        if messages and type(messages[0]) is LeaseRequest:
            # Lease frames route by key owner exactly like requests; the
            # owning shard debits its own bucket and replies (grant or
            # revoke) from the shared port, so the router's connected
            # socket accepts the source address.
            self._split_lease_frame(messages, addr, trace_id)
            return
        mine: "list[QoSRequest]" = []
        other: "dict[int, list[QoSRequest]]" = {}
        malformed = 0
        for message in messages:
            if not isinstance(message, QoSRequest):
                malformed += 1
                continue
            owner = crc32_of(message.key) % n_shards
            if owner == my_index:
                mine.append(message)
            else:
                other.setdefault(owner, []).append(message)
        if malformed:
            self.malformed_packets += malformed
        if not other:
            if mine:
                self.inject(data, addr)
            return
        if version != VERSION2:
            # v1 is single-message; "other" non-empty means it is not ours.
            self._forward(next(iter(other)), data, addr)
            return
        if mine:
            self.inject(
                encode_request_frame_parts(
                    [(m.request_id, m._validated_key_bytes(), m.cost)
                     for m in mine],
                    trace_id=trace_id),
                addr)
        for owner, batch in other.items():
            payload = encode_request_frame_parts(
                [(m.request_id, m._validated_key_bytes(), m.cost)
                 for m in batch],
                trace_id=trace_id)
            self._forward(owner, payload, addr, count=len(batch))

    def _split_lease_frame(self, messages, addr, trace_id: int) -> None:
        """Route one LEASE_REQ frame's entries to their owning shards."""
        n_shards = self._n_shards
        my_index = self._shard_index
        mine: "list[LeaseRequest]" = []
        other: "dict[int, list[LeaseRequest]]" = {}
        for message in messages:
            if type(message) is not LeaseRequest:
                self.malformed_packets += 1
                continue
            owner = crc32_of(message.key) % n_shards
            if owner == my_index:
                mine.append(message)
            else:
                other.setdefault(owner, []).append(message)
        if mine:
            self.inject(encode_lease_request_frame(mine, trace_id), addr)
        for owner, batch in other.items():
            self._forward(owner,
                          encode_lease_request_frame(batch, trace_id),
                          addr, count=len(batch))

    def _forward(self, owner: int, payload: bytes, reply_addr,
                 count: int = 1) -> None:
        ports = self._sibling_ports
        if owner >= len(ports) or not ports[owner]:
            # Port map not broadcast yet (startup / restart window); the
            # router's default-reply timer covers the gap.
            self.forward_drops += count
            return
        try:
            self._sock.sendto(pack_forward(payload, reply_addr),
                              (self.spec.host, ports[owner]))
            self.forwarded_out += count
        except OSError:
            self.forward_drops += count


# ---------------------------------------------------------------------- #
# Process entry point
# ---------------------------------------------------------------------- #

def _safe_send(conn, message) -> bool:
    try:
        conn.send(message)
        return True
    except (OSError, ValueError, BrokenPipeError):
        return False


def _handle_control(daemon: ShardWorkerDaemon, source: InMemoryRuleSource,
                    conn, message) -> bool:
    """Apply one supervisor control message; ``False`` means drain."""
    kind = message[0]
    if kind == "drain":
        return False
    if kind == "portmap":
        daemon.set_sibling_ports(message[1])
    elif kind == "rules":
        for rule in message[1]:
            source.put_rule(rule)
        daemon.controller.sync_rules()
    elif kind == "shard_range":
        daemon.set_shard_range(message[1], message[2])
    elif kind == "rpc":
        _, request_id, what, arg = message
        _safe_send(conn, ("rpc", request_id, _serve_rpc(daemon, what, arg)))
    return True


def _serve_rpc(daemon: ShardWorkerDaemon, what: str, arg):
    spec = daemon.spec
    if what == "stats":
        payload = {
            "name": spec.name,
            "shard": spec.shard_index,
            "pid": os.getpid(),
            "responses_sent": daemon.responses_sent,
            "malformed_packets": daemon.malformed_packets,
            "forwarded_in": daemon.forwarded_in,
            "forwarded_out": daemon.forwarded_out,
            "forward_drops": daemon.forward_drops,
            "fanin_frames": daemon.fanin_frames,
            "table_size": daemon.controller.table_size(),
            "table_bytes": daemon.controller.table_bytes(),
            "table_backend": spec.server.admission.table_backend,
        }
        payload.update(daemon.controller.stats_snapshot())
        payload["decisions"] = payload["admitted"] + payload["denied"]
        return payload
    if what == "metrics":
        return daemon.metrics.render()
    if what == "flight":
        return global_flight_recorder().dump()
    if what == "trace":
        return [span.as_dict()
                for span in global_trace_buffer().get(int(arg))]
    if what == "snapshot":
        return tuple(daemon.controller.snapshot())
    return None


def worker_main(spec: WorkerSpec, conn) -> None:
    """Process target: run one shard worker until drained or killed.

    Protocol on ``conn`` (a duplex :mod:`multiprocessing` pipe):

    - child -> parent: ``("ready", shard, port, fanin_port, pid)`` once,
      then ``("hb", shard, decisions)`` heartbeats,
      ``("snapshot", shard, buckets)`` periodic bucket state (crash
      re-seed material), ``("rpc", id, payload)`` replies, and a final
      ``("exit", shard, reason)``.
    - parent -> child: ``("drain",)``, ``("portmap", ports)``,
      ``("rules", rules)``, ``("rpc", id, what, arg)``.

    SIGTERM triggers the same drain as ``("drain",)``: the daemon stops
    accepting, finishes every queued frame, and exits after a final
    snapshot — in-flight requests are answered, not dropped.
    """
    terminate = threading.Event()
    signal.signal(signal.SIGTERM, lambda *_: terminate.set())
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    source = InMemoryRuleSource({rule.key: rule for rule in spec.rules})
    try:
        daemon = ShardWorkerDaemon(spec, source)
    except OSError as exc:
        _safe_send(conn, ("spawn_error", spec.shard_index, str(exc)))
        conn.close()
        return
    if spec.snapshots:
        daemon.controller.restore(spec.snapshots)
    daemon.start()
    fanin_port = daemon.fanin_address[1] if daemon.fanin_address else 0
    _safe_send(conn, ("ready", spec.shard_index, daemon.address[1],
                      fanin_port, os.getpid()))
    plane = spec.plane
    poll_step = plane.heartbeat_interval / 4
    last_heartbeat = last_snapshot = time.monotonic()
    reason = "drain"
    try:
        while not terminate.is_set():
            if conn.poll(poll_step):
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    reason = "pipe-closed"
                    break
                if not _handle_control(daemon, source, conn, message):
                    break
            now = time.monotonic()
            if now - last_heartbeat >= plane.heartbeat_interval:
                last_heartbeat = now
                _safe_send(conn, ("hb", spec.shard_index,
                                  daemon.controller.stats.decisions))
            if now - last_snapshot >= plane.snapshot_interval:
                last_snapshot = now
                _safe_send(conn, ("snapshot", spec.shard_index,
                                  tuple(daemon.controller.snapshot())))
    finally:
        daemon.stop()       # drains the FIFO: in-flight frames finish
        _safe_send(conn, ("snapshot", spec.shard_index,
                          tuple(daemon.controller.snapshot())))
        _safe_send(conn, ("exit", spec.shard_index, reason))
        conn.close()
