"""Tests for router-node failure and the LB health check."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient


def build(n_routers=3):
    cluster = SimJanusCluster(JanusConfig(topology=ClusterTopology(
        n_routers=n_routers, n_qos_servers=2)), seed=95)
    keys = uuid_keys(50, seed=95)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
    cluster.prewarm()
    return cluster, keys


class TestLbHealthCheck:
    def test_pick_skips_failed_router(self):
        cluster, keys = build(n_routers=3)
        cluster.routers[1].fail()
        picks = {cluster.gateway_lb.pick().name for _ in range(20)}
        assert picks == {"rr-0", "rr-2"}

    def test_all_routers_down_raises(self):
        cluster, keys = build(n_routers=2)
        for r in cluster.routers:
            r.fail()
        with pytest.raises(ConfigurationError):
            cluster.gateway_lb.pick()

    def test_traffic_continues_after_router_crash(self):
        cluster, keys = build(n_routers=3)
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="gateway")
        cluster.sim.run(until=1.0)
        cluster.routers[0].fail()
        cluster.sim.run(until=3.0)
        late = [r for r in client.log.records if r.finished_at > 1.1]
        assert len(late) > 100
        assert all(not r.is_default_reply for r in late)
        # The survivors carried the load.
        assert cluster.routers[1].requests_handled > 0
        assert cluster.routers[2].requests_handled > 0

    def test_retire_vs_fail(self):
        cluster, keys = build(n_routers=2)
        cluster.routers[0].retire()
        assert not cluster.routers[0].running
        # Retired node remains attached (drains in-flight responses)...
        assert cluster.net.is_attached("rr-0")
        cluster.routers[1].fail()
        # ...a failed node does not.
        assert not cluster.net.is_attached("rr-1")

    def test_dns_mode_client_retries_next_address(self):
        cluster, keys = build(n_routers=3)
        cluster.routers[0].fail()
        cluster.routers[1].fail()
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="dns", n_requests=20)
        cluster.sim.run(until=3.0)
        assert client.done
        assert len(client.log) == 20
        assert cluster.routers[2].requests_handled == 20
