"""Ablation: the local-QoS-table lock (paper §V-C future work).

The paper attributes QoS-server CPU under-utilization to "the
implementation of the locking mechanism being used to manage the QoS rules
in the local QoS table" and defers optimizing it.  This ablation measures
the optimization: the single synchronized table (``lock_shards=1``, the
paper's design) versus a sharded-lock table, under real multi-thread
contention on the real :class:`~repro.core.admission.AdmissionController`.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.admission import AdmissionController, InMemoryRuleSource
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule
from repro.metrics.report import format_table
from repro.workload.keygen import uuid_keys

N_THREADS = 4
CHECKS_PER_THREAD = 8_000
KEYS = uuid_keys(256, seed=88)
SOURCE = InMemoryRuleSource(
    {k: QoSRule(k, refill_rate=1e9, capacity=1e9) for k in KEYS})


def contended_run(lock_shards: int) -> float:
    """Run N threads of admission checks; return checks/second."""
    controller = AdmissionController(
        SOURCE, AdmissionConfig(lock_shards=lock_shards))
    for k in KEYS:          # materialize buckets outside the timed region
        controller.check(k)
    barrier = threading.Barrier(N_THREADS + 1)
    done = threading.Barrier(N_THREADS + 1)

    def worker(wid: int) -> None:
        local_keys = KEYS[wid::N_THREADS] or KEYS
        barrier.wait()
        i = 0
        for _ in range(CHECKS_PER_THREAD):
            controller.check(local_keys[i])
            i = (i + 1) % len(local_keys)
        done.wait()

    threads = [threading.Thread(target=worker, args=(w,), daemon=True)
               for w in range(N_THREADS)]
    for t in threads:
        t.start()
    import time
    barrier.wait()
    t0 = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - t0
    for t in threads:
        t.join()
    return N_THREADS * CHECKS_PER_THREAD / elapsed


@pytest.mark.parametrize("shards", [1, 16])
def test_locking_throughput(benchmark, shards):
    """pytest-benchmark point for each lock configuration."""
    throughput = benchmark.pedantic(
        contended_run, args=(shards,), rounds=3, iterations=1)
    assert throughput > 1_000       # sanity: the path works under threads


def test_locking_ablation_report(benchmark, report_sink):
    def sweep():
        return [(shards, round(contended_run(shards)))
                for shards in (1, 4, 16)]
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_sink(format_table(
        ("lock shards", "checks/s (4 threads)"), rows,
        title="Ablation: synchronized table (1 shard = paper) vs sharded "
              "locks (the paper's future-work optimization)"))
    # The decisions must be identical regardless of sharding — only the
    # throughput may differ (correctness is covered by unit tests too).
    assert all(t > 0 for _, t in rows)
