"""Real gateway load balancer: a threaded HTTP reverse proxy (paper §II-A).

Accepts the client's HTTP request, opens *another* HTTP connection to a
request-router node chosen by round robin or least connections, forwards
the request, and relays the response — the same extra-connection structure
whose cost Fig. 5 measures on ELB.
"""

from __future__ import annotations

import itertools
import json
import threading
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence

from repro.core.errors import ConfigurationError

__all__ = ["GatewayLoadBalancerDaemon"]


class GatewayLoadBalancerDaemon:
    """A round-robin / least-connections HTTP reverse proxy."""

    ALGORITHMS = ("round_robin", "least_connections")

    def __init__(
        self,
        backend_urls: Sequence[str],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        algorithm: str = "round_robin",
        name: str = "gateway-lb",
        backend_timeout: float = 5.0,
    ):
        if not backend_urls:
            raise ConfigurationError("load balancer needs at least one backend")
        if algorithm not in self.ALGORITHMS:
            raise ConfigurationError(
                f"algorithm must be one of {self.ALGORITHMS}, got {algorithm!r}")
        self.backends = list(backend_urls)
        self.algorithm = algorithm
        self.name = name
        self.backend_timeout = backend_timeout
        self._cycle = itertools.cycle(range(len(self.backends)))
        self._outstanding = [0] * len(self.backends)
        self._lock = threading.Lock()
        self.requests_forwarded = 0
        self.backend_errors = 0
        lb = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Loopback HTTP with Nagle + delayed ACK costs ~40 ms per
            # request; admission control cannot afford that.
            disable_nagle_algorithm = True

            def log_message(self, fmt, *args):
                pass

            def do_GET(self):                      # noqa: N802 (stdlib API)
                if self.path == "/healthz":
                    self._reply(200, b'{"status": "ok"}')
                    return
                index = lb._pick()
                url = lb.backends[index] + self.path
                try:
                    # The second TCP connection (§V-A): opened per request,
                    # exactly the behaviour whose cost Fig. 5 isolates.
                    with urllib.request.urlopen(
                            url, timeout=lb.backend_timeout) as upstream:
                        body = upstream.read()
                        status = upstream.status
                except Exception:
                    lb.backend_errors += 1
                    body = json.dumps({"error": "bad gateway"}).encode()
                    status = 502
                finally:
                    lb._release(index)
                self._reply(status, body)

            def do_POST(self):                     # noqa: N802 (stdlib API)
                # Forward batch QoS checks (and any future POST surface)
                # with the same extra-connection structure as GET.
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                except ValueError:
                    length = 0
                payload = self.rfile.read(length)
                index = lb._pick()
                request = urllib.request.Request(
                    lb.backends[index] + self.path, data=payload,
                    headers={"Content-Type":
                             self.headers.get("Content-Type",
                                              "application/json")},
                    method="POST")
                try:
                    with urllib.request.urlopen(
                            request, timeout=lb.backend_timeout) as upstream:
                        body = upstream.read()
                        status = upstream.status
                except urllib.error.HTTPError as exc:
                    body = exc.read()
                    status = exc.code
                except Exception:
                    lb.backend_errors += 1
                    body = json.dumps({"error": "bad gateway"}).encode()
                    status = 502
                finally:
                    lb._release(index)
                self._reply(status, body)

            def _reply(self, status: int, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.address: tuple[str, int] = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #

    def _pick(self) -> int:
        with self._lock:
            self.requests_forwarded += 1
            if self.algorithm == "round_robin":
                index = next(self._cycle)
            else:
                index = min(range(len(self.backends)),
                            key=self._outstanding.__getitem__)
            self._outstanding[index] += 1
            return index

    def _release(self, index: int) -> None:
        with self._lock:
            self._outstanding[index] -= 1

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start(self) -> "GatewayLoadBalancerDaemon":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever, name=self.name, daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._server.server_close()
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "GatewayLoadBalancerDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
