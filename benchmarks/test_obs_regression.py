"""Regression gate for the observability plane's overhead (PR 4).

Runs the traced-vs-untraced A/B of :func:`repro.metrics.wirepath.run_obs_ab`
over real loopback sockets and writes ``BENCH_obs.json`` at the repository
root for the performance trajectory:

- **throughput** — closed-loop clients on the channel wire path with
  head sampling at the default rate (1-in-64) versus sampling off;
  gate: the traced arm keeps ≥ 95% of untraced throughput.
- **idle added latency** — the interleaved single-client ``GET /qos``
  pair (both arms ``wire_mode="channel"``, ``batch_size=1``); gate:
  traced p99 ≤ 5% over untraced.

Both gates are statements about scheduling more than arithmetic, so on
hosts exposing a single CPU the measurement is still taken and recorded
but the assertions are skipped (one core cannot run the client, router,
server, and event threads concurrently enough for the numbers to mean
anything — the wirepath and simkernel gates treat core count the same
way).

``OBS_CHECKS`` (env) scales the per-client check count down for smoke
runs.  Run directly with ``make bench-obs``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.metrics.wirepath import run_obs_ab, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The ISSUE-4 acceptance bar: ≤ 5% on both surfaces at the default
#: sample rate.
MAX_OVERHEAD = 0.05
GATE_CLIENTS = 4
#: Cores needed for the wall-clock assertions to be meaningful.
MIN_CPUS_FOR_GATE = 2

CHECKS_PER_CLIENT = int(os.environ.get("OBS_CHECKS", "2000"))


@pytest.fixture(scope="module")
def obs_report():
    report = run_obs_ab(
        clients=GATE_CLIENTS,
        checks_per_client=CHECKS_PER_CLIENT)
    write_report(REPO_ROOT / "BENCH_obs.json", report)
    return report


def test_obs_report_written(obs_report, report_sink):
    r = obs_report
    lines = [f"Observability: traced (rate {r.trace_rate:.4f}) vs untraced"]
    for p in r.points:
        arm = "traced" if p.trace_rate > 0 else "untraced"
        lines.append(
            f"  {arm:>8s}/{p.surface:<4s} clients={p.clients} "
            f"{p.checks_per_sec:>9,.0f} checks/s  "
            f"p50={p.p50_ms:.3f}ms p99={p.p99_ms:.3f}ms")
    throughput = r.throughput_overhead()
    idle = r.idle_p99_overhead()
    lines.append(
        f"  throughput overhead: {throughput * 100.0:+.1f}%; "
        f"idle p99 overhead: {idle * 100.0:+.1f}% "
        f"(limit +{MAX_OVERHEAD * 100.0:.0f}% each)")
    report_sink("\n".join(lines))
    assert (REPO_ROOT / "BENCH_obs.json").exists()
    # Every configured point ran to completion with real responses.
    assert all(p.checks > 0 and p.checks_per_sec > 0 for p in r.points)
    assert throughput is not None
    assert idle is not None


def test_obs_throughput_gate(obs_report):
    """Tracing at the default rate keeps ≥ 95% of untraced throughput."""
    cpus = os.cpu_count() or 1
    overhead = obs_report.throughput_overhead()
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; "
            f"throughput overhead recorded ({overhead * 100.0:+.1f}%) "
            f"but the gate needs real concurrency")
    assert overhead <= MAX_OVERHEAD, (
        f"tracing costs {overhead * 100.0:+.1f}% throughput at the "
        f"default sample rate (limit +{MAX_OVERHEAD * 100.0:.0f}%)")


def test_obs_idle_latency_gate(obs_report):
    """Tracing must not tax a lone request: p99 ≤ 5% over untraced."""
    cpus = os.cpu_count() or 1
    overhead = obs_report.idle_p99_overhead()
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; idle "
            f"overhead recorded ({overhead * 100.0:+.1f}%) but "
            f"sub-millisecond p99s on one core are scheduler noise")
    assert overhead <= MAX_OVERHEAD, (
        f"traced idle p99 is {overhead * 100.0:+.1f}% over untraced "
        f"(limit +{MAX_OVERHEAD * 100.0:.0f}%)")
