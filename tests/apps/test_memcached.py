"""Tests for the Memcached substrate."""

from __future__ import annotations

import pytest

from repro.apps.memcached import Memcached
from repro.core.clock import ManualClock
from repro.core.errors import ConfigurationError


class TestBasics:
    def test_set_get(self):
        cache = Memcached()
        cache.set("k", {"v": 1})
        assert cache.get("k") == {"v": 1}
        assert cache.hits == 1

    def test_miss(self):
        cache = Memcached()
        assert cache.get("nope") is None
        assert cache.misses == 1

    def test_delete(self):
        cache = Memcached()
        cache.set("k", 1)
        assert cache.delete("k")
        assert not cache.delete("k")
        assert cache.get("k") is None

    def test_overwrite(self):
        cache = Memcached()
        cache.set("k", 1)
        cache.set("k", 2)
        assert cache.get("k") == 2
        assert len(cache) == 1

    def test_flush_all(self):
        cache = Memcached()
        cache.set("a", 1)
        cache.set("b", 2)
        cache.flush_all()
        assert len(cache) == 0

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            Memcached(max_items=0)


class TestTTL:
    def test_expires(self):
        clock = ManualClock()
        cache = Memcached(clock=clock)
        cache.set("k", 1, ttl=10.0)
        clock.advance(9.9)
        assert cache.get("k") == 1
        clock.advance(0.2)
        assert cache.get("k") is None

    def test_no_ttl_never_expires(self):
        clock = ManualClock()
        cache = Memcached(clock=clock)
        cache.set("k", 1)
        clock.advance(1e9)
        assert cache.get("k") == 1


class TestLRU:
    def test_evicts_least_recently_used(self):
        cache = Memcached(max_items=2)
        cache.set("a", 1)
        cache.set("b", 2)
        cache.get("a")              # refresh a
        cache.set("c", 3)           # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions == 1
