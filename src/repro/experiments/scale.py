"""Experiment scale control.

The paper's runs use 100 k-request clients, 100 M-rule tables and minutes
of wall time on a 15-node fleet; a laptop-core CI run cannot.  Every
experiment reads its sizes from a :class:`Scale`, selected by the
``REPRO_SCALE`` environment variable:

- ``quick``  — seconds; used by the default test/benchmark runs.
- ``paper``  — the paper's nominal sizes where feasible (minutes of wall
  time for the DES points; the analytic sweeps are always full scale).

Scaling down changes statistical tightness, not shape: the same code paths
run, with fewer samples.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = ["Scale", "current_scale", "QUICK", "PAPER"]


@dataclass(frozen=True, slots=True)
class Scale:
    """Knobs every experiment sizes itself from."""

    name: str
    #: Requests per client in the Fig. 5 latency test (paper: 100 000).
    fig5_requests: int
    #: Keys per population in the Fig. 6 pressure test (paper: 500 000).
    fig6_keys: int
    #: Measurement window for DES throughput points (seconds).
    des_window: float
    #: Warm-up before the window opens (seconds).
    des_warmup: float
    #: Fig. 13 trace duration (paper: ~100 s shown).
    fig13_duration: float
    #: Rules pre-loaded into the database for throughput runs (paper: 100 M).
    throughput_rules: int


QUICK = Scale(name="quick", fig5_requests=4_000, fig6_keys=60_000,
              des_window=0.35, des_warmup=0.2, fig13_duration=45.0,
              throughput_rules=2_000)

PAPER = Scale(name="paper", fig5_requests=100_000, fig6_keys=500_000,
              des_window=1.5, des_warmup=0.5, fig13_duration=100.0,
              throughput_rules=100_000)


def current_scale() -> Scale:
    """The scale selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").strip().lower()
    if name == "paper":
        return PAPER
    if name in ("quick", ""):
        return QUICK
    raise ValueError(f"REPRO_SCALE must be 'quick' or 'paper', got {name!r}")
