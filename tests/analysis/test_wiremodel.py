"""Wire-model extraction, doc gating and seed-corpus tests.

Three layers:

1. extraction is pinned on a *frozen* mini-protocol module, so any
   change to the extractor's lifting rules fails here first, with a
   readable diff, rather than surfacing as mysterious doc drift;
2. the real ``core/protocol.py`` / ``docs/PROTOCOL.md`` pair must agree
   (the self-host gate), and a deliberately mutated doc must NOT —
   proving the gate can actually fire;
3. the boundary-value corpus round-trips through the real decoders:
   every ``VALID_SEEDS`` datagram decodes, every other seed raises
   ``ProtocolError`` — so extractor drift from the code fails loudly.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import all_checkers
from repro.analysis.framework import ModuleSource, lint_paths
from repro.analysis.wiremodel import (
    VALID_SEEDS,
    build_seed_corpus,
    check_doc,
    extract_wire_model,
    find_protocol_doc,
    write_corpus,
)
from repro.core import protocol

REPO_ROOT = Path(__file__).resolve().parents[2]
PROTOCOL_PY = REPO_ROOT / "src" / "repro" / "core" / "protocol.py"
PROTOCOL_MD = REPO_ROOT / "docs" / "PROTOCOL.md"

# Frozen mini-protocol: the extraction-pinning fixture.  Exercises every
# lifting rule — struct.Struct formats, _TYPE_ constants, plain ints,
# folded arithmetic (2**16 - 1, shifts, Struct.size references) — while
# staying small enough to eyeball.
MINI_PROTOCOL = textwrap.dedent("""
    import struct

    MAGIC = 0x4A51
    VERSION = 1
    _TYPE_REQUEST = 1
    _TYPE_RESPONSE = 2
    _TYPE_MASK = 0x7F

    _HEADER = struct.Struct("!HBBH")
    _ENTRY = struct.Struct("!QH")

    MAX_KEY_BYTES = 2**12
    MAX_COUNT = 2**16 - 1
    FLAG_TRACED = 1 << 7
    HEADER_AND_ENTRY = _HEADER.size + _ENTRY.size
    NOT_A_CONSTANT = "strings are not lifted"
""")


def _mini_model():
    return extract_wire_model(ModuleSource("core/protocol.py",
                                           MINI_PROTOCOL))


def test_extraction_pinned_on_frozen_module():
    model = _mini_model()
    assert model.frame_types == {"REQUEST": 1, "RESPONSE": 2}
    assert model.structs == {
        "_HEADER": {"format": "!HBBH", "size": 6},
        "_ENTRY": {"format": "!QH", "size": 10},
    }
    assert model.constants == {
        "MAGIC": 0x4A51,
        "VERSION": 1,
        "_TYPE_MASK": 0x7F,          # masked out of frame_types by name
        "MAX_KEY_BYTES": 4096,
        "MAX_COUNT": 65535,
        "FLAG_TRACED": 0x80,
        "HEADER_AND_ENTRY": 16,      # folded from Struct.size arithmetic
    }


def test_spec_document_shape():
    spec = _mini_model().as_dict()
    assert spec["version"] == 1
    assert spec["module"] == "core/protocol.py"
    # frame_types are ordered by type byte for a stable artifact diff
    assert list(spec["frame_types"]) == ["REQUEST", "RESPONSE"]


def test_real_protocol_extraction_matches_runtime_constants():
    model = extract_wire_model(ModuleSource(
        str(PROTOCOL_PY), PROTOCOL_PY.read_text(encoding="utf-8")))
    # Spot-check against the imported module: if the extractor ever
    # mis-folds, the static model and the runtime disagree here.
    assert model.constant("MAGIC") == protocol.MAGIC
    assert model.constant("MAX_FRAME_MESSAGES") == \
        protocol.MAX_FRAME_MESSAGES
    assert model.constant("MAX_KEY_BYTES") == protocol.MAX_KEY_BYTES
    assert model.constant("FLAG_FRAME_TRACED") == \
        protocol.FLAG_FRAME_TRACED
    assert model.frame_types["SNAPSHOT_XFER"] == \
        protocol._TYPE_SNAPSHOT_XFER
    assert model.frame_types["TOPOLOGY"] == protocol._TYPE_TOPOLOGY
    assert len(model.frame_types) == 8
    assert len(model.structs) >= 15


def test_real_doc_agrees_with_code():
    # The acceptance gate: code and PROTOCOL.md describe one protocol.
    model = extract_wire_model(ModuleSource(
        str(PROTOCOL_PY), PROTOCOL_PY.read_text(encoding="utf-8")))
    drifts = check_doc(model, PROTOCOL_MD.read_text(encoding="utf-8"))
    assert drifts == []


def test_deliberate_doc_edit_fails_the_gate():
    model = extract_wire_model(ModuleSource(
        str(PROTOCOL_PY), PROTOCOL_PY.read_text(encoding="utf-8")))
    doc = PROTOCOL_MD.read_text(encoding="utf-8")
    mutated = doc.replace("type 6  SNAPSHOT_XFER",
                          "type 9  SNAPSHOT_XFER")
    assert mutated != doc
    drifts = check_doc(model, mutated)
    assert any("type 9" in d and "SNAPSHOT_XFER" in d for d in drifts)

    mutated = doc.replace("1 <= C <= 256", "1 <= C <= 512")
    assert mutated != doc
    drifts = check_doc(model, mutated)
    assert any("512" in d and "MAX_FRAME_MESSAGES" in d for d in drifts)


def test_drift_checker_fires_through_lint(tmp_path):
    # Full pipeline: a tree whose docs/PROTOCOL.md disagrees with its
    # core/protocol.py must produce wire-doc-drift findings.
    (tmp_path / "src" / "core").mkdir(parents=True)
    (tmp_path / "docs").mkdir()
    (tmp_path / "src" / "core" / "protocol.py").write_text(MINI_PROTOCOL)
    (tmp_path / "docs" / "PROTOCOL.md").write_text(
        "type (1=request, 9=response)\nmagic 0x4A51\n")
    result = lint_paths([str(tmp_path / "src")], all_checkers(),
                        rules=["wire-doc-drift"])
    assert result.findings, "mutated doc produced no drift findings"
    assert all(f.rule == "wire-doc-drift" for f in result.findings)
    assert any("type 9" in f.message for f in result.findings)


def test_drift_checker_silent_without_doc(tmp_path):
    (tmp_path / "core").mkdir(parents=True)
    (tmp_path / "core" / "protocol.py").write_text(MINI_PROTOCOL)
    result = lint_paths([str(tmp_path)], all_checkers(),
                        rules=["wire-doc-drift"])
    assert result.ok


def test_find_protocol_doc_walks_up():
    assert find_protocol_doc(str(PROTOCOL_PY)) == PROTOCOL_MD


@pytest.fixture(scope="module")
def corpus():
    model = extract_wire_model(ModuleSource(
        str(PROTOCOL_PY), PROTOCOL_PY.read_text(encoding="utf-8")))
    return build_seed_corpus(model)


def test_valid_seeds_decode_with_real_decoders(corpus):
    for name in sorted(VALID_SEEDS):
        version, messages = protocol.decode_any(corpus[name])
        assert messages, f"{name} decoded to nothing"
        assert version in (protocol.VERSION, protocol.VERSION2)


def test_invalid_seeds_all_raise_protocol_error(corpus):
    for name, blob in sorted(corpus.items()):
        if name in VALID_SEEDS:
            continue
        with pytest.raises(protocol.ProtocolError):
            protocol.decode_any(blob)
            pytest.fail(f"malformed seed {name} decoded silently")


def test_seed_boundaries_come_from_the_model(corpus):
    # max-key seed is exactly at the bound; over-key exactly one past it
    assert len(corpus["v2_request_max_key"]) - len(
        corpus["v2_key_over"]) == -1
    header = corpus["v2_count_over"]
    count = int.from_bytes(header[4:6], "big")
    assert count == protocol.MAX_FRAME_MESSAGES + 1


def test_write_corpus_manifest(tmp_path, corpus):
    model = extract_wire_model(ModuleSource(
        str(PROTOCOL_PY), PROTOCOL_PY.read_text(encoding="utf-8")))
    target = write_corpus(model, tmp_path / "corpus")
    names = {p.stem for p in target.glob("*.bin")}
    assert names == set(corpus)
    import json
    manifest = json.loads((target / "manifest.json").read_text())
    assert set(manifest["seeds"]) == set(corpus)
    assert manifest["seeds"]["v2_request_one"]["valid"] is True
    assert manifest["seeds"]["bad_magic"]["valid"] is False
