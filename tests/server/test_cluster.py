"""Integration tests for the full simulated cluster (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig
from repro.core.rules import QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient


def build(topology=None, **kwargs) -> tuple[SimJanusCluster, list[str]]:
    config = JanusConfig(topology=topology or ClusterTopology(
        n_routers=2, n_qos_servers=2))
    cluster = SimJanusCluster(config, **kwargs)
    keys = uuid_keys(100)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
    cluster.prewarm()
    return cluster, keys


class TestWiring:
    def test_layer_counts(self):
        cluster, _ = build(ClusterTopology(n_routers=3, n_qos_servers=5))
        assert len(cluster.routers) == 3
        assert len(cluster.qos_servers) == 5
        assert len(cluster.gateway_lb.routers) == 3

    def test_endpoint_resolves_to_routers(self):
        cluster, _ = build()
        resolver = cluster.new_resolver()
        assert resolver.resolve_one(cluster.endpoint) in {"rr-0", "rr-1"}

    def test_routers_share_partition_map(self):
        cluster, keys = build(ClusterTopology(n_routers=4, n_qos_servers=3))
        for key in keys[:30]:
            targets = {r.route(key) for r in cluster.routers}
            assert len(targets) == 1

    def test_ha_pairs_created_when_requested(self):
        cluster, _ = build(ClusterTopology(n_routers=1, n_qos_servers=2,
                                           qos_ha=True))
        assert all(pair is not None for pair in cluster.ha_pairs)
        assert cluster.active_qos_server(0).name == "qos-0"


class TestTrafficFlow:
    def test_closed_loop_clients_complete(self):
        cluster, keys = build()
        clients = [ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i),
                                    mode="gateway", n_requests=50)
                   for i in range(3)]
        cluster.sim.run(until=5.0)
        assert all(c.done for c in clients)
        assert sum(len(c.log) for c in clients) == 150
        assert all(r.allowed for c in clients for r in c.log.records)

    def test_dns_mode_clients_complete(self):
        cluster, keys = build()
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="dns", n_requests=40)
        cluster.sim.run(until=5.0)
        assert client.done
        assert len(client.log) == 40

    def test_quota_enforced_end_to_end(self):
        cluster, _ = build()
        cluster.rules.put_rule(
            QoSRule("limited", refill_rate=1.0, capacity=10.0))
        client = ClosedLoopClient(cluster, "c0", lambda: "limited",
                                  mode="gateway", n_requests=40)
        cluster.sim.run(until=5.0)
        # Burst capacity 10 plus ~zero refilled in the short run.
        assert client.log.n_allowed <= 12
        assert client.log.n_rejected >= 28

    def test_throughput_window_measures(self):
        cluster, keys = build()
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway")
        cluster.sim.run(until=0.2)
        cluster.begin_window()
        cluster.sim.run(until=0.6)
        assert cluster.window_seconds() == pytest.approx(0.4)
        assert cluster.router_throughput() > 100
        assert cluster.qos_throughput() > 100
        assert 0.0 < cluster.qos_cpu() <= 1.0
        assert 0.0 < cluster.router_cpu() <= 1.0

    def test_failover_under_traffic(self):
        """Killing an HA master mid-traffic costs at most a TTL window."""
        topo = ClusterTopology(n_routers=1, n_qos_servers=2, qos_ha=True)
        config = JanusConfig(topology=topo, dns_ttl=0.2)
        cluster = SimJanusCluster(config)
        keys = uuid_keys(50)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="gateway")
        cluster.sim.run(until=1.0)
        cluster.ha_pairs[0].fail_master()
        cluster.sim.run(until=3.0)
        promoted = cluster.active_qos_server(0)
        assert promoted.name == "qos-0-slave"
        assert promoted.decisions > 0
        # Only genuine verdicts after the TTL window: defaults are bounded.
        late = [r for r in client.log.records if r.finished_at > 1.5]
        genuine = [r for r in late if not r.is_default_reply]
        assert len(genuine) > 0.9 * len(late)
