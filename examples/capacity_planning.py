#!/usr/bin/env python3
"""Capacity planning with the analytic model and Table I prices.

Answers the operator's question the paper's evaluation enables: "I need to
admit X requests per second — what do I deploy, and what does it cost?"
Sweeps QoS-layer options (instance type x node count) under a fixed router
layer, filters to configurations meeting the target, and ranks by $/hour —
including the vertical-vs-horizontal trade of Figs. 9 and 12.

Run:  python examples/capacity_planning.py [target_rps]
"""

from __future__ import annotations

import sys

from repro.core.config import ClusterTopology
from repro.perfmodel import CapacityModel
from repro.simnet.instances import C3_FAMILY, get_instance


def plan(target_rps: float) -> None:
    model = CapacityModel()
    print(f"target: {target_rps:,.0f} admitted requests/second\n")
    options = []
    for instance in C3_FAMILY:
        node_cap, _ = model.qos_node_capacity(instance)
        for n_nodes in range(1, 17):
            if n_nodes * node_cap < target_rps:
                continue
            # Size the router layer to not be the bottleneck.
            rr_cap, _ = model.rr_node_capacity("c3.xlarge")
            n_routers = max(2, int(target_rps / rr_cap) + 1)
            topo = ClusterTopology(
                n_routers=n_routers, n_qos_servers=n_nodes,
                router_instance="c3.xlarge", qos_instance=instance)
            estimate = model.estimate(topo)
            if estimate.capacity < target_rps:
                continue
            cost = (n_nodes * get_instance(instance).price_usd_hr
                    + n_routers * get_instance("c3.xlarge").price_usd_hr)
            options.append((cost, topo, estimate))
            break       # smallest sufficient count for this instance type

    if not options:
        print("no configuration in the catalog meets that target")
        return

    options.sort(key=lambda option: option[0])
    print(f"{'QoS layer':>18} | {'routers':>7} | {'capacity':>10} "
          f"| {'bottleneck':>10} | {'USD/hr':>7}")
    print("-" * 66)
    for cost, topo, estimate in options:
        qos = f"{topo.n_qos_servers}x {topo.qos_instance}"
        print(f"{qos:>18} | {topo.n_routers:>7} "
              f"| {estimate.capacity:>10,.0f} | {estimate.bottleneck:>10} "
              f"| {cost:>7.2f}")

    best = options[0]
    print(f"\ncheapest: {best[1].n_qos_servers}x {best[1].qos_instance} "
          f"at ${best[0]:.2f}/hr "
          f"(headroom {best[2].capacity / target_rps - 1:+.0%})")
    print("\nNote the Fig. 12 effect: one big node edges out the same "
          "vCPUs split across small nodes, but only small nodes scale "
          "past the biggest instance in the catalog.")


if __name__ == "__main__":
    target = float(sys.argv[1]) if len(sys.argv) > 1 else 100_000.0
    plan(target)
