"""Tests for the multi-process QoS plane (supervisor + shard workers).

Real processes, real loopback sockets, tight supervisor timings.  The
contracts under test:

- **port-map fan-in is hop-free** — a check routed by ``CRC32(key)``
  lands on the owning worker process and is decided there, with the
  forward counters staying at zero;
- **reuseport fan-in forwards** — a frame landing on the wrong worker
  is re-delivered to the owning sibling via the local envelope and
  still answered (from the shared socket, so the connected client
  accepts the reply);
- **lifecycle** — SIGTERM drains in-flight frames before exit (clean
  exit codes, every pre-drain frame answered); a SIGKILLed worker is
  restarted with its bucket state re-seeded from the last snapshot and
  its port re-registered; during the restart window checks against the
  dead shard resolve as router-synthesized default replies, never
  hangs or errors.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.core.config import ProcPlaneConfig, RouterConfig, ServerConfig
from repro.core.errors import ConfigurationError
from repro.core.hashing import crc32_router
from repro.core.rules import QoSRule
from repro.runtime.procplane import (
    FORWARD_MAGIC,
    ProcPlaneNode,
    pack_forward,
    unpack_forward,
)
from repro.runtime.udp_channel import ChannelSet

#: Generous rules: every admission should be a real ALLOW.
HOT_RULES = tuple(QoSRule(f"svc-{i}", refill_rate=1e9, capacity=1e9)
                  for i in range(8))

#: Snappy supervisor for tests: fast heartbeats, fast restart.
FAST_PLANE = ProcPlaneConfig(heartbeat_interval=0.1, heartbeat_timeout=0.6,
                             snapshot_interval=0.15, restart_backoff=0.05)

CHANNEL_CONFIG = RouterConfig(udp_timeout=0.5, max_retries=3,
                              wire_mode="channel")


def _wait_until(predicate, timeout: float = 10.0, step: float = 0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(step)
    return False


class TestForwardEnvelope:
    def test_roundtrip(self):
        payload = b"\x01frame-bytes"
        data = pack_forward(payload, ("127.0.0.1", 40123))
        assert data.startswith(FORWARD_MAGIC)
        unwrapped = unpack_forward(data)
        assert unwrapped == (payload, ("127.0.0.1", 40123))

    def test_non_envelope_passes_through(self):
        assert unpack_forward(b"\x01plain v1 datagram") is None
        assert unpack_forward(b"") is None
        # Truncated header: magic alone is not an envelope.
        assert unpack_forward(FORWARD_MAGIC) is None


class TestPortMap:
    def test_hop_free_shard_split(self):
        node = ProcPlaneNode(HOT_RULES,
                             config=ServerConfig(workers=1, processes=2),
                             plane=FAST_PLANE, name="pp-portmap")
        with node:
            backends = node.backend_addresses()
            assert len(backends) == 2
            assert backends == node.port_map()
            channels = ChannelSet(backends, CHANNEL_CONFIG)
            channels.start()
            try:
                for i in range(100):
                    key = f"svc-{i % 8}"
                    backend = backends[crc32_router(key, len(backends))]
                    response, _ = channels.exchange(backend, key, 1.0)
                    assert response.allowed
                    assert not response.is_default_reply
            finally:
                channels.stop()
            workers = node.worker_stats()
            assert sum(w["decisions"] for w in workers) == 100
            for worker in workers:
                assert worker["decisions"] > 0, "one shard got everything"
                assert worker["forwarded_in"] == 0
                assert worker["forwarded_out"] == 0

    def test_reuseport_rejects_multi_node_shards(self):
        with pytest.raises(ConfigurationError):
            ProcPlaneNode(HOT_RULES,
                          config=ServerConfig(workers=1, processes=2),
                          plane=ProcPlaneConfig(fanin="reuseport"),
                          name="pp-bad", shard_base=2, shard_total=4)


class TestReuseport:
    def test_shared_port_forwards_to_owner(self):
        node = ProcPlaneNode(HOT_RULES,
                             config=ServerConfig(workers=1, processes=2),
                             plane=ProcPlaneConfig(
                                 fanin="reuseport",
                                 heartbeat_interval=0.1,
                                 snapshot_interval=0.15),
                             name="pp-reuse")
        with node:
            backends = node.backend_addresses()
            assert len(backends) == 1, "reuseport fans in on one address"
            channels = ChannelSet(backends, CHANNEL_CONFIG)
            channels.start()
            try:
                for i in range(120):
                    response, _ = channels.exchange(
                        backends[0], f"svc-{i % 8}", 1.0)
                    assert response.allowed
            finally:
                channels.stop()
            workers = node.worker_stats()
            # Both shards decided their own keys, wherever the kernel
            # landed the frames; out-of-range keys took the envelope.
            assert sum(w["decisions"] for w in workers) == 120
            for worker in workers:
                assert worker["decisions"] > 0
            assert (sum(w["forwarded_in"] for w in workers)
                    == sum(w["forwarded_out"] for w in workers))


class TestLifecycle:
    def test_sigterm_drain_answers_inflight_frames(self):
        node = ProcPlaneNode(HOT_RULES,
                             config=ServerConfig(workers=1, processes=2),
                             plane=FAST_PLANE, name="pp-drain")
        node.start()
        backends = node.backend_addresses()
        channels = ChannelSet(backends, CHANNEL_CONFIG)
        channels.start()
        try:
            checks = []
            for i in range(60):
                key = f"svc-{i % 8}"
                checks.append((backends[crc32_router(key, len(backends))],
                               key, 1.0))
            results = channels.exchange_many(checks)
            assert all(r.allowed and not r.is_default_reply
                       for r, _ in results)
            processes = [handle.process for handle in node._handles]
        finally:
            channels.stop()
            node.stop()
        # Drain, not kill: every worker exited voluntarily (exit code 0
        # from the SIGTERM/drain path, not -SIGKILL) after answering
        # everything it had read.
        for process in processes:
            assert process.exitcode == 0, (
                f"worker exited {process.exitcode}, expected clean drain")

    def test_killed_worker_restarts_reseeded_and_reregistered(self):
        rules = tuple(QoSRule(f"svc-{i}", refill_rate=0.0, capacity=50.0)
                      for i in range(4))
        remaps = []
        node = ProcPlaneNode(
            rules, config=ServerConfig(workers=1, processes=2),
            plane=FAST_PLANE, name="pp-restart",
            on_remap=lambda shard, old, new: remaps.append((shard, old, new)))
        with node:
            backends = node.backend_addresses()
            channels = ChannelSet(backends, CHANNEL_CONFIG)
            channels.start()
            try:
                key = "svc-0"
                shard = crc32_router(key, len(backends))
                for _ in range(30):
                    response, _ = channels.exchange(backends[shard], key, 1.0)
                    assert response.allowed
                time.sleep(0.4)     # a snapshot reaches the supervisor
                victim = node._handles[shard]
                old_pid, old_port = victim.pid, victim.port
                os.kill(old_pid, signal.SIGKILL)
                assert _wait_until(
                    lambda: victim.pid != old_pid and not victim.exited), \
                    "worker was not restarted"
                time.sleep(0.2)     # replacement settles
                # Re-registered: the replacement reclaimed the same port,
                # so the published port map is unchanged and no remap
                # callback fired; the map still covers both shards.
                assert node.stats()["restarts"] == 1
                assert len(node.port_map()) == 2
                if victim.port == old_port:
                    assert not remaps
                else:
                    assert remaps == [(shard, (node.host, old_port),
                                       (node.host, victim.port))]
                    channels.replace_backend(*remaps[0][1:])
                # Re-seeded: 30 of 50 credits were burned pre-crash, so
                # the restored bucket admits ~20 more, then denies.
                allowed = 0
                for _ in range(25):
                    response, _ = channels.exchange(
                        node.port_map()[shard], key, 1.0)
                    allowed += bool(response.allowed)
                assert 15 <= allowed <= 22, (
                    f"expected ~20 post-restart admits from the re-seeded "
                    f"bucket, got {allowed}")
            finally:
                channels.stop()

    def test_default_replies_during_restart_window(self):
        node = ProcPlaneNode(HOT_RULES,
                             config=ServerConfig(workers=1, processes=2),
                             plane=ProcPlaneConfig(
                                 heartbeat_interval=0.1,
                                 heartbeat_timeout=2.0,
                                 snapshot_interval=0.15,
                                 restart_backoff=0.05),
                             name="pp-window")
        # One fast attempt per check: a dead backend resolves as a
        # default reply in ~100ms instead of burning the retry budget.
        quick = RouterConfig(udp_timeout=0.1, max_retries=1,
                             wire_mode="channel")
        with node:
            backends = node.backend_addresses()
            channels = ChannelSet(backends, quick)
            channels.start()
            try:
                key = next(f"svc-{i}" for i in range(8)
                           if crc32_router(f"svc-{i}", 2) == 0)
                live_key = next(f"svc-{i}" for i in range(8)
                                if crc32_router(f"svc-{i}", 2) == 1)
                response, _ = channels.exchange(backends[0], key, 1.0)
                assert response.allowed and not response.is_default_reply
                os.kill(node._handles[0].pid, signal.SIGKILL)
                # Until the supervisor's heartbeat timeout trips, the
                # dead shard must fail open: default replies, no hang.
                response, _ = channels.exchange(backends[0], key, 1.0)
                assert response.allowed
                assert response.is_default_reply
                # The sibling shard is untouched the whole time.
                response, _ = channels.exchange(backends[1], live_key, 1.0)
                assert response.allowed and not response.is_default_reply
                # And once the supervisor restarts the worker, real
                # replies resume on the same shard.
                victim = node._handles[0]
                assert _wait_until(lambda: not victim.exited
                                   and victim.process.is_alive()
                                   and victim.port)
                time.sleep(0.2)

                def real_reply():
                    r, _ = channels.exchange(node.port_map()[0], key, 1.0)
                    return r.allowed and not r.is_default_reply
                assert _wait_until(real_reply, timeout=5.0)
            finally:
                channels.stop()


class _LeaseWire:
    """Raw-socket lease/check client aimed at one procplane shard."""

    def __init__(self, sock, node, shard: int):
        self.sock = sock
        self.node = node
        self.shard = shard

    def target(self):
        return tuple(self.node.port_map()[self.shard])

    def qos(self, request_id: int, key: str) -> "bool | None":
        """One v1 check; None when the datagram was lost."""
        from repro.core.protocol import QoSRequest, decode_any
        import socket as socket_mod
        try:
            self.sock.sendto(QoSRequest(request_id, key).encode(),
                             self.target())
            data, _ = self.sock.recvfrom(65535)
        except socket_mod.timeout:
            return None
        (response,) = decode_any(data)[1]
        return bool(response.allowed)

    def lease(self, request, retries: int = 8):
        from repro.core.protocol import (
            LeaseGrant, decode_any, encode_lease_request_frame)
        import socket as socket_mod
        for _ in range(retries):
            try:
                self.sock.sendto(encode_lease_request_frame([request]),
                                 self.target())
                data, _ = self.sock.recvfrom(65535)
            except socket_mod.timeout:
                continue
            (reply,) = decode_any(data)[1]
            if isinstance(reply, LeaseGrant) \
                    and reply.request_id == request.request_id:
                return reply
        pytest.fail("no lease reply from worker")


class TestLeaseRestart:
    """SIGKILL + restart with an outstanding lease: exact accounting.

    The periodic worker snapshot carries the lease ledger.  After a kill
    the replacement restores both the post-debit bucket credit and the
    ledger entry, so no credit is invented (the grant stays debited) and
    none is lost beyond one TTL (a renewal's return of the unspent
    remainder still validates against the restored entry).
    """

    def _kill_and_restart(self, node, shard: int) -> None:
        time.sleep(0.5)     # snapshots carry the ledger upstream
        victim = node._handles[shard]
        old_pid = victim.pid
        os.kill(old_pid, signal.SIGKILL)
        assert _wait_until(
            lambda: victim.pid != old_pid and not victim.exited), \
            "worker was not restarted"
        time.sleep(0.2)     # replacement settles

    def test_kill_restart_preserves_lease_debit(self):
        from repro.core.protocol import LeaseRequest
        import socket as socket_mod

        rules = tuple(QoSRule(f"svc-{i}", refill_rate=0.0, capacity=100.0)
                      for i in range(4))
        node = ProcPlaneNode(
            rules, config=ServerConfig(workers=1, processes=2),
            plane=FAST_PLANE, name="pp-lease-restart")
        with node:
            key = "svc-0"
            shard = crc32_router(key, len(node.backend_addresses()))
            with socket_mod.socket(socket_mod.AF_INET,
                                   socket_mod.SOCK_DGRAM) as sock:
                sock.settimeout(1.0)
                wire = _LeaseWire(sock, node, shard)
                grant = wire.lease(LeaseRequest(
                    request_id=900, key=key, credits=40.0, ttl_ms=5_000))
                assert grant.lease_id > 0 and grant.credits == 40.0
                self._kill_and_restart(node, shard)
                assert _wait_until(lambda: wire.qos(901, key) is not None,
                                   timeout=5.0), "restarted shard silent"
                # No credit invented: the restored bucket still carries
                # the 40-credit debit (zero refill), so of the 100-credit
                # capacity at most ~59 admits remain (one burned above).
                allowed = 0
                for i in range(80):
                    verdict = wire.qos(1000 + i, key)
                    if verdict:
                        allowed += 1
                    elif verdict is None:
                        pytest.fail("lost datagram against live worker")
                assert 55 <= allowed <= 59, (
                    f"expected ~59 admits from the restored post-debit "
                    f"bucket, got {allowed}")

    def test_kill_restart_honours_renewal_return(self):
        from repro.core.protocol import LeaseRequest
        import socket as socket_mod

        rules = (QoSRule("svc-0", refill_rate=0.0, capacity=100.0),)
        node = ProcPlaneNode(
            rules, config=ServerConfig(workers=1, processes=2),
            plane=FAST_PLANE, name="pp-lease-return")
        with node:
            key = "svc-0"
            shard = crc32_router(key, 2)
            with socket_mod.socket(socket_mod.AF_INET,
                                   socket_mod.SOCK_DGRAM) as sock:
                sock.settimeout(1.0)
                wire = _LeaseWire(sock, node, shard)
                grant = wire.lease(LeaseRequest(
                    request_id=910, key=key, credits=40.0, ttl_ms=5_000))
                assert grant.credits == 40.0    # bucket: 100 -> 60
                self._kill_and_restart(node, shard)
                # Renewal against the restored ledger: return the full
                # 40 and ask for 10 afresh.  If the ledger survived, the
                # return re-credits (60 -> 100) and the 10-credit grant
                # leaves 90 admits.  Had the entry been lost, the return
                # would be rejected and only ~50 admits would remain.
                renewed = wire.lease(LeaseRequest(
                    request_id=911, key=key, credits=10.0, ttl_ms=5_000,
                    return_credits=40.0, return_lease_id=grant.lease_id))
                assert renewed.lease_id > grant.lease_id
                assert renewed.credits == 10.0
                allowed = 0
                for i in range(100):
                    verdict = wire.qos(2000 + i, key)
                    if verdict:
                        allowed += 1
                    elif verdict is None:
                        pytest.fail("lost datagram against live worker")
                assert 85 <= allowed <= 90, (
                    f"expected ~90 admits after the honoured return, "
                    f"got {allowed} (a rejected return would leave ~50)")


class TestRulePush:
    def test_put_rules_reaches_running_workers(self):
        node = ProcPlaneNode(HOT_RULES,
                             config=ServerConfig(workers=1, processes=2),
                             plane=FAST_PLANE, name="pp-rules")
        with node:
            backends = node.backend_addresses()
            channels = ChannelSet(backends, CHANNEL_CONFIG)
            channels.start()
            try:
                key = "late-tenant"
                shard = crc32_router(key, len(backends))
                response, _ = channels.exchange(backends[shard], key, 1.0)
                assert not response.allowed, "unknown key must be denied"
                node.put_rules([QoSRule(key, refill_rate=1e9, capacity=1e9)])

                def admitted():
                    r, _ = channels.exchange(backends[shard], key, 1.0)
                    return r.allowed
                assert _wait_until(admitted, timeout=5.0), \
                    "pushed rule never reached the owning worker"
            finally:
                channels.stop()
