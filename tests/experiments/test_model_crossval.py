"""Cross-validation: the analytic model vs the discrete-event simulator.

The scalability figures are generated from the closed-form model; these
tests re-measure representative deployments in the simulator and require
agreement, so neither implementation can drift silently.
"""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology
from repro.experiments.driver import measure_throughput
from repro.perfmodel.capacity import CapacityModel

MODEL = CapacityModel()

CASES = [
    # (label, topology, tolerance)
    ("router-bound small",
     ClusterTopology(n_routers=1, n_qos_servers=1,
                     router_instance="c3.large", qos_instance="c3.8xlarge"),
     0.15),
    ("qos-bound small",
     ClusterTopology(n_routers=5, n_qos_servers=1,
                     router_instance="c3.8xlarge", qos_instance="c3.large"),
     0.15),
    ("qos 2x xlarge",
     ClusterTopology(n_routers=5, n_qos_servers=2,
                     router_instance="c3.8xlarge", qos_instance="c3.xlarge"),
     0.15),
    ("balanced medium",
     ClusterTopology(n_routers=2, n_qos_servers=2,
                     router_instance="c3.xlarge", qos_instance="c3.xlarge"),
     0.2),
]


@pytest.mark.parametrize("label,topology,tolerance",
                         CASES, ids=[c[0] for c in CASES])
def test_model_matches_simulator(label, topology, tolerance):
    predicted = MODEL.estimate(topology).capacity
    point = measure_throughput(topology, window=0.3, warmup=0.2, seed=17)
    assert point.throughput == pytest.approx(predicted, rel=tolerance)
    # The measurement must be clean: no default replies, negligible retries.
    assert point.default_replies == 0
    assert point.retries < point.throughput * 0.3 * 0.01 + 5


def test_cpu_utilization_prediction_matches():
    topology = ClusterTopology(n_routers=5, n_qos_servers=1,
                               router_instance="c3.8xlarge",
                               qos_instance="c3.xlarge")
    point = measure_throughput(topology, window=0.3, warmup=0.2, seed=18)
    predicted_rr = MODEL.rr_cpu_utilization(point.throughput, 5, "c3.8xlarge")
    predicted_qos = MODEL.qos_cpu_utilization(point.throughput, 1, "c3.xlarge")
    assert point.router_cpu == pytest.approx(predicted_rr, abs=0.08)
    assert point.qos_cpu == pytest.approx(predicted_qos, abs=0.08)


def test_latency_prediction_matches_light_load_sim():
    """Fig. 5's DES latency agrees with the closed-form base latency."""
    from repro.experiments import fig5_loadbalancer
    from repro.experiments.scale import Scale
    tiny = Scale(name="quick", fig5_requests=1_500, fig6_keys=1_000,
                 des_window=0.2, des_warmup=0.1, fig13_duration=10.0,
                 throughput_rules=100)
    result = fig5_loadbalancer.run(tiny)
    assert result.dns.mean == pytest.approx(
        MODEL.base_latency("dns"), rel=0.15)
    assert result.gateway.mean == pytest.approx(
        MODEL.base_latency("gateway"), rel=0.15)
