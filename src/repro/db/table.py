"""In-memory table storage with a primary-key index (paper §III-D).

"We set the QoS key as the primary key in the QoS rules table to speed up
queries" — the primary-key index here is a hash index giving O(1) point
lookups, which is the only index the paper's workload needs.  Rows are
stored as plain dicts; type checking follows the declared column types with
the usual numeric coercions (int → REAL).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, Iterator, Optional

from repro.core.errors import SQLError
from repro.db.sql import ColumnDef

__all__ = ["Table", "Row"]

Row = Dict[str, Any]

_PY_TYPES = {
    "TEXT": str,
    "INTEGER": int,
    "REAL": float,
}


class Table:
    """One table: schema, row storage, and an optional primary-key index."""

    def __init__(self, name: str, columns: Iterable[ColumnDef]):
        self.name = name
        self.columns: tuple[ColumnDef, ...] = tuple(columns)
        if not self.columns:
            raise SQLError(f"table {name!r} must have at least one column")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SQLError(f"table {name!r} has duplicate column names")
        self._by_name = {c.name: c for c in self.columns}
        pks = [c.name for c in self.columns if c.primary_key]
        self.primary_key: Optional[str] = pks[0] if pks else None
        # rowid -> row; insertion-ordered, stable under deletes.
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1
        self._pk_index: Dict[Any, int] = {}
        self.lock = threading.RLock()

    # ------------------------------------------------------------------ #

    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def coerce(self, column: str, value: Any) -> Any:
        """Validate/coerce ``value`` for ``column``; raises SQLError."""
        col = self._by_name.get(column)
        if col is None:
            raise SQLError(f"table {self.name!r} has no column {column!r}")
        if value is None:
            if col.not_null:
                raise SQLError(f"column {self.name}.{column} is NOT NULL")
            return None
        expected = _PY_TYPES[col.type]
        if col.type == "REAL" and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if col.type == "INTEGER" and isinstance(value, float) and value.is_integer():
            return int(value)
        if not isinstance(value, expected) or isinstance(value, bool):
            raise SQLError(
                f"column {self.name}.{column} expects {col.type}, "
                f"got {type(value).__name__} ({value!r})")
        return value

    # ------------------------------------------------------------------ #
    # mutation (caller holds ``lock``)
    # ------------------------------------------------------------------ #

    def insert(self, values: Row) -> int:
        """Insert a row (missing columns become NULL); returns the rowid."""
        row: Row = {}
        for col in self.columns:
            row[col.name] = self.coerce(col.name, values.get(col.name))
        for extra in values.keys() - row.keys():
            raise SQLError(f"table {self.name!r} has no column {extra!r}")
        if self.primary_key is not None:
            pk_val = row[self.primary_key]
            if pk_val in self._pk_index:
                raise SQLError(
                    f"duplicate primary key {pk_val!r} in table {self.name!r}")
        rowid = self._next_rowid
        self._next_rowid += 1
        self._rows[rowid] = row
        if self.primary_key is not None:
            self._pk_index[row[self.primary_key]] = rowid
        return rowid

    def update_row(self, rowid: int, assignments: Row) -> None:
        row = self._rows[rowid]
        new = dict(row)
        for col, value in assignments.items():
            new[col] = self.coerce(col, value)
        if self.primary_key is not None and new[self.primary_key] != row[self.primary_key]:
            pk_val = new[self.primary_key]
            if pk_val in self._pk_index:
                raise SQLError(
                    f"duplicate primary key {pk_val!r} in table {self.name!r}")
            del self._pk_index[row[self.primary_key]]
            self._pk_index[pk_val] = rowid
        self._rows[rowid] = new

    def delete_row(self, rowid: int) -> None:
        row = self._rows.pop(rowid)
        if self.primary_key is not None:
            self._pk_index.pop(row[self.primary_key], None)

    # ------------------------------------------------------------------ #
    # access (caller holds ``lock``)
    # ------------------------------------------------------------------ #

    def rowids(self) -> list[int]:
        return list(self._rows.keys())

    def get(self, rowid: int) -> Row:
        return self._rows[rowid]

    def scan(self) -> Iterator[tuple[int, Row]]:
        yield from self._rows.items()

    def lookup_pk(self, value: Any) -> Optional[int]:
        """O(1) primary-key point lookup; returns the rowid or None."""
        return self._pk_index.get(value)

    def __len__(self) -> int:
        return len(self._rows)

    def approx_bytes(self) -> int:
        """Rough memory footprint (the paper sizes rules at ~100 bytes)."""
        if not self._rows:
            return 0
        sample_id = next(iter(self._rows))
        sample = self._rows[sample_id]
        per_row = sum(
            len(v) if isinstance(v, str) else 8
            for v in sample.values()) + 16
        return per_row * len(self._rows)
