"""Unit behaviour of the columnar slab primitives.

The cross-backend semantics are pinned by ``test_slab_equivalence``; these
tests cover the slab-internal mechanics that equivalence cannot see: slot
recycling through the free list, plan interning, flyweight slot ints, the
sweep-epoch byte, and the resident-bytes accounting.
"""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.slabstore import PlanTable, SlabShard, _slot_int


def make_shard(continuous: bool = True):
    clock = ManualClock()
    plans = PlanTable()
    return SlabShard(plans, clock=clock, continuous=continuous), plans, clock


class TestPlanTable:
    def test_interning_dedupes_pairs(self):
        plans = PlanTable()
        a = plans.intern(100.0, 5.0)
        b = plans.intern(50.0, 1.0)
        assert a != b
        assert plans.intern(100.0, 5.0) == a
        assert len(plans) == 2
        assert plans.cap[a] == 100.0
        assert plans.rate[b] == 1.0

    def test_thousand_keys_one_plan_entry(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(10.0, 1.0)
        for i in range(1000):
            shard.insert_unlocked(f"k{i}", plan, 10.0)
        assert len(plans) == 1
        assert len(shard) == 1000


class TestSlotLifecycle:
    def test_free_list_recycles_slots(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(5.0, 1.0)
        slot_a = shard.insert_unlocked("a", plan, 5.0)
        shard.insert_unlocked("b", plan, 5.0)
        shard.evict_unlocked("a")
        assert len(shard) == 1
        # The next insert reuses a's slot instead of growing the columns.
        high_water = len(shard.col_credit)
        slot_c = shard.insert_unlocked("c", plan, 2.5)
        assert slot_c == slot_a
        assert len(shard.col_credit) == high_water
        assert shard.peek_credit_unlocked(slot_c) == 2.5

    def test_index_values_are_flyweight_ints(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(5.0, 1.0)
        for i in range(600):                    # beyond the small-int cache
            shard.insert_unlocked(f"k{i}", plan, 5.0)
        for slot in shard.index.values():
            assert slot is _slot_int(slot), (
                "index must store canonical slot ints, not fresh objects")

    def test_insert_clamps_credit_into_rule_range(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(3.0, 1.0)
        assert shard.peek_credit_unlocked(
            shard.insert_unlocked("over", plan, 99.0)) == 3.0
        assert shard.peek_credit_unlocked(
            shard.insert_unlocked("under", plan, -1.0)) == 0.0


class TestSweepEpoch:
    def test_consume_stamps_current_epoch(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(5.0, 0.0)
        slot = shard.insert_unlocked("k", plan, 5.0)
        shard.bump_epoch_unlocked()
        assert shard.col_touch[slot] != shard.epoch     # idle since sweep
        shard.consume_unlocked(slot, 1.0)
        assert shard.col_touch[slot] == shard.epoch     # touched again

    def test_epoch_wraps_mod_256(self):
        shard, _plans, _clock = make_shard()
        for _ in range(260):
            shard.bump_epoch_unlocked()
        assert shard.epoch == 260 % 256


class TestArithmetic:
    def test_continuous_refill_caps_at_capacity(self):
        shard, plans, clock = make_shard(continuous=True)
        plan = plans.intern(10.0, 2.0)
        slot = shard.insert_unlocked("k", plan, 1.0)
        clock.advance(100.0)
        assert shard.credit_unlocked(slot) == 10.0

    def test_interval_mode_ignores_elapsed_time_on_consume(self):
        shard, plans, clock = make_shard(continuous=False)
        plan = plans.intern(10.0, 5.0)
        slot = shard.insert_unlocked("k", plan, 1.0)
        clock.advance(100.0)
        assert shard.consume_unlocked(slot, 1.0)        # spends the 1.0
        assert not shard.consume_unlocked(slot, 1.0)    # no lazy refill
        shard.advance_unlocked(slot, clock())           # housekeeping
        assert shard.peek_credit_unlocked(slot) == 10.0

    def test_lease_debit_respects_available_credit(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(10.0, 0.0)
        slot = shard.insert_unlocked("k", plan, 3.0)
        assert shard.lease_debit_unlocked(slot, 5.0) == 3.0
        assert shard.lease_debit_unlocked(slot, 5.0) == 0.0

    def test_lease_return_clamps_to_capacity(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(10.0, 0.0)
        slot = shard.insert_unlocked("k", plan, 8.0)
        accepted = shard.lease_return_unlocked(slot, 5.0)
        assert accepted == 2.0
        assert shard.peek_credit_unlocked(slot) == 10.0

    def test_consume_rejects_nonpositive_amount(self):
        shard, plans, _clock = make_shard()
        plan = plans.intern(10.0, 0.0)
        slot = shard.insert_unlocked("k", plan, 3.0)
        with pytest.raises(ValueError):
            shard.consume_unlocked(slot, 0.0)


class TestResidentBytes:
    def test_columns_cost_a_fraction_of_objects(self):
        """The whole point: marginal slab cost per key is tens of bytes."""
        shard, plans, _clock = make_shard()
        plan = plans.intern(100.0, 10.0)
        empty = shard.bytes_resident()
        n = 10_000
        for i in range(n):
            shard.insert_unlocked(f"key-{i:06d}", plan, 100.0)
        per_key = (shard.bytes_resident() - empty) / n
        # 21 column bytes plus the index-dict entry; anything under 100
        # bytes/key is already ~3x better than a LeakyBucket object.
        assert per_key < 100, f"slab costs {per_key:.0f} bytes/key"
