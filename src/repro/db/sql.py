"""A small SQL dialect: tokenizer, parser and AST (paper §II-D, §III-D).

The database layer of Janus is "a traditional relational database" holding
the ``qos_rules`` table; the paper's access paths are a full-table warm-up
scan (``SELECT * FROM qos_rules``), single-row lookups by primary key,
credit check-point updates, and admin CRUD.  This module implements a SQL
subset rich enough for those paths (and for a realistic test surface):

- ``CREATE TABLE t (col TYPE [PRIMARY KEY], ...)`` / ``DROP TABLE t``
- ``INSERT INTO t (c1, c2, ...) VALUES (v1, v2, ...)``
- ``SELECT */cols FROM t [WHERE ...] [ORDER BY col [ASC|DESC]] [LIMIT n]``
- ``UPDATE t SET c = v, ... [WHERE ...]``
- ``DELETE FROM t [WHERE ...]``
- ``WHERE`` supports ``=, !=, <>, <, <=, >, >=`` over columns and literals,
  combined with ``AND`` / ``OR`` / ``NOT`` and parentheses, plus ``IN
  (...)`` and ``IS [NOT] NULL``.
- ``?`` positional parameters, bound at execution time.

Types are ``TEXT``, ``INTEGER`` and ``REAL``.  The executor lives in
:mod:`repro.db.engine`; this module is purely syntactic.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterator, Optional, Union

from repro.core.errors import SQLError

__all__ = [
    "tokenize",
    "parse",
    "Statement",
    "CreateTable",
    "DropTable",
    "Insert",
    "Select",
    "Update",
    "Delete",
    "ColumnDef",
    "Comparison",
    "BooleanOp",
    "NotOp",
    "InList",
    "IsNull",
    "Literal",
    "ColumnRef",
    "Parameter",
]

# --------------------------------------------------------------------- #
# Tokenizer
# --------------------------------------------------------------------- #

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?(?:\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?))
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|!=|<=|>=|=|<|>)
  | (?P<punct>[(),*?;])
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "CREATE", "TABLE", "DROP", "IF", "EXISTS", "PRIMARY", "KEY", "NOT", "NULL",
    "INSERT", "INTO", "VALUES", "SELECT", "FROM", "WHERE", "ORDER", "BY",
    "ASC", "DESC", "LIMIT", "UPDATE", "SET", "DELETE", "AND", "OR", "IN",
    "IS", "TEXT", "INTEGER", "REAL", "COUNT",
}


@dataclass(frozen=True, slots=True)
class Token:
    kind: str       # KEYWORD, IDENT, NUMBER, STRING, OP, PUNCT, EOF
    value: Any
    pos: int


def tokenize(sql: str) -> list[Token]:
    """Split ``sql`` into tokens; raises :class:`SQLError` on bad input."""
    tokens: list[Token] = []
    pos = 0
    while pos < len(sql):
        m = _TOKEN_RE.match(sql, pos)
        if m is None:
            raise SQLError(f"unexpected character {sql[pos]!r} at position {pos}")
        pos = m.end()
        if m.lastgroup == "ws":
            continue
        text = m.group()
        if m.lastgroup == "number":
            value: Any = float(text) if any(c in text for c in ".eE") else int(text)
            tokens.append(Token("NUMBER", value, m.start()))
        elif m.lastgroup == "string":
            tokens.append(Token("STRING", text[1:-1].replace("''", "'"), m.start()))
        elif m.lastgroup == "ident":
            upper = text.upper()
            if upper in _KEYWORDS:
                tokens.append(Token("KEYWORD", upper, m.start()))
            else:
                tokens.append(Token("IDENT", text, m.start()))
        elif m.lastgroup == "op":
            tokens.append(Token("OP", "!=" if text == "<>" else text, m.start()))
        else:
            tokens.append(Token("PUNCT", text, m.start()))
    tokens.append(Token("EOF", None, len(sql)))
    return tokens


# --------------------------------------------------------------------- #
# AST
# --------------------------------------------------------------------- #

@dataclass(frozen=True, slots=True)
class Literal:
    value: Any


@dataclass(frozen=True, slots=True)
class ColumnRef:
    name: str


@dataclass(frozen=True, slots=True)
class Parameter:
    index: int      # 0-based position among the statement's ? markers


Operand = Union[Literal, ColumnRef, Parameter]


@dataclass(frozen=True, slots=True)
class Comparison:
    op: str         # one of = != < <= > >=
    left: Operand
    right: Operand


@dataclass(frozen=True, slots=True)
class BooleanOp:
    op: str         # AND / OR
    left: "Condition"
    right: "Condition"


@dataclass(frozen=True, slots=True)
class NotOp:
    operand: "Condition"


@dataclass(frozen=True, slots=True)
class InList:
    column: ColumnRef
    items: tuple[Operand, ...]
    negated: bool = False


@dataclass(frozen=True, slots=True)
class IsNull:
    column: ColumnRef
    negated: bool = False


Condition = Union[Comparison, BooleanOp, NotOp, InList, IsNull]


@dataclass(frozen=True, slots=True)
class ColumnDef:
    name: str
    type: str               # TEXT / INTEGER / REAL
    primary_key: bool = False
    not_null: bool = False


@dataclass(frozen=True, slots=True)
class CreateTable:
    table: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False


@dataclass(frozen=True, slots=True)
class DropTable:
    table: str
    if_exists: bool = False


@dataclass(frozen=True, slots=True)
class Insert:
    table: str
    columns: tuple[str, ...]
    values: tuple[Operand, ...]


@dataclass(frozen=True, slots=True)
class Select:
    table: str
    columns: Optional[tuple[str, ...]]      # None means *
    where: Optional[Condition] = None
    order_by: Optional[str] = None
    descending: bool = False
    limit: Optional[int] = None
    count: bool = False                     # SELECT COUNT(*)


@dataclass(frozen=True, slots=True)
class Update:
    table: str
    assignments: tuple[tuple[str, Operand], ...]
    where: Optional[Condition] = None


@dataclass(frozen=True, slots=True)
class Delete:
    table: str
    where: Optional[Condition] = None


Statement = Union[CreateTable, DropTable, Insert, Select, Update, Delete]


# --------------------------------------------------------------------- #
# Parser (recursive descent)
# --------------------------------------------------------------------- #

class _Parser:
    def __init__(self, tokens: list[Token], sql: str):
        self._tokens = tokens
        self._sql = sql
        self._i = 0
        self._param_count = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._i]

    def _next(self) -> Token:
        tok = self._tokens[self._i]
        if tok.kind != "EOF":       # never step past the EOF sentinel
            self._i += 1
        return tok

    def _error(self, message: str) -> SQLError:
        tok = self._peek()
        return SQLError(f"{message} (near position {tok.pos} in {self._sql!r})")

    def _expect_keyword(self, *words: str) -> str:
        tok = self._next()
        if tok.kind != "KEYWORD" or tok.value not in words:
            raise self._error(f"expected {'/'.join(words)}, got {tok.value!r}")
        return tok.value

    def _accept_keyword(self, *words: str) -> Optional[str]:
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in words:
            self._i += 1
            return tok.value
        return None

    def _expect_punct(self, ch: str) -> None:
        tok = self._next()
        if tok.kind != "PUNCT" or tok.value != ch:
            raise self._error(f"expected {ch!r}, got {tok.value!r}")

    def _accept_punct(self, ch: str) -> bool:
        tok = self._peek()
        if tok.kind == "PUNCT" and tok.value == ch:
            self._i += 1
            return True
        return False

    def _expect_ident(self) -> str:
        tok = self._next()
        if tok.kind == "IDENT":
            return tok.value
        # Allow keywords that are not reserved in context (e.g. a column
        # named "key" is tokenized as IDENT since KEY alone is a keyword
        # only after PRIMARY; be permissive for usability).
        if tok.kind == "KEYWORD" and tok.value in ("KEY", "VALUES", "COUNT"):
            return tok.value.lower()
        raise self._error(f"expected identifier, got {tok.value!r}")

    # -- entry ----------------------------------------------------------
    def parse_statement(self) -> Statement:
        word = self._expect_keyword("CREATE", "DROP", "INSERT", "SELECT",
                                    "UPDATE", "DELETE")
        stmt: Statement
        if word == "CREATE":
            stmt = self._create_table()
        elif word == "DROP":
            stmt = self._drop_table()
        elif word == "INSERT":
            stmt = self._insert()
        elif word == "SELECT":
            stmt = self._select()
        elif word == "UPDATE":
            stmt = self._update()
        else:
            stmt = self._delete()
        self._accept_punct(";")
        if self._peek().kind != "EOF":
            raise self._error("trailing tokens after statement")
        return stmt

    # -- statements -----------------------------------------------------
    def _create_table(self) -> CreateTable:
        self._expect_keyword("TABLE")
        if_not_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("NOT")
            self._expect_keyword("EXISTS")
            if_not_exists = True
        table = self._expect_ident()
        self._expect_punct("(")
        columns: list[ColumnDef] = []
        while True:
            name = self._expect_ident()
            type_tok = self._next()
            if type_tok.kind != "KEYWORD" or type_tok.value not in ("TEXT", "INTEGER", "REAL"):
                raise self._error(f"expected column type, got {type_tok.value!r}")
            primary = False
            not_null = False
            while True:
                if self._accept_keyword("PRIMARY"):
                    self._expect_keyword("KEY")
                    primary = True
                elif self._accept_keyword("NOT"):
                    self._expect_keyword("NULL")
                    not_null = True
                else:
                    break
            columns.append(ColumnDef(name, type_tok.value, primary, not_null or primary))
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        if sum(c.primary_key for c in columns) > 1:
            raise SQLError(f"table {table!r} declares more than one PRIMARY KEY")
        return CreateTable(table, tuple(columns), if_not_exists)

    def _drop_table(self) -> DropTable:
        self._expect_keyword("TABLE")
        if_exists = False
        if self._accept_keyword("IF"):
            self._expect_keyword("EXISTS")
            if_exists = True
        return DropTable(self._expect_ident(), if_exists)

    def _insert(self) -> Insert:
        self._expect_keyword("INTO")
        table = self._expect_ident()
        self._expect_punct("(")
        columns: list[str] = []
        while True:
            columns.append(self._expect_ident())
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        self._expect_keyword("VALUES")
        self._expect_punct("(")
        values: list[Operand] = []
        while True:
            values.append(self._operand())
            if self._accept_punct(","):
                continue
            self._expect_punct(")")
            break
        if len(columns) != len(values):
            raise SQLError(
                f"INSERT has {len(columns)} columns but {len(values)} values")
        return Insert(table, tuple(columns), tuple(values))

    def _select(self) -> Select:
        columns: Optional[tuple[str, ...]]
        count = False
        if self._accept_punct("*"):
            columns = None
        elif self._accept_keyword("COUNT"):
            self._expect_punct("(")
            self._expect_punct("*")
            self._expect_punct(")")
            columns = None
            count = True
        else:
            cols: list[str] = []
            while True:
                cols.append(self._expect_ident())
                if not self._accept_punct(","):
                    break
            columns = tuple(cols)
        self._expect_keyword("FROM")
        table = self._expect_ident()
        where = self._where_clause()
        order_by = None
        descending = False
        if self._accept_keyword("ORDER"):
            self._expect_keyword("BY")
            order_by = self._expect_ident()
            if self._accept_keyword("DESC"):
                descending = True
            else:
                self._accept_keyword("ASC")
        limit = None
        if self._accept_keyword("LIMIT"):
            tok = self._next()
            if tok.kind != "NUMBER" or not isinstance(tok.value, int) or tok.value < 0:
                raise self._error("LIMIT expects a non-negative integer")
            limit = tok.value
        return Select(table, columns, where, order_by, descending, limit, count)

    def _update(self) -> Update:
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments: list[tuple[str, Operand]] = []
        while True:
            col = self._expect_ident()
            tok = self._next()
            if tok.kind != "OP" or tok.value != "=":
                raise self._error("expected '=' in SET clause")
            assignments.append((col, self._operand()))
            if not self._accept_punct(","):
                break
        return Update(table, tuple(assignments), self._where_clause())

    def _delete(self) -> Delete:
        self._expect_keyword("FROM")
        table = self._expect_ident()
        return Delete(table, self._where_clause())

    # -- expressions ------------------------------------------------------
    def _where_clause(self) -> Optional[Condition]:
        if self._accept_keyword("WHERE"):
            return self._or_expr()
        return None

    def _or_expr(self) -> Condition:
        left = self._and_expr()
        while self._accept_keyword("OR"):
            left = BooleanOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> Condition:
        left = self._not_expr()
        while self._accept_keyword("AND"):
            left = BooleanOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> Condition:
        if self._accept_keyword("NOT"):
            return NotOp(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Condition:
        if self._accept_punct("("):
            cond = self._or_expr()
            self._expect_punct(")")
            return cond
        left = self._operand()
        tok = self._peek()
        if tok.kind == "KEYWORD" and tok.value in ("IN", "NOT", "IS"):
            if not isinstance(left, ColumnRef):
                raise self._error("IN / IS require a column on the left")
            if self._accept_keyword("IS"):
                negated = bool(self._accept_keyword("NOT"))
                self._expect_keyword("NULL")
                return IsNull(left, negated)
            negated = False
            if self._accept_keyword("NOT"):
                negated = True
            self._expect_keyword("IN")
            self._expect_punct("(")
            items: list[Operand] = []
            while True:
                items.append(self._operand())
                if self._accept_punct(","):
                    continue
                self._expect_punct(")")
                break
            return InList(left, tuple(items), negated)
        op_tok = self._next()
        if op_tok.kind != "OP":
            raise self._error(f"expected comparison operator, got {op_tok.value!r}")
        right = self._operand()
        return Comparison(op_tok.value, left, right)

    def _operand(self) -> Operand:
        tok = self._next()
        if tok.kind == "NUMBER":
            return Literal(tok.value)
        if tok.kind == "STRING":
            return Literal(tok.value)
        if tok.kind == "KEYWORD" and tok.value == "NULL":
            return Literal(None)
        if tok.kind == "PUNCT" and tok.value == "?":
            param = Parameter(self._param_count)
            self._param_count += 1
            return param
        if tok.kind == "IDENT":
            return ColumnRef(tok.value)
        if tok.kind == "KEYWORD" and tok.value in ("KEY", "VALUES", "COUNT"):
            return ColumnRef(tok.value.lower())
        raise self._error(f"expected value, parameter or column, got {tok.value!r}")


def parse(sql: str) -> tuple[Statement, int]:
    """Parse one SQL statement.

    Returns ``(statement, n_parameters)`` where ``n_parameters`` is the
    number of ``?`` placeholders the caller must bind.
    """
    parser = _Parser(tokenize(sql), sql)
    stmt = parser.parse_statement()
    return stmt, parser._param_count


def iter_operands(condition: Condition) -> Iterator[Operand]:
    """Yield every operand in a condition tree (analysis helper)."""
    if isinstance(condition, Comparison):
        yield condition.left
        yield condition.right
    elif isinstance(condition, BooleanOp):
        yield from iter_operands(condition.left)
        yield from iter_operands(condition.right)
    elif isinstance(condition, NotOp):
        yield from iter_operands(condition.operand)
    elif isinstance(condition, InList):
        yield condition.column
        yield from condition.items
    elif isinstance(condition, IsNull):
        yield condition.column
    else:  # pragma: no cover - defensive
        raise SQLError(f"unknown condition node {condition!r}")
