"""Live-reshard smoke test over real sockets (gating in CI).

Boots a :class:`LocalCluster` (1 router, 2 QoS nodes), keeps
closed-loop traffic flowing, and drives the cluster 2→3→2 through the
router's ``/topology`` HTTP endpoint — the same path ``janus reshard
add|remove|status`` uses.  Asserts the plane's load-bearing properties:

- every check gets a verdict throughout both reshards (no crashes, no
  denials under effectively unlimited rules);
- the epoch advances and the router's backend list grows and shrinks;
- moved keys keep routing consistently and the reshard metrics
  (``janus_reshard_*``, ``janus_router_remap_total``) surface on the
  router's ``/metrics``.
"""

from __future__ import annotations

import json
import threading
import urllib.request

import pytest

from repro.core.config import RouterConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.runtime.cluster import LocalCluster

N_KEYS = 32
KEYS = [f"tenant:{i}" for i in range(N_KEYS)]
DENY_KEY = "tenant:blocked"


@pytest.fixture()
def cluster():
    cluster = LocalCluster(
        n_routers=1, n_qos_servers=2,
        router_config=RouterConfig(udp_timeout=0.5, max_retries=3,
                                   wire_mode="channel", wire_protocol=2),
        server_config=ServerConfig(workers=2))
    for key in KEYS:
        cluster.rules.put_rule(QoSRule(key, refill_rate=1e6, capacity=1e6))
    # A pure deny rule: its zero-capacity bucket must never stall a
    # reshard (it carries no credit and the wire refuses to encode it).
    cluster.rules.put_rule(QoSRule(DENY_KEY, refill_rate=0.0, capacity=0.0))
    with cluster:
        yield cluster


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10.0) as response:
        return json.loads(response.read())


def _post(url: str, payload: dict) -> dict:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"}, method="POST")
    with urllib.request.urlopen(request, timeout=60.0) as response:
        return json.loads(response.read())


def test_reshard_2_3_2_under_traffic(cluster):
    router = cluster.routers[0]
    topology_url = f"{router.url}/topology"

    baseline = _get(topology_url)
    assert baseline["epoch"] == 0
    assert len(baseline["backends"]) == 2
    # The GET view carries the coordinator's node names: it is what
    # an operator feeds back into ``janus reshard remove <node>``.
    assert [n["name"] for n in baseline["nodes"]]

    # Materialize the zero-capacity bucket so the reshard has to scan
    # (and skip) it.
    response, _ = router.qos_exchange(DENY_KEY)
    assert not response.allowed and not response.is_default_reply

    failures: list = []
    stop = threading.Event()

    def hammer() -> None:
        i = 0
        while not stop.is_set():
            try:
                response, _ = router.qos_exchange(KEYS[i % N_KEYS])
                if not response.allowed:
                    failures.append(("denied", KEYS[i % N_KEYS]))
            except Exception as exc:  # noqa: BLE001 - recorded, asserted
                failures.append(("error", repr(exc)))
            i += 1

    threads = [threading.Thread(target=hammer, daemon=True)
               for _ in range(2)]
    for t in threads:
        t.start()
    try:
        # Grow 2 -> 3 through the HTTP control path.
        added = _post(topology_url, {"action": "add"})
        assert added["epoch"] == 1
        assert added["keys_moved"] > 0
        assert len(cluster.qos_servers) == 3
        added_name = cluster.qos_servers[-1].name

        status = _get(topology_url)
        assert status["epoch"] == 1
        assert len(status["backends"]) == 3

        # Shrink 3 -> 2: drain the node we just added.
        removed = _post(topology_url,
                        {"action": "remove", "node": added_name})
        assert removed["epoch"] == 2
        assert removed["keys_moved"] > 0
        assert len(cluster.qos_servers) == 2
    finally:
        stop.set()
        for t in threads:
            t.join(timeout=5.0)

    assert not failures, failures[:10]

    status = _get(topology_url)
    assert status["epoch"] == 2
    assert len(status["backends"]) == 2

    # The coordinator's view matches the router's.
    assert cluster.topology()["epoch"] == 2
    # Routing still answers for every key after the round trip.
    for key in KEYS:
        response, _ = router.qos_exchange(key)
        assert response.allowed and not response.is_default_reply

    metrics = urllib.request.urlopen(
        f"{router.url}/metrics", timeout=10.0).read().decode()
    for name in ("janus_router_remap_total", "janus_router_topology_epoch",
                 "janus_reshard_keys_moved", "janus_reshard_total",
                 "janus_reshard_xfer_seconds"):
        assert name in metrics, f"{name} missing from /metrics"


def test_topology_post_rejects_garbage(cluster):
    router = cluster.routers[0]
    url = f"{router.url}/topology"
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url, {"action": "frobnicate"})
    assert err.value.code == 409
    with pytest.raises(urllib.error.HTTPError) as err:
        _post(url, {"action": "remove"})
    assert err.value.code == 409


def test_topology_post_404_without_control():
    from repro.core.admission import InMemoryRuleSource
    from repro.runtime.http_router import RequestRouterDaemon
    from repro.runtime.udp_server import QoSServerDaemon

    source = InMemoryRuleSource(
        {"k": QoSRule("k", refill_rate=1.0, capacity=1.0)})
    with QoSServerDaemon(source, name="lone-qos") as server:
        with RequestRouterDaemon([server.address],
                                 name="lone-router") as router:
            with pytest.raises(urllib.error.HTTPError) as err:
                _post(f"{router.url}/topology", {"action": "add"})
            assert err.value.code == 404
