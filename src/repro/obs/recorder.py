"""Flight recorder: a ring of the last K completed spans + notable events.

The Pellegrini reproducibility report's lesson is that measurement
machinery must be *always on and cheap*, because the interesting request
is never the one you instrumented after the fact.  The flight recorder is
the always-on half of tracing: a per-process ring buffer
(``deque(maxlen=K)`` — appends are atomic under the GIL, so the record
path takes no lock) holding

- every **completed span** the process recorded (sampled requests), and
- **notable events** any layer chooses to drop in regardless of
  sampling: default replies, dropped/malformed datagrams, slow requests.

``dump()`` snapshots the ring as JSON-ready dicts, newest last; the
router serves it on ``GET /flight`` and ``janus obs dump`` prints it.
:func:`install_dump_signal` arms SIGUSR1 so a wedged process can be asked
for its recent history from the outside (``kill -USR1 <pid>``).
"""

from __future__ import annotations

import json
import signal
import sys
import threading
import time
from collections import deque
from typing import Optional

from repro.core.errors import ConfigurationError

__all__ = ["FlightRecorder", "global_flight_recorder",
           "install_dump_signal"]


class FlightRecorder:
    """Bounded ring of recent spans and notable events."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.recorded = 0               # total ever recorded (ring wraps)

    def record_span(self, span) -> None:
        """Ring a completed span (called by the tracer on finish)."""
        # Wall-clock *stamp* so a human can line dump entries up with
        # external logs; never used in duration arithmetic (spans carry
        # their own monotonic durations).
        self._ring.append(("span", time.time(), span))  # janus-lint: disable=monotonic-time
        self.recorded += 1

    def note(self, kind: str, **fields) -> None:
        """Ring a notable non-span event (default reply, drop, ...)."""
        # Wall-clock stamp, as in record_span above.
        self._ring.append(("note", time.time(), (kind, fields)))  # janus-lint: disable=monotonic-time
        self.recorded += 1

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self) -> "list[dict]":
        """Snapshot the ring as JSON-ready dicts, oldest first."""
        entries = []
        for entry_type, wall_time, payload in list(self._ring):
            if entry_type == "span":
                row = {"type": "span", "time": wall_time}
                row.update(payload.as_dict())
            else:
                kind, fields = payload
                row = {"type": "note", "time": wall_time, "kind": kind}
                row.update(fields)
            entries.append(row)
        return entries

    def dump_text(self) -> str:
        """The dump as JSON lines (what SIGUSR1 writes)."""
        return "\n".join(json.dumps(row, sort_keys=True)
                         for row in self.dump())


_GLOBAL_RECORDER = FlightRecorder(1024)


def global_flight_recorder() -> FlightRecorder:
    """The process-wide recorder the default tracer feeds."""
    return _GLOBAL_RECORDER


def install_dump_signal(recorder: Optional[FlightRecorder] = None,
                        signum: Optional[int] = None,
                        stream=None) -> bool:
    """Arm a signal (default SIGUSR1) to dump the flight recorder.

    Returns ``True`` when the handler was installed; ``False`` on
    platforms without SIGUSR1 or when not called from the main thread
    (signal handlers can only be installed there).
    """
    if recorder is None:
        recorder = global_flight_recorder()
    if signum is None:
        signum = getattr(signal, "SIGUSR1", None)
        if signum is None:
            return False
    if threading.current_thread() is not threading.main_thread():
        return False

    def handler(_signum, _frame) -> None:
        out = stream if stream is not None else sys.stderr
        print(f"--- flight recorder dump ({len(recorder)} of "
              f"{recorder.recorded} recorded) ---", file=out)
        text = recorder.dump_text()
        if text:
            print(text, file=out)
        out.flush()

    try:
        signal.signal(signum, handler)
    except (ValueError, OSError):
        return False
    return True
