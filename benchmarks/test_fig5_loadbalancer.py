"""Bench: regenerate Fig. 5 (gateway vs DNS load balancer latency)."""

from __future__ import annotations

from repro.experiments import fig5_loadbalancer
from repro.experiments.scale import current_scale


def test_fig5_gateway_vs_dns(benchmark, report_sink):
    scale = current_scale()
    result = benchmark.pedantic(
        fig5_loadbalancer.run, args=(scale,), rounds=1, iterations=1)
    # Paper shape: DNS wins by roughly half a millisecond at every metric.
    assert result.dns.mean < result.gateway.mean
    assert result.dns.p90 < result.gateway.p90
    assert 250e-6 < result.gateway_penalty < 900e-6
    report_sink(fig5_loadbalancer.report(result))
