"""The admission controller: a local table of leaky buckets (paper §II-C/D).

This is the logic that runs inside every QoS server node, shared verbatim by
the real-socket runtime (:mod:`repro.runtime`) and the simulator
(:mod:`repro.server`):

- a *local QoS table* mapping QoS key → :class:`~repro.core.bucket.LeakyBucket`;
- lazy rule fetch: the first request for a key queries the rule source (the
  database) and materializes a bucket, so new rules are "immediately
  effective as soon as they are added to the database";
- a default-rule fallback for unknown keys (guest / unauthorized traffic);
- periodic synchronization of rule changes from the database and credit
  check-pointing back to it ("configurable update interval");
- a snapshot/restore pair used by the HA slave replication path (§III-C).

Locking
-------
The paper implements the table as one Java *synchronized* hash map and
attributes the QoS server's CPU under-utilization on large instances to
"the implementation of the locking mechanism" (§V-C), naming its
optimization as future work.  We reproduce both designs: with
``lock_shards=1`` (default) the entire admission decision runs under a
single table lock, matching the paper; with ``lock_shards=K`` the keyspace
is partitioned over K locks, implementing the future-work optimization.
The ``ablation_locking`` benchmark quantifies the difference.

The decision itself is *fused*: :meth:`AdmissionController.check` performs
the table lookup, the lazy rule materialization on a miss, the bucket
consume (via :meth:`~repro.core.bucket.LeakyBucket.try_consume_unlocked`)
and the statistics update under exactly **one** lock — the key's shard
lock.  The earlier design nested three acquisitions per decision (shard
lock → bucket lock → global stats lock); the global stats lock in
particular was taken by every worker on every decision.  Statistics now
live in per-shard counter stripes merged lazily by the :attr:`stats`
property, and every maintenance pass (refill, sync, checkpoint, snapshot,
restore) walks the table shard-at-a-time using the buckets' unlocked API
so the hot path is never stalled for longer than one shard.
``benchmarks/test_hotpath_regression.py`` tracks the speedup and
``tests/core/test_lock_discipline.py`` pins the one-lock-per-decision
invariant.

Storage backends
----------------
Two table layouts implement identical semantics behind
``AdmissionConfig.table_backend``:

- ``"object"`` — the seed layout: one :class:`~repro.core.bucket.LeakyBucket`
  heap object per key, per shard ``dict``.  Simple, but a bucket costs
  hundreds of bytes and every decision chases pointers.
- ``"slab"`` (default) — :class:`SlabAdmissionController` packs bucket state
  into per-shard columnar arrays (:mod:`repro.core.slabstore`): ~60 bytes
  per key, allocation-free decisions, and a housekeeping sweep that walks
  flat arrays.  Constructing :class:`AdmissionController` dispatches to the
  slab subclass automatically via ``__new__``.

Both backends share the lease ledger, statistics stripes and snapshot
format; ``tests/core/test_slab_equivalence.py`` drives randomized op
sequences against both and requires bit-identical admit/deny streams.

On top of either backend, :meth:`AdmissionController.check_batch` decides a
whole protocol-v2 frame at a time: entries are grouped by shard, each shard
lock is taken **once per frame**, one clock reading is shared by every
refill in the shard, and the verdicts come back as a packed bitmap the
server encodes straight into the v2 response frame.
"""

from __future__ import annotations

import itertools
import sys
import threading
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Mapping, Optional, Protocol, Sequence

from repro.core.bucket import LeakyBucket, RefillMode
from repro.core.clock import MONOTONIC, Clock
from repro.core.config import AdmissionConfig
from repro.core.errors import ConfigurationError
from repro.core.hashing import crc32_of
from repro.core.rules import QoSRule
from repro.core.slabstore import PlanTable, SlabShard, _BITS, _UNIT_THRESHOLD

__all__ = [
    "AdmissionController",
    "AdmissionStats",
    "BucketSnapshot",
    "InMemoryRuleSource",
    "LeaseSnapshot",
    "RuleSource",
    "SlabAdmissionController",
    "SlabBucketView",
]

#: Credit amounts below this are "zero" for lease accounting (mirrors the
#: bucket's own epsilon; see :mod:`repro.core.bucket`).
_LEASE_EPSILON = 1e-9

#: Per-bucket heap bytes beyond the slotted ``LeakyBucket`` instance itself,
#: used by the object backend's ``table_bytes`` estimate: the bucket's
#: private lock plus the boxed floats/ints its slots reference (credit,
#: last-refill, lifetime counters).  Measured once at import.
_BUCKET_AUX_BYTES = sys.getsizeof(threading.Lock()) + 4 * sys.getsizeof(1.0)


class RuleSource(Protocol):
    """What the admission controller needs from the database layer.

    Implemented by :class:`InMemoryRuleSource` (tests, examples) and by
    :class:`repro.db.rulestore.RuleStore` (the relational substrate).
    """

    def get_rule(self, key: str) -> Optional[QoSRule]:
        """Return the rule for ``key`` or ``None`` when no row exists."""
        ...

    def get_rules(self, keys: Iterable[str]) -> Mapping[str, QoSRule]:
        """Batch lookup used by the periodic sync loop."""
        ...

    def checkpoint(self, credits: Mapping[str, float]) -> None:
        """Persist current credits (crash-recovery seed for replacements)."""
        ...


class InMemoryRuleSource:
    """A dict-backed :class:`RuleSource` for tests and single-process use."""

    def __init__(self, rules: Optional[Mapping[str, QoSRule]] = None):
        self._rules: Dict[str, QoSRule] = dict(rules or {})
        self._lock = threading.Lock()

    def get_rule(self, key: str) -> Optional[QoSRule]:
        with self._lock:
            return self._rules.get(key)

    def get_rules(self, keys: Iterable[str]) -> Mapping[str, QoSRule]:
        with self._lock:
            return {k: self._rules[k] for k in keys if k in self._rules}

    def checkpoint(self, credits: Mapping[str, float]) -> None:
        with self._lock:
            for key, credit in credits.items():
                rule = self._rules.get(key)
                if rule is not None:
                    clamped = min(max(credit, 0.0), rule.capacity)
                    self._rules[key] = rule.with_credit(clamped)

    # Admin-side helpers (the service provider's control plane).
    def put_rule(self, rule: QoSRule) -> None:
        with self._lock:
            self._rules[rule.key] = rule

    def delete_rule(self, key: str) -> bool:
        with self._lock:
            return self._rules.pop(key, None) is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._rules)


@dataclass(slots=True)
class AdmissionStats:
    """Counters exported by one admission controller.

    This is a merged, point-in-time view assembled by
    :attr:`AdmissionController.stats` from the per-shard counter stripes;
    mutating it does not feed back into the controller.
    """

    admitted: int = 0
    denied: int = 0
    rule_hits: int = 0          # decisions served from the local table
    rule_misses: int = 0        # decisions that had to query the rule source
    unknown_keys: int = 0       # misses that fell back to the default rule
    syncs: int = 0
    checkpoints: int = 0
    # Credit-lease plane (see lease_grant/lease_return/lease_expire).
    lease_grants: int = 0           # grants issued (credits > 0)
    lease_refusals: int = 0         # requests answered with 0 credits
    lease_granted_credits: float = 0.0
    lease_returns: int = 0
    lease_returned_credits: float = 0.0
    lease_expired: int = 0          # leases that aged out unreturned
    lease_revoked: int = 0          # leases killed by a rule push
    leases_active: int = 0          # live ledger entries (point in time)
    lease_outstanding_credits: float = 0.0  # sum of live grants
    # Bucket-table memory bound (refill_all eviction).
    evicted_idle: int = 0           # full-and-idle buckets dropped lazily
    evicted_forced: int = 0         # idle buckets dropped by the size cap

    @property
    def decisions(self) -> int:
        return self.admitted + self.denied


class _StatsStripe:
    """One block of decision counters.

    In the default layout (one stripe per lock shard) the counters are
    updated while the owning shard's lock is already held, so the hot path
    pays zero extra acquisitions.  When ``stats_stripes`` is configured
    below ``lock_shards``, stripes are shared across shards and guarded by
    their own (low-contention) lock instead.

    ``rule_hits`` is not stored: a hit is any decision that is not a miss,
    so it is derived as ``admitted + denied - rule_misses`` at merge time,
    which spares the hit path one counter increment per decision.
    """

    __slots__ = ("admitted", "denied", "rule_misses", "unknown_keys", "lock")

    def __init__(self) -> None:
        self.admitted = 0
        self.denied = 0
        self.rule_misses = 0
        self.unknown_keys = 0
        self.lock = threading.Lock()


@dataclass(frozen=True, slots=True)
class LeaseSnapshot:
    """One live credit lease, as carried inside a :class:`BucketSnapshot`.

    ``ttl_remaining`` is relative (seconds left at snapshot time) so a
    restore on a different monotonic clock re-arms the expiry correctly.
    ``holder`` is the router address the grant was sent to — opaque to the
    controller, used by the server to aim revocations.
    """

    lease_id: int
    granted: float
    ttl_remaining: float
    holder: "tuple | None" = None


class _LeaseRecord:
    """Ledger entry for one outstanding credit lease (shard-lock guarded)."""

    __slots__ = ("lease_id", "key", "granted", "expiry", "holder")

    def __init__(self, lease_id: int, key: str, granted: float,
                 expiry: float, holder: "tuple | None"):
        self.lease_id = lease_id
        self.key = key
        self.granted = granted
        self.expiry = expiry
        self.holder = holder


@dataclass(frozen=True, slots=True)
class BucketSnapshot:
    """Replication unit sent from an HA master to its slave (§III-C).

    ``leases`` carries the key's live lease-ledger entries: the snapshot
    credit is post-debit, so a restored node that forgot the ledger would
    silently shrink the over-admission bound to zero while routers keep
    spending their balances — restoring the ledger keeps the accounting
    exact across a SIGKILL re-seed.
    """

    key: str
    capacity: float
    refill_rate: float
    credit: float
    leases: "tuple[LeaseSnapshot, ...]" = ()


class AdmissionController:
    """Per-node admission control over a local table of leaky buckets."""

    def __new__(cls, rule_source=None, config=None, **kwargs):
        # Backend dispatch: constructing the base class with the (default)
        # slab backend transparently yields the columnar subclass, so every
        # call site — runtime, simulator, procplane — picks the layout from
        # config alone.  Explicit subclasses (the seed-path benchmark
        # controller, SlabAdmissionController itself) are left untouched:
        # their internals assume the layout they were written against.
        if cls is AdmissionController:
            backend = (config.table_backend if config is not None
                       else AdmissionConfig().table_backend)
            if backend == "slab":
                return super().__new__(SlabAdmissionController)
        return super().__new__(cls)

    def __init__(
        self,
        rule_source: RuleSource,
        config: Optional[AdmissionConfig] = None,
        *,
        clock: Clock = MONOTONIC,
        shard_range: "Optional[tuple[int, int]]" = None,
    ):
        self.config = config or AdmissionConfig()
        self._source = rule_source
        self._clock = clock
        # Cross-node ownership: ``shard_range=(index, count)`` declares
        # this controller the owner of keys with
        # ``crc32(key) % count == index`` (the paper's Fig. 2 partition
        # function, applied intra-node by the multi-process plane).
        # Ownership is advisory — ``check`` still decides any key it is
        # handed (a restart window or a forwarded v1 datagram may land
        # out-of-range traffic here) — but :meth:`owns` lets the wire
        # layer route and count hops correctly.
        if shard_range is not None:
            index, count = shard_range
            if count < 1 or not 0 <= index < count:
                raise ConfigurationError(
                    f"shard_range must satisfy 0 <= index < count, "
                    f"got {shard_range}")
        self.shard_range = shard_range
        n_shards = self.config.lock_shards
        self._n_shards = n_shards
        self._shards: list[Dict[str, LeakyBucket]] = [
            {} for _ in range(n_shards)]
        self._locks = [threading.Lock() for _ in range(n_shards)]
        # Decision counters: one stripe per shard by default, updated under
        # the shard lock the decision already holds.  An explicit
        # ``stats_stripes`` below ``lock_shards`` shares stripes across
        # shards; those updates then run under the stripe's own lock,
        # *after* the shard lock is released (never nested).
        stripes = self.config.stats_stripes or n_shards
        self._stripe_exclusive = stripes >= n_shards
        self._stripes = [_StatsStripe()
                         for _ in range(n_shards if self._stripe_exclusive
                                        else stripes)]
        self._n_stripes = len(self._stripes)
        # One tuple per shard so the hot path resolves lock, table and
        # stripe with a single attribute lookup and list index.
        self._shard_state = [
            (self._locks[i], self._shards[i],
             self._stripes[i % self._n_stripes])
            for i in range(n_shards)]
        # Cold-path maintenance counters (one maintenance thread at a time
        # in practice; the lock covers concurrent admin callers).
        self._control_lock = threading.Lock()
        self._syncs = 0
        self._checkpoints = 0
        # Credit-lease ledger, sharded like the bucket table and guarded
        # by the same shard locks (a key's grants always serialize with
        # its admission decisions).  ``_lease_outstanding`` caches the
        # per-key sum of live grants so the max_lease_fraction bound is
        # O(1) at grant time.
        self._lease_shards: "list[dict[int, _LeaseRecord]]" = [
            {} for _ in range(n_shards)]
        self._lease_outstanding: "list[dict[str, float]]" = [
            {} for _ in range(n_shards)]
        self._lease_ids = itertools.count(1)
        # Cold-path lease/eviction counters (under _control_lock).
        self._lease_grants = 0
        self._lease_refusals = 0
        self._lease_granted_credits = 0.0
        self._lease_returns = 0
        self._lease_returned_credits = 0.0
        self._lease_expired = 0
        self._lease_revoked = 0
        self._evicted_idle = 0
        self._evicted_forced = 0
        #: Fired (outside any lock) with a list of ``(key, _LeaseRecord)``
        #: pairs whenever a rule push invalidates live leases; the server
        #: installs a sender that aims LEASE_REVOKE frames at the holders.
        self.lease_revoke_hook: "Optional[Callable[[list], None]]" = None

    # ------------------------------------------------------------------ #
    # hot path
    # ------------------------------------------------------------------ #

    def owns(self, key: str) -> bool:
        """Does this controller's shard range cover ``key``?

        Always ``True`` without a ``shard_range``.  Uses CRC32 — the
        cross-node routing hash — so a router hashing over the published
        port map and a worker checking ownership always agree.
        """
        if self.shard_range is None:
            return True
        index, count = self.shard_range
        return crc32_of(key) % count == index

    def _shard_of(self, key: str) -> int:
        # Builtin str hashing, not CRC32: the hash is cached on the string
        # object after the first call, where CRC32 must re-encode the key
        # on every decision.  CRC32 remains the cross-node routing hash
        # (paper Fig. 2); shard choice is process-local.
        if self._n_shards == 1:
            return 0
        return hash(key) % self._n_shards

    def check(self, key: str, cost: float = 1.0) -> bool:
        """Decide admission for one request with QoS key ``key``.

        Returns ``True`` to admit, ``False`` to deny.  The whole decision —
        table lookup, lazy rule fetch on miss, bucket consume, statistics —
        executes under exactly one lock: the key's shard lock (which
        reproduces the paper's synchronized-map behaviour when
        ``lock_shards == 1``).
        """
        if not self._stripe_exclusive:
            return self._check_striped(key, cost)
        n = self._n_shards
        lock, table, stripe = self._shard_state[
            hash(key) % n if n > 1 else 0]
        with lock:
            bucket = table.get(key)
            if bucket is None:
                bucket, unknown = self._create_bucket_locked(table, key)
                stripe.rule_misses += 1
                if unknown:
                    stripe.unknown_keys += 1
            if bucket.try_consume_unlocked(cost):
                stripe.admitted += 1
                return True
            stripe.denied += 1
            return False

    def _check_striped(self, key: str, cost: float) -> bool:
        """Decision variant for ``stats_stripes < lock_shards``.

        The stripe is shared across shards, so its counters are updated
        under the stripe's own lock *after* the shard lock is released —
        two flat acquisitions per decision, never nested.
        """
        n = self._n_shards
        lock, table, stripe = self._shard_state[hash(key) % n if n > 1 else 0]
        hit = True
        unknown = False
        with lock:
            bucket = table.get(key)
            if bucket is None:
                hit = False
                bucket, unknown = self._create_bucket_locked(table, key)
            allowed = bucket.try_consume_unlocked(cost)
        with stripe.lock:
            if not hit:
                stripe.rule_misses += 1
                if unknown:
                    stripe.unknown_keys += 1
            if allowed:
                stripe.admitted += 1
            else:
                stripe.denied += 1
        return allowed

    def _create_bucket_locked(self, table: Dict[str, LeakyBucket],
                              key: str) -> "tuple[LeakyBucket, bool]":
        """Materialize a bucket for ``key`` under its shard lock.

        Returns ``(bucket, unknown)`` where ``unknown`` flags a key without
        a database row.  Acquires no controller or bucket lock: the caller
        folds the unknown-key counter into its striped stats update, so the
        miss path no longer nests the old global stats lock inside the
        shard lock.
        """
        rule = self._source.get_rule(key)
        if rule is None:
            # Guest/unknown traffic: apply the default rule (§II-D).
            rule = self.config.default_rule.rule_for(key)
            if not self.config.default_rule.memorize_unknown_keys:
                return LeakyBucket(
                    rule.capacity, rule.refill_rate,
                    mode=self.config.refill_mode, clock=self._clock), True
            unknown = True
        else:
            unknown = False
        bucket = LeakyBucket(
            rule.capacity,
            rule.refill_rate,
            initial_credit=rule.initial_credit(),
            mode=self.config.refill_mode,
            clock=self._clock,
        )
        table[key] = bucket
        return bucket, unknown

    # ------------------------------------------------------------------ #
    # frame-at-a-time admission
    # ------------------------------------------------------------------ #

    def _batch_groups(
            self, keys: Sequence[str],
    ) -> "list[Optional[Sequence[int]]]":
        """Group frame positions by lock shard (preserving per-key order).

        Returns a list aligned with the shard index — ``groups[i]`` is the
        frame positions owned by shard ``i``, or empty/``None`` for shards
        the frame does not touch (callers skip falsy entries).  Flat list
        indexing keeps this pre-pass (one hash per key, paid instead of
        one lock per key) as cheap as it can be in Python.
        """
        n = self._n_shards
        if n <= 16:
            # Few shards: pre-allocating every group removes the per-key
            # emptiness branch from the loop; untouched shards stay as
            # (falsy) empty lists.
            groups: "list[Optional[list[int]]]" = [[] for _ in range(n)]
            if n & (n - 1) == 0:
                # Power-of-two shard counts (the default, and what
                # OPERATIONS recommends) let the mod collapse to a mask;
                # Python's ``%`` and ``&`` agree for any hash sign when n
                # is a power of two.
                mask = n - 1
                for pos, key in enumerate(keys):
                    groups[hash(key) & mask].append(pos)
            else:
                for pos, key in enumerate(keys):
                    groups[hash(key) % n].append(pos)
            return groups
        # Many shards, small frames: ``None`` holes avoid allocating a
        # list per untouched shard.
        groups = [None] * n
        if n & (n - 1) == 0:
            mask = n - 1
            for pos, key in enumerate(keys):
                index = hash(key) & mask
                positions = groups[index]
                if positions is None:
                    groups[index] = [pos]
                else:
                    positions.append(pos)
        else:
            for pos, key in enumerate(keys):
                index = hash(key) % n
                positions = groups[index]
                if positions is None:
                    groups[index] = [pos]
                else:
                    positions.append(pos)
        return groups

    def check_batch(self, keys: Sequence[str],
                    costs: "Optional[Sequence[float]]" = None) -> int:
        """Decide a whole batch frame; bit ``i`` of the result = verdict
        for ``keys[i]`` (set = admitted).

        This is the frame-at-a-time fast path behind protocol-v2 batch
        frames: entries are grouped by lock shard, each shard lock is taken
        exactly **once per frame**, and one clock reading is shared by every
        refill in the frame (``try_consume_unlocked(now=...)``), so an
        N-entry frame costs S lock acquisitions for S distinct shards and a
        single clock read instead of N of each.  Per-key decision order is
        preserved within a shard, so repeated keys interact with their
        bucket exactly as N sequential :meth:`check` calls would.

        The packed bitmap is what the server encodes straight into the v2
        response frame (see ``protocol.encode_response_frame_bits``).
        """
        n_keys = len(keys)
        if n_keys == 0:
            return 0
        verdicts = 0
        exclusive = self._stripe_exclusive
        if self._n_shards == 1:
            shard_groups: "list[Optional[Sequence[int]]]" = [range(n_keys)]
        else:
            shard_groups = self._batch_groups(keys)
        # One clock reading serves the whole frame: every bucket's refill
        # guard (``dt <= 0`` → no-op) makes a slightly stale ``now`` safe,
        # and per-bucket time still never moves backward.
        now = self._clock()
        for index, positions in enumerate(shard_groups):
            if not positions:
                continue
            lock, table, stripe = self._shard_state[index]
            admitted = denied = misses = unknowns = 0
            with lock:
                for pos in positions:
                    key = keys[pos]
                    cost = 1.0 if costs is None else costs[pos]
                    bucket = table.get(key)
                    if bucket is None:
                        bucket, unknown = self._create_bucket_locked(table, key)
                        misses += 1
                        if unknown:
                            unknowns += 1
                    if bucket.try_consume_unlocked(cost, now=now):
                        verdicts |= 1 << pos
                        admitted += 1
                    else:
                        denied += 1
                if exclusive:
                    stripe.admitted += admitted
                    stripe.denied += denied
                    stripe.rule_misses += misses
                    stripe.unknown_keys += unknowns
            if not exclusive:
                with stripe.lock:
                    stripe.admitted += admitted
                    stripe.denied += denied
                    stripe.rule_misses += misses
                    stripe.unknown_keys += unknowns
        return verdicts

    # ------------------------------------------------------------------ #
    # credit leases
    # ------------------------------------------------------------------ #

    def lease_grant(self, key: str, want: float, ttl: float,
                    holder: "tuple | None" = None) -> "tuple[int, float, float]":
        """Grant up to ``want`` credits of ``key``'s bucket as a lease.

        Returns ``(lease_id, granted, ttl)``; ``granted == 0`` (with
        ``lease_id == 0``) is a refusal.  The bucket is debited *here*, at
        grant time, under the key's shard lock — the same lock every
        admission decision for the key takes — so the sum the system can
        ever admit is exactly the credits the bucket issued, and the
        worst-case *temporal* over-admission is bounded by the outstanding
        grants, which :attr:`~repro.core.rules.QoSRule.max_lease_fraction`
        (or the config default) caps per key.
        """
        if want <= 0 or ttl <= 0:
            return (0, 0.0, 0.0)
        ttl = min(ttl, self.config.max_lease_ttl)
        rule = self._source.get_rule(key)
        fraction = self.config.max_lease_fraction
        if rule is not None and rule.max_lease_fraction is not None:
            fraction = rule.max_lease_fraction
        n = self._n_shards
        index = hash(key) % n if n > 1 else 0
        lock, table, _stripe = self._shard_state[index]
        granted = 0.0
        lease_id = 0
        with lock:
            bucket = table.get(key)
            if bucket is None:
                bucket, _unknown = self._create_bucket_locked(table, key)
            outstanding = self._lease_outstanding[index]
            headroom = fraction * bucket.capacity - outstanding.get(key, 0.0)
            ask = want if want < headroom else headroom
            if ask > _LEASE_EPSILON:
                granted = bucket.lease_debit_unlocked(ask)
            if granted > 0.0:
                lease_id = next(self._lease_ids)
                self._lease_shards[index][lease_id] = _LeaseRecord(
                    lease_id, key, granted, self._clock() + ttl, holder)
                outstanding[key] = outstanding.get(key, 0.0) + granted
        with self._control_lock:
            if granted > 0.0:
                self._lease_grants += 1
                self._lease_granted_credits += granted
            else:
                self._lease_refusals += 1
        return (lease_id, granted, ttl if granted > 0.0 else 0.0)

    def lease_return(self, key: str, lease_id: int, credits: float) -> float:
        """Close lease ``lease_id``, re-crediting its unspent remainder.

        Returns the credits actually accepted back.  The return is
        validated against the ledger — an unknown or stale lease id, a
        mismatched key, or a remainder above the recorded grant yields 0 /
        a clamp, so a confused (or fuzzed) router can never mint credit.
        A valid return with ``credits == 0`` just closes the ledger entry.
        """
        n = self._n_shards
        index = hash(key) % n if n > 1 else 0
        lock, table, _stripe = self._shard_state[index]
        accepted = 0.0
        closed = False
        with lock:
            record = self._lease_shards[index].get(lease_id)
            if record is not None and record.key == key:
                del self._lease_shards[index][lease_id]
                self._drop_outstanding_locked(index, key, record.granted)
                closed = True
                if credits > 0.0:
                    bucket = table.get(key)
                    if bucket is not None:
                        give = min(credits, record.granted)
                        accepted = bucket.lease_return_unlocked(give)
        if closed:
            with self._control_lock:
                self._lease_returns += 1
                self._lease_returned_credits += accepted
        return accepted

    def _drop_outstanding_locked(self, index: int, key: str,
                                 granted: float) -> None:
        outstanding = self._lease_outstanding[index]
        remaining = outstanding.get(key, 0.0) - granted
        if remaining > _LEASE_EPSILON:
            outstanding[key] = remaining
        else:
            outstanding.pop(key, None)

    def lease_expire(self, now: Optional[float] = None) -> int:
        """Drop ledger entries whose TTL has passed; return how many.

        Expired credit is *not* re-credited: the router may have spent any
        part of its balance, so forfeiting the remainder errs strictly on
        the side of under-admission (bounded by one grant per key per
        TTL).  Routers that want the remainder back return it proactively
        before the TTL.  Runs shard-at-a-time from housekeeping.
        """
        expired = 0
        for index in range(self._n_shards):
            lock = self._locks[index]
            with lock:
                ledger = self._lease_shards[index]
                if not ledger:
                    continue
                cutoff = self._clock() if now is None else now
                dead = [r for r in ledger.values() if r.expiry <= cutoff]
                for record in dead:
                    del ledger[record.lease_id]
                    self._drop_outstanding_locked(index, record.key,
                                                  record.granted)
                expired += len(dead)
        if expired:
            with self._control_lock:
                self._lease_expired += expired
        return expired

    def lease_count(self) -> int:
        """Live ledger entries across all shards (point-in-time)."""
        # Lock-free stat: the shard list is immutable after __init__ and
        # len() of each dict is atomic under the GIL — a stale count is
        # acceptable for a point-in-time gauge.
        # janus-lint: disable=guard-inference
        return sum(len(s) for s in self._lease_shards)

    def lease_outstanding_total(self) -> float:
        """Sum of live granted credits — the current over-admission bound."""
        total = 0.0
        for index in range(self._n_shards):
            with self._locks[index]:
                total += sum(self._lease_outstanding[index].values())
        return total

    def _revoke_leases_for_key_locked(self, index: int,
                                      key: str) -> "list[_LeaseRecord]":
        """Kill ``key``'s live leases under its shard lock (rule push)."""
        ledger = self._lease_shards[index]
        doomed = [r for r in ledger.values() if r.key == key]
        for record in doomed:
            del ledger[record.lease_id]
            self._drop_outstanding_locked(index, key, record.granted)
        return doomed

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #

    @property
    def stats(self) -> AdmissionStats:
        """Merged view of the per-shard counter stripes.

        Lazily assembled on access; individual int reads are atomic under
        the GIL, so the merge never blocks the hot path.  Counters from
        different stripes may be skewed by in-flight decisions, exactly as
        a locked read taken a moment earlier or later would be.
        """
        merged = AdmissionStats(
            syncs=self._syncs,
            checkpoints=self._checkpoints,
            lease_grants=self._lease_grants,
            lease_refusals=self._lease_refusals,
            lease_granted_credits=self._lease_granted_credits,
            lease_returns=self._lease_returns,
            lease_returned_credits=self._lease_returned_credits,
            lease_expired=self._lease_expired,
            lease_revoked=self._lease_revoked,
            leases_active=self.lease_count(),
            lease_outstanding_credits=self.lease_outstanding_total(),
            evicted_idle=self._evicted_idle,
            evicted_forced=self._evicted_forced)
        for stripe in self._stripes:
            merged.admitted += stripe.admitted
            merged.denied += stripe.denied
            merged.rule_misses += stripe.rule_misses
            merged.unknown_keys += stripe.unknown_keys
        # Hits are derived (see _StatsStripe); clamp against the transient
        # skew of reading admitted/denied before a concurrent miss lands.
        merged.rule_hits = max(
            0, merged.admitted + merged.denied - merged.rule_misses)
        return merged

    def stats_snapshot(self) -> dict:
        """The merged stats as a plain dict (metrics-export shape)."""
        s = self.stats
        return {
            "admitted": s.admitted,
            "denied": s.denied,
            "rule_hits": s.rule_hits,
            "rule_misses": s.rule_misses,
            "unknown_keys": s.unknown_keys,
            "syncs": s.syncs,
            "checkpoints": s.checkpoints,
            "lease_grants": s.lease_grants,
            "lease_refusals": s.lease_refusals,
            "lease_granted_credits": s.lease_granted_credits,
            "lease_returns": s.lease_returns,
            "lease_returned_credits": s.lease_returned_credits,
            "lease_expired": s.lease_expired,
            "lease_revoked": s.lease_revoked,
            "leases_active": s.leases_active,
            "lease_outstanding_credits": s.lease_outstanding_credits,
            "evicted_idle": s.evicted_idle,
            "evicted_forced": s.evicted_forced,
        }

    def stripe_snapshots(self) -> "list[Callable[[], dict]]":
        """One live dict-snapshot callable per stats stripe.

        Lets an exporter surface the *distribution* of decisions across
        stripes (how even the shard hashing is, whether one stripe is
        hot) without adding any bookkeeping to the decision path: the
        callables read the stripe counters lazily at scrape time.
        """
        def make(stripe: _StatsStripe) -> "Callable[[], dict]":
            return lambda: {
                "admitted": stripe.admitted,
                "denied": stripe.denied,
                "rule_misses": stripe.rule_misses,
                "unknown_keys": stripe.unknown_keys,
            }
        return [make(stripe) for stripe in self._stripes]

    # ------------------------------------------------------------------ #
    # housekeeping (driven by threads in the runtime, events in the sim)
    # ------------------------------------------------------------------ #

    def refill_all(self) -> int:
        """Housekeeping refill pass over every bucket (INTERVAL mode).

        Returns the number of buckets refilled.  Harmless (a no-op advance)
        in CONTINUOUS mode.  The pass is shard-at-a-time: each shard lock
        is held only long enough to advance that shard's buckets with one
        shared clock reading, so workers on the other shards are never
        stalled.

        The pass doubles as the bucket-table memory bound.  A bucket that
        saw no decision since the previous sweep *and* sits at full credit
        is dropped; when ``max_table_entries`` caps the table and it is
        over the cap, idle-but-not-full buckets are evicted too.  Every
        evicted bucket's credit is check-pointed to the rule source
        first, so the next materialization resumes from it — eviction is
        lossless even for rules carrying a stale check-pointed credit.
        Keys with outstanding credit leases are never evicted.
        """
        count = 0
        cap = self.config.max_table_entries
        force_budget = max(0, self.table_size() - cap) if cap else 0
        evicted_idle = 0
        evicted_forced = 0
        evict_credits: Dict[str, float] = {}
        for index, (shard, lock) in enumerate(zip(self._shards, self._locks)):
            with lock:
                now = self._clock()
                leased = self._lease_outstanding[index]
                doomed: "list[str] | None" = None
                for key, bucket in shard.items():
                    bucket.advance_unlocked(now)
                    activity = bucket.consumed_total + bucket.denied_total
                    idle = bucket.activity_at_sweep == activity
                    bucket.activity_at_sweep = activity
                    if not idle or key in leased:
                        continue
                    credit = bucket.credit_unlocked(now)
                    if credit >= bucket.capacity - _LEASE_EPSILON:
                        evicted_idle += 1
                    elif evicted_forced < force_budget:
                        evicted_forced += 1
                    else:
                        continue
                    evict_credits[key] = credit
                    if doomed is None:
                        doomed = []
                    doomed.append(key)
                count += len(shard)
                if doomed:
                    for key in doomed:
                        del shard[key]
        if evict_credits:
            self._source.checkpoint(evict_credits)   # no lock held
        if evicted_idle or evicted_forced:
            with self._control_lock:
                self._evicted_idle += evicted_idle
                self._evicted_forced += evicted_forced
        return count

    def sync_rules(self) -> int:
        """Pull rule updates from the source for all locally known keys.

        "The QoS server makes queries to the database with the QoS keys in
        the local QoS rule table with a configurable update interval"
        (§II-D).  Keys whose rows were deleted fall back to the default
        rule; changed capacity/rate are applied in place.  Returns the
        number of buckets updated.
        """
        local_keys = self.local_keys()
        fresh = self._source.get_rules(local_keys)
        updated = 0
        revoked: "list[tuple[str, _LeaseRecord]]" = []
        for key in local_keys:
            shard = self._shard_of(key)
            with self._locks[shard]:
                bucket = self._shards[shard].get(key)
                if bucket is None:
                    continue
                rule = fresh.get(key)
                if rule is None:
                    default = self.config.default_rule
                    if (bucket.capacity, bucket.refill_rate) != (default.capacity,
                                                                 default.refill_rate):
                        bucket.update_rule_unlocked(default.capacity,
                                                    default.refill_rate)
                        updated += 1
                        # A changed rule invalidates outstanding leases:
                        # a router spending a stale balance would keep
                        # admitting at the old plan for up to a TTL.
                        for record in self._revoke_leases_for_key_locked(
                                shard, key):
                            revoked.append((key, record))
                elif (bucket.capacity, bucket.refill_rate) != (rule.capacity,
                                                               rule.refill_rate):
                    bucket.update_rule_unlocked(rule.capacity, rule.refill_rate)
                    updated += 1
                    for record in self._revoke_leases_for_key_locked(
                            shard, key):
                        revoked.append((key, record))
        with self._control_lock:
            self._syncs += 1
            self._lease_revoked += len(revoked)
        if revoked and self.lease_revoke_hook is not None:
            self.lease_revoke_hook(revoked)       # outside every lock
        return updated

    def checkpoint(self) -> int:
        """Push current credits to the rule source (§II-D check-pointing).

        Returns the number of keys check-pointed.
        """
        credits: Dict[str, float] = {}
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                now = self._clock()
                for key, bucket in shard.items():
                    credits[key] = bucket.credit_unlocked(now)
        self._source.checkpoint(credits)      # DB round trip: no lock held
        with self._control_lock:
            self._checkpoints += 1
        return len(credits)

    # ------------------------------------------------------------------ #
    # replication / introspection
    # ------------------------------------------------------------------ #

    def local_keys(self) -> list[str]:
        """All keys currently materialized in the local QoS table."""
        keys: list[str] = []
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                keys.extend(shard.keys())
        return keys

    def table_size(self) -> int:
        return sum(len(s) for s in self._shards)

    def bucket_for(self, key: str) -> Optional[LeakyBucket]:
        """Direct bucket access (tests and metrics only)."""
        shard = self._shard_of(key)
        with self._locks[shard]:
            return self._shards[shard].get(key)

    def snapshot(self) -> list[BucketSnapshot]:
        """Consistent-enough copy of the local table for HA replication.

        Each bucket is snapshotted atomically; the table as a whole is not
        frozen, which matches the paper's continuously replicating slave.
        """
        snaps: list[BucketSnapshot] = []
        for index, (shard, lock) in enumerate(zip(self._shards, self._locks)):
            with lock:
                now = self._clock()
                ledger = self._lease_shards[index]
                by_key: "dict[str, list[LeaseSnapshot]]" = {}
                for record in ledger.values():
                    remaining = record.expiry - now
                    if remaining <= 0:
                        continue
                    by_key.setdefault(record.key, []).append(LeaseSnapshot(
                        lease_id=record.lease_id, granted=record.granted,
                        ttl_remaining=remaining, holder=record.holder))
                for key, bucket in shard.items():
                    snaps.append(BucketSnapshot(
                        key=key, capacity=bucket.capacity,
                        refill_rate=bucket.refill_rate,
                        credit=bucket.credit_unlocked(now),
                        leases=tuple(by_key.get(key, ()))))
        return snaps

    def restore(self, snapshots: Iterable[BucketSnapshot]) -> int:
        """Load a replicated table (slave promotion / replacement node).

        Lease-ledger entries ride in the snapshots: the snapshot credit is
        post-debit, so restoring the ledger (rather than forgetting it)
        keeps the outstanding-grant bound intact and lets the restored
        node validate returns and expire the grants on schedule.
        """
        count = 0
        max_lease_id = 0
        for snap in snapshots:
            shard = self._shard_of(snap.key)
            with self._locks[shard]:
                self._restore_entry_locked(shard, snap)
                if snap.leases:
                    now = self._clock()
                    ledger = self._lease_shards[shard]
                    outstanding = self._lease_outstanding[shard]
                    for lease in snap.leases:
                        if lease.lease_id in ledger or \
                                lease.ttl_remaining <= 0:
                            continue
                        ledger[lease.lease_id] = _LeaseRecord(
                            lease.lease_id, snap.key, lease.granted,
                            now + lease.ttl_remaining, lease.holder)
                        outstanding[snap.key] = (
                            outstanding.get(snap.key, 0.0) + lease.granted)
                        if lease.lease_id > max_lease_id:
                            max_lease_id = lease.lease_id
            count += 1
        if max_lease_id:
            # Never re-issue a restored id: a router still holding the
            # old lease must not collide with a fresh grant.
            with self._control_lock:
                self._lease_ids = itertools.count(
                    max(max_lease_id + 1, next(self._lease_ids)))
        return count

    def drop_buckets(self, keys: "Iterable[str]") -> int:
        """Release buckets that moved to another owner (reshard COMMIT).

        The moved keys' snapshots — credit *and* lease ledger — already
        travelled to the new owner, so the stale residents are dropped
        without re-crediting anything: the transferred ledger keeps the
        debit, and a resident left behind would double-count credit in
        fleet-wide accounting and check-point stale values over the new
        owner's.  Returns the number of buckets actually dropped.
        """
        dropped = 0
        for key in keys:
            shard = self._shard_of(key)
            with self._locks[shard]:
                if self._drop_bucket_locked(shard, key):
                    dropped += 1
                # Ledger entries for the moved key went with the
                # snapshot; dropping the local copies is not a revoke
                # (no hook, no re-credit — the new owner holds them).
                self._revoke_leases_for_key_locked(shard, key)
        return dropped

    def _drop_bucket_locked(self, shard: int, key: str) -> bool:
        """Remove one bucket under its shard lock (backend-specific)."""
        return self._shards[shard].pop(key, None) is not None

    def _restore_entry_locked(self, shard: int, snap: BucketSnapshot) -> None:
        """Materialize or overwrite one snapshot entry (backend-specific)."""
        bucket = self._shards[shard].get(snap.key)
        if bucket is None:
            bucket = LeakyBucket(
                snap.capacity, snap.refill_rate,
                initial_credit=snap.credit,
                mode=self.config.refill_mode, clock=self._clock)
            self._shards[shard][snap.key] = bucket
        else:
            bucket.update_rule_unlocked(snap.capacity, snap.refill_rate)
            bucket.restore_credit_unlocked(snap.credit)

    def table_bytes(self) -> int:
        """Estimated resident bytes of the QoS table (metrics gauge).

        Walks the table under the shard locks at scrape time.  For the
        object backend this sums the shard dicts plus a per-bucket estimate
        (the slotted instance, its lock and its boxed floats/counters); the
        slab backend overrides it with exact column accounting.
        """
        total = 0
        for shard, lock in zip(self._shards, self._locks):
            with lock:
                total += sys.getsizeof(shard)
                for bucket in shard.values():
                    total += sys.getsizeof(bucket) + _BUCKET_AUX_BYTES
        return total


class SlabBucketView:
    """Introspection adapter presenting one slab slot as a bucket.

    Returned by :meth:`SlabAdmissionController.bucket_for` so tests and
    metrics keep the ``bucket_for(key).peek_credit()`` surface they use
    against the object backend.  The view holds no slot number: the key is
    re-resolved under the shard lock on every access, so it stays correct
    across an eviction + re-materialization (and raises ``KeyError`` while
    the key is absent, where a stale slot would silently read another
    bucket's columns).
    """

    __slots__ = ("_controller", "_key")

    def __init__(self, controller: "SlabAdmissionController", key: str):
        self._controller = controller
        self._key = key

    def _resolve(self) -> "tuple[threading.Lock, SlabShard, int]":
        c = self._controller
        index = c._shard_of(self._key)
        slab = c._slabs[index]
        return c._locks[index], slab, index

    @property
    def capacity(self) -> float:
        lock, slab, _ = self._resolve()
        with lock:
            return slab.capacity_unlocked(slab.index[self._key])

    @property
    def refill_rate(self) -> float:
        lock, slab, _ = self._resolve()
        with lock:
            return slab.refill_rate_unlocked(slab.index[self._key])

    @property
    def credit(self) -> float:
        """Current credit (advanced to now in continuous mode)."""
        lock, slab, _ = self._resolve()
        with lock:
            return slab.credit_unlocked(slab.index[self._key])

    def peek_credit(self) -> float:
        """Credit as of the last update, without advancing time."""
        lock, slab, _ = self._resolve()
        with lock:
            return slab.peek_credit_unlocked(slab.index[self._key])

    def __repr__(self) -> str:
        return (f"SlabBucketView(key={self._key!r}, "
                f"credit={self.peek_credit():.3f})")


class SlabAdmissionController(AdmissionController):
    """Admission controller backed by the columnar slab store.

    Same semantics as the object backend — the equivalence suite drives
    randomized op sequences against both and demands bit-identical
    admit/deny streams — at ~1/4 the resident bytes per key and with
    allocation-free decisions.  Constructed automatically by
    ``AdmissionController(...)`` when ``config.table_backend == "slab"``.

    The lease ledger, statistics stripes, shard locks and snapshot format
    are inherited unchanged; only the bucket *storage* differs, so every
    override below is the base method with ``bucket.<op>_unlocked``
    replaced by the slab's slot accessors under the same shard lock.
    """

    def __init__(
        self,
        rule_source: RuleSource,
        config: Optional[AdmissionConfig] = None,
        *,
        clock: Clock = MONOTONIC,
        shard_range: "Optional[tuple[int, int]]" = None,
    ):
        super().__init__(rule_source, config, clock=clock,
                         shard_range=shard_range)
        continuous = self.config.refill_mode is RefillMode.CONTINUOUS
        self._continuous = continuous
        self._plans = PlanTable()
        self._slabs = [SlabShard(self._plans, clock=clock,
                                 continuous=continuous)
                       for _ in range(self._n_shards)]
        # Mirror of _shard_state for the slab hot path: (lock, slab,
        # stripe) per shard, resolved with one list index per decision.
        # The inherited _shards dicts stay empty and unused.
        self._slab_state = [
            (self._locks[i], self._slabs[i],
             self._stripes[i % self._n_stripes])
            for i in range(self._n_shards)]
        # check_batch's per-group state with the frame kernel prebound —
        # one list index replaces an attribute walk per shard per frame.
        self._slab_frame_state = [
            (lock, slab, slab.consume_frame_unlocked, stripe)
            for lock, slab, stripe in self._slab_state]

    # ------------------------------------------------------------------ #
    # hot path
    # ------------------------------------------------------------------ #

    def _create_slot_locked(
            self, slab: SlabShard, key: str,
    ) -> "tuple[Optional[int], bool, Optional[LeakyBucket]]":
        """Materialize a slot for ``key`` under its shard lock.

        Returns ``(slot, unknown, transient)``.  A non-memorized unknown
        key gets no slot: like the object backend, the decision runs
        against a throwaway ``transient`` bucket that is never stored.
        """
        rule = self._source.get_rule(key)
        if rule is None:
            rule = self.config.default_rule.rule_for(key)
            if not self.config.default_rule.memorize_unknown_keys:
                return None, True, LeakyBucket(
                    rule.capacity, rule.refill_rate,
                    mode=self.config.refill_mode, clock=self._clock)
            unknown = True
        else:
            unknown = False
        plan = self._plans.intern(float(rule.capacity),
                                  float(rule.refill_rate))
        slot = slab.insert_unlocked(key, plan, rule.initial_credit())
        return slot, unknown, None

    def check(self, key: str, cost: float = 1.0) -> bool:
        if not self._stripe_exclusive:
            return self._check_striped(key, cost)
        n = self._n_shards
        lock, slab, stripe = self._slab_state[
            hash(key) % n if n > 1 else 0]
        with lock:
            slot = slab.index.get(key)
            if slot is None:
                slot, unknown, transient = self._create_slot_locked(slab, key)
                stripe.rule_misses += 1
                if unknown:
                    stripe.unknown_keys += 1
                if slot is None:
                    if transient.try_consume_unlocked(cost):
                        stripe.admitted += 1
                        return True
                    stripe.denied += 1
                    return False
            if slab.consume_unlocked(slot, cost):
                stripe.admitted += 1
                return True
            stripe.denied += 1
            return False

    def _check_striped(self, key: str, cost: float) -> bool:
        n = self._n_shards
        lock, slab, stripe = self._slab_state[hash(key) % n if n > 1 else 0]
        hit = True
        unknown = False
        with lock:
            slot = slab.index.get(key)
            if slot is None:
                hit = False
                slot, unknown, transient = self._create_slot_locked(slab, key)
            if slot is None:
                allowed = transient.try_consume_unlocked(cost)
            else:
                allowed = slab.consume_unlocked(slot, cost)
        with stripe.lock:
            if not hit:
                stripe.rule_misses += 1
                if unknown:
                    stripe.unknown_keys += 1
            if allowed:
                stripe.admitted += 1
            else:
                stripe.denied += 1
        return allowed

    def check_batch(self, keys: Sequence[str],
                    costs: "Optional[Sequence[float]]" = None) -> int:
        n_keys = len(keys)
        if n_keys == 0:
            return 0
        verdicts = 0
        exclusive = self._stripe_exclusive
        if self._n_shards == 1:
            shard_groups: "list[Optional[Sequence[int]]]" = [range(n_keys)]
        else:
            shard_groups = self._batch_groups(keys)
        # One clock reading serves the whole frame (see the base class).
        now = self._clock()
        unit_continuous = costs is None and self._continuous
        if unit_continuous:
            plan_rate = self._plans.rate
            plan_cap = self._plans.cap
            all_bits = _BITS
            threshold = _UNIT_THRESHOLD
        for index, positions in enumerate(shard_groups):
            if not positions:
                continue
            lock, slab, consume_frame, stripe = self._slab_frame_state[index]
            misses = unknowns = 0
            with lock:
                # One flat column loop for every key already resident;
                # only unseen keys fall out for materialization below.
                # The hottest shape — unit costs against a shard whose
                # live slots all share one plan — is decided right here,
                # with the plan's rate/capacity and every column hoisted
                # into locals, so the steady-state path pays no method
                # call or dispatch per group.  Arithmetic is op-for-op
                # ``SlabShard.consume_unlocked``; mixed plans, explicit
                # costs and interval mode take the general kernel.
                plan = slab.uniform_plan if unit_continuous else None
                if plan is not None:
                    r = plan_rate[plan]
                    c = plan_cap[plan]
                    refilling = r > 0.0
                    slot_of = slab.index
                    col_credit = slab.col_credit
                    col_last = slab.col_last
                    col_touch = slab.col_touch
                    epoch = slab.epoch
                    bits = 0
                    miss_positions = None
                    for pos in positions:
                        try:        # zero-cost until a key misses (3.11+)
                            slot = slot_of[keys[pos]]
                        except KeyError:
                            if miss_positions is None:
                                miss_positions = []
                            miss_positions.append(pos)
                            continue
                        credit = col_credit[slot]
                        dt = now - col_last[slot]
                        if dt > 0.0:
                            col_last[slot] = now
                            if refilling and credit < c:
                                credit += r * dt
                                if credit > c:
                                    credit = c
                        if col_touch[slot] != epoch:
                            col_touch[slot] = epoch
                        if credit >= threshold:
                            credit -= 1.0
                            col_credit[slot] = (
                                credit if credit > 0.0 else 0.0)
                            bits |= all_bits[pos]
                        else:
                            col_credit[slot] = credit
                    admitted = bits.bit_count()
                else:
                    bits, admitted, miss_positions = consume_frame(
                        keys, positions, costs, now)
                verdicts |= bits
                denied = len(positions) - admitted
                if miss_positions is not None:
                    denied -= len(miss_positions)
                    slab_index = slab.index
                    consume = slab.consume_unlocked
                    for pos in miss_positions:
                        key = keys[pos]
                        cost = 1.0 if costs is None else costs[pos]
                        # A key repeated within the frame missed once and
                        # is resident by its second occurrence.
                        slot = slab_index.get(key)
                        if slot is None:
                            slot, unknown, transient = \
                                self._create_slot_locked(slab, key)
                            misses += 1
                            if unknown:
                                unknowns += 1
                            if slot is None:
                                if transient.try_consume_unlocked(cost,
                                                                  now=now):
                                    verdicts |= 1 << pos
                                    admitted += 1
                                else:
                                    denied += 1
                                continue
                        if consume(slot, cost, now):
                            verdicts |= 1 << pos
                            admitted += 1
                        else:
                            denied += 1
                if exclusive:
                    stripe.admitted += admitted
                    if denied:
                        stripe.denied += denied
                    if misses:
                        stripe.rule_misses += misses
                        stripe.unknown_keys += unknowns
            if not exclusive:
                with stripe.lock:
                    stripe.admitted += admitted
                    if denied:
                        stripe.denied += denied
                    if misses:
                        stripe.rule_misses += misses
                        stripe.unknown_keys += unknowns
        return verdicts

    # ------------------------------------------------------------------ #
    # credit leases
    # ------------------------------------------------------------------ #

    def lease_grant(self, key: str, want: float, ttl: float,
                    holder: "tuple | None" = None) -> "tuple[int, float, float]":
        if want <= 0 or ttl <= 0:
            return (0, 0.0, 0.0)
        ttl = min(ttl, self.config.max_lease_ttl)
        rule = self._source.get_rule(key)
        fraction = self.config.max_lease_fraction
        if rule is not None and rule.max_lease_fraction is not None:
            fraction = rule.max_lease_fraction
        n = self._n_shards
        index = hash(key) % n if n > 1 else 0
        lock, slab, _stripe = self._slab_state[index]
        granted = 0.0
        lease_id = 0
        with lock:
            slot = slab.index.get(key)
            transient = None
            if slot is None:
                slot, _unknown, transient = self._create_slot_locked(slab, key)
            outstanding = self._lease_outstanding[index]
            if slot is None:
                capacity = transient.capacity
            else:
                capacity = slab.capacity_unlocked(slot)
            headroom = fraction * capacity - outstanding.get(key, 0.0)
            ask = want if want < headroom else headroom
            if ask > _LEASE_EPSILON:
                if slot is None:
                    granted = transient.lease_debit_unlocked(ask)
                else:
                    granted = slab.lease_debit_unlocked(slot, ask)
            if granted > 0.0:
                lease_id = next(self._lease_ids)
                self._lease_shards[index][lease_id] = _LeaseRecord(
                    lease_id, key, granted, self._clock() + ttl, holder)
                outstanding[key] = outstanding.get(key, 0.0) + granted
        with self._control_lock:
            if granted > 0.0:
                self._lease_grants += 1
                self._lease_granted_credits += granted
            else:
                self._lease_refusals += 1
        return (lease_id, granted, ttl if granted > 0.0 else 0.0)

    def lease_return(self, key: str, lease_id: int, credits: float) -> float:
        n = self._n_shards
        index = hash(key) % n if n > 1 else 0
        lock, slab, _stripe = self._slab_state[index]
        accepted = 0.0
        closed = False
        with lock:
            record = self._lease_shards[index].get(lease_id)
            if record is not None and record.key == key:
                del self._lease_shards[index][lease_id]
                self._drop_outstanding_locked(index, key, record.granted)
                closed = True
                if credits > 0.0:
                    slot = slab.index.get(key)
                    if slot is not None:
                        give = min(credits, record.granted)
                        accepted = slab.lease_return_unlocked(slot, give)
        if closed:
            with self._control_lock:
                self._lease_returns += 1
                self._lease_returned_credits += accepted
        return accepted

    # ------------------------------------------------------------------ #
    # housekeeping
    # ------------------------------------------------------------------ #

    def refill_all(self) -> int:
        count = 0
        cap = self.config.max_table_entries
        force_budget = max(0, self.table_size() - cap) if cap else 0
        evicted_idle = 0
        evicted_forced = 0
        evict_credits: Dict[str, float] = {}
        for index, (lock, slab, _stripe) in enumerate(self._slab_state):
            with lock:
                now = self._clock()
                leased = self._lease_outstanding[index]
                epoch = slab.epoch
                touch = slab.col_touch
                doomed: "list[str] | None" = None
                for key, slot in slab.index.items():
                    slab.advance_unlocked(slot, now)
                    # Epoch byte instead of the object backend's decision
                    # counters: an untouched slot saw no decision since the
                    # previous sweep.  Freshly inserted slots carry the
                    # current epoch, so — like the object backend's
                    # ``activity_at_sweep = -1`` — a bucket always survives
                    # at least one full sweep interval.
                    if touch[slot] == epoch or key in leased:
                        continue
                    credit = slab.credit_unlocked(slot, now)
                    if credit >= slab.capacity_unlocked(slot) - _LEASE_EPSILON:
                        evicted_idle += 1
                    elif evicted_forced < force_budget:
                        evicted_forced += 1
                    else:
                        continue
                    evict_credits[key] = credit
                    if doomed is None:
                        doomed = []
                    doomed.append(key)
                count += len(slab.index)
                if doomed:
                    for key in doomed:
                        slab.evict_unlocked(key)
                slab.bump_epoch_unlocked()
        if evict_credits:
            self._source.checkpoint(evict_credits)   # no lock held
        if evicted_idle or evicted_forced:
            with self._control_lock:
                self._evicted_idle += evicted_idle
                self._evicted_forced += evicted_forced
        return count

    def sync_rules(self) -> int:
        local_keys = self.local_keys()
        fresh = self._source.get_rules(local_keys)
        updated = 0
        revoked: "list[tuple[str, _LeaseRecord]]" = []
        for key in local_keys:
            shard = self._shard_of(key)
            slab = self._slabs[shard]
            with self._locks[shard]:
                slot = slab.index.get(key)
                if slot is None:
                    continue
                current = (slab.capacity_unlocked(slot),
                           slab.refill_rate_unlocked(slot))
                rule = fresh.get(key)
                if rule is None:
                    default = self.config.default_rule
                    if current != (default.capacity, default.refill_rate):
                        slab.set_plan_unlocked(slot, self._plans.intern(
                            float(default.capacity), float(default.refill_rate)))
                        updated += 1
                        for record in self._revoke_leases_for_key_locked(
                                shard, key):
                            revoked.append((key, record))
                elif current != (rule.capacity, rule.refill_rate):
                    slab.set_plan_unlocked(slot, self._plans.intern(
                        float(rule.capacity), float(rule.refill_rate)))
                    updated += 1
                    for record in self._revoke_leases_for_key_locked(
                            shard, key):
                        revoked.append((key, record))
        with self._control_lock:
            self._syncs += 1
            self._lease_revoked += len(revoked)
        if revoked and self.lease_revoke_hook is not None:
            self.lease_revoke_hook(revoked)       # outside every lock
        return updated

    def checkpoint(self) -> int:
        credits: Dict[str, float] = {}
        for lock, slab, _stripe in self._slab_state:
            with lock:
                now = self._clock()
                for key, slot in slab.index.items():
                    credits[key] = slab.credit_unlocked(slot, now)
        self._source.checkpoint(credits)      # DB round trip: no lock held
        with self._control_lock:
            self._checkpoints += 1
        return len(credits)

    # ------------------------------------------------------------------ #
    # replication / introspection
    # ------------------------------------------------------------------ #

    def local_keys(self) -> list[str]:
        keys: list[str] = []
        for lock, slab, _stripe in self._slab_state:
            with lock:
                keys.extend(slab.index.keys())
        return keys

    def table_size(self) -> int:
        return sum(len(slab) for slab in self._slabs)

    def bucket_for(self, key: str) -> "Optional[SlabBucketView]":
        """Direct bucket access (tests and metrics only)."""
        shard = self._shard_of(key)
        with self._locks[shard]:
            if key not in self._slabs[shard].index:
                return None
        return SlabBucketView(self, key)

    def snapshot(self) -> list[BucketSnapshot]:
        snaps: list[BucketSnapshot] = []
        for index, (lock, slab, _stripe) in enumerate(self._slab_state):
            with lock:
                now = self._clock()
                ledger = self._lease_shards[index]
                by_key: "dict[str, list[LeaseSnapshot]]" = {}
                for record in ledger.values():
                    remaining = record.expiry - now
                    if remaining <= 0:
                        continue
                    by_key.setdefault(record.key, []).append(LeaseSnapshot(
                        lease_id=record.lease_id, granted=record.granted,
                        ttl_remaining=remaining, holder=record.holder))
                for key, slot in slab.index.items():
                    snaps.append(BucketSnapshot(
                        key=key, capacity=slab.capacity_unlocked(slot),
                        refill_rate=slab.refill_rate_unlocked(slot),
                        credit=slab.credit_unlocked(slot, now),
                        leases=tuple(by_key.get(key, ()))))
        return snaps

    def _drop_bucket_locked(self, shard: int, key: str) -> bool:
        slab = self._slabs[shard]
        if key not in slab.index:
            return False
        slab.evict_unlocked(key)
        return True

    def _restore_entry_locked(self, shard: int, snap: BucketSnapshot) -> None:
        slab = self._slabs[shard]
        slot = slab.index.get(snap.key)
        plan = self._plans.intern(float(snap.capacity),
                                  float(snap.refill_rate))
        if slot is None:
            slab.insert_unlocked(snap.key, plan, snap.credit)
        else:
            slab.set_plan_unlocked(slot, plan)
            slab.restore_credit_unlocked(slot, snap.credit)

    def table_bytes(self) -> int:
        """Exact resident bytes of the slab columns, index and plan table."""
        total = self._plans.bytes_resident()
        for lock, slab, _stripe in self._slab_state:
            with lock:
                total += slab.bytes_resident()
        return total
