"""Regression gates for the admission hot path (paper §V-C).

Sweeps decisions/second over ``lock_shards ∈ {1, 8, 64}`` × worker counts
``{1, 4, 8}`` for the seed three-lock path, the fused
single-lock-per-decision path, and the frame-at-a-time ``check_batch``
path on both table backends; writes the matrix (plus resident-bytes
memory points) to ``BENCH_hotpath.json`` at the repository root for the
performance trajectory, and asserts three bars:

* fused ≥ 1.5× seed at (8 shards, 8 workers) — the ISSUE-1 gate;
* batch on the slab store ≥ 1.8× fused at (8 shards, 8 workers,
  batch=64) — the columnar-slab gate;
* slab resident bytes/key ≤ 1/4 of the object store (tracemalloc is
  exact byte accounting, so this one is deterministic).

Throughput gates re-measure in *paired* reps (fused then batch,
back-to-back) and pass on the best rep: on a shared box the noise is
multiplicative and hits adjacent runs alike, so a genuine regression
drags every rep down while a noisy-neighbour episode cannot sink all of
them.  Decision *semantics* must not differ between any of the paths —
only the throughput may.

Run directly with ``make bench-hotpath`` (no pytest-benchmark needed).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.admission import AdmissionController, InMemoryRuleSource
from repro.core.clock import ManualClock
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule
from repro.metrics.hotpath import (
    SeedPathController,
    measure_batch_decisions_per_sec,
    measure_decisions_per_sec,
    run_hotpath_matrix,
    write_report,
)
from repro.metrics.report import format_table
from repro.workload.keygen import uuid_keys

REPO_ROOT = Path(__file__).resolve().parent.parent
LOCK_SHARDS = (1, 8, 64)
WORKERS = (1, 4, 8)

#: The ISSUE-1 acceptance bar: fused ≥ 1.5× seed at lock_shards=8 and 8
#: worker threads, measured on the same machine in the same run.
TARGET_SPEEDUP = 1.5
TARGET_CONFIG = (8, 8)

#: The slab-store acceptance bar: frame-at-a-time ``check_batch`` on the
#: columnar backend ≥ 1.8× the fused per-key path at the same config,
#: batch=64 — and the slab's resident footprint at most a quarter of the
#: object store's.
BATCH_TARGET_SPEEDUP = 1.8
BATCH_SIZE = 64
MEMORY_RATIO_LIMIT = 0.25
#: Paired re-measure attempts before the throughput gate gives up.
GATE_REPS = 5


def _batch_backends() -> "tuple[str, ...]":
    """Backends for the batch arm; ``JANUS_HOTPATH_BACKENDS`` overrides.

    ``make bench-hotpath HOTPATH_BACKEND=object`` (or the env var
    directly) narrows the sweep to one store; the default benchmarks
    both so the object fallback stays measured.
    """
    import os
    raw = os.environ.get("JANUS_HOTPATH_BACKENDS", "slab object")
    backends = tuple(b for b in raw.replace(",", " ").split() if b)
    return backends or ("slab", "object")


@pytest.fixture(scope="module")
def hotpath_report():
    report = run_hotpath_matrix(LOCK_SHARDS, WORKERS,
                                checks_per_worker=15_000, reps=3,
                                batch_backends=_batch_backends())
    write_report(REPO_ROOT / "BENCH_hotpath.json", report)
    return report


def test_hotpath_matrix_written(hotpath_report, report_sink):
    rows = []
    for shards in LOCK_SHARDS:
        for workers in WORKERS:
            seed = hotpath_report.point("seed", shards, workers)
            fused = hotpath_report.point("fused", shards, workers)
            batch = hotpath_report.point("batch-slab", shards, workers)
            ratio = hotpath_report.batch_speedup(shards, workers)
            rows.append((shards, workers,
                         round(seed.decisions_per_sec),
                         round(fused.decisions_per_sec),
                         f"{hotpath_report.speedup(shards, workers):.2f}x",
                         round(batch.decisions_per_sec) if batch else "-",
                         f"{ratio:.2f}x" if ratio is not None else "-"))
    report_sink(format_table(
        ("lock shards", "workers", "seed checks/s", "fused checks/s",
         "fused/seed", "batch-slab/s", "batch/fused"),
        rows,
        title="Hot path: seed (3 locks) vs fused (1 lock) vs batch frame"))
    mem_rows = [
        (point.backend, point.n_keys, round(point.bytes_per_key, 1))
        for point in hotpath_report.memory]
    if mem_rows:
        report_sink(format_table(
            ("backend", "keys", "resident bytes/key"), mem_rows,
            title="Bucket table resident memory (tracemalloc)"))
    assert (REPO_ROOT / "BENCH_hotpath.json").exists()
    assert all(p.decisions_per_sec > 1_000 for p in hotpath_report.points)


def test_fused_path_beats_seed_path(hotpath_report):
    """The headline number: ≥ 1.5× at lock_shards=8, 8 workers."""
    speedup = hotpath_report.speedup(*TARGET_CONFIG)
    assert speedup is not None
    assert speedup >= TARGET_SPEEDUP, (
        f"fused path only {speedup:.2f}x the seed path at "
        f"lock_shards={TARGET_CONFIG[0]}, workers={TARGET_CONFIG[1]} "
        f"(target {TARGET_SPEEDUP}x)")


def test_batch_slab_beats_fused_per_key(hotpath_report):
    """Frame-at-a-time on the slab ≥ 1.8× fused per-key at (8, 8).

    Starts from the matrix's recorded ratio, then falls back to paired
    fused/batch re-measurement; the gate passes on the best attempt (see
    module docstring for why best-of-paired-reps is the noise-robust
    shape on a virtualized runner).
    """
    shards, workers = TARGET_CONFIG
    ratios = []
    recorded = hotpath_report.batch_speedup(shards, workers, backend="slab")
    if recorded is not None:
        ratios.append(recorded)
    while max(ratios, default=0.0) < BATCH_TARGET_SPEEDUP \
            and len(ratios) < GATE_REPS:
        fused = measure_decisions_per_sec(
            lock_shards=shards, workers=workers,
            checks_per_worker=15_000).decisions_per_sec
        batch = measure_batch_decisions_per_sec(
            lock_shards=shards, workers=workers, backend="slab",
            batch_size=BATCH_SIZE,
            checks_per_worker=15_000).decisions_per_sec
        ratios.append(batch / fused)
    best = max(ratios)
    assert best >= BATCH_TARGET_SPEEDUP, (
        f"batch-slab only {best:.2f}x the fused per-key path at "
        f"lock_shards={shards}, workers={workers}, batch={BATCH_SIZE} "
        f"(target {BATCH_TARGET_SPEEDUP}x; attempts "
        f"{[round(r, 2) for r in ratios]})")


def test_slab_resident_bytes_quarter_of_object_store(hotpath_report):
    """Slab bytes/key ≤ 1/4 of the object store's, measured not claimed.

    ``tracemalloc`` sees every allocation the interpreter makes, so
    unlike the throughput gates this is deterministic: the same build
    always measures the same bytes.
    """
    ratio = hotpath_report.memory_ratio()
    assert ratio is not None, "report carries no memory points"
    slab = hotpath_report.memory_point("slab")
    obj = hotpath_report.memory_point("object")
    assert ratio <= MEMORY_RATIO_LIMIT, (
        f"slab store costs {slab.bytes_per_key:.1f} B/key vs the object "
        f"store's {obj.bytes_per_key:.1f} B/key — ratio {ratio:.3f} "
        f"exceeds {MEMORY_RATIO_LIMIT}")
    # Absolute backstop so both backends regressing together still trips.
    assert slab.bytes_per_key < 100, (
        f"slab store costs {slab.bytes_per_key:.1f} B/key; the columns "
        "should cost tens of bytes")


@pytest.mark.parametrize("lock_shards", [1, 8])
def test_fused_and_seed_semantics_identical(lock_shards):
    """Same fixed workload → byte-identical verdict sequences.

    The fused path may only be faster, never decide differently; this is
    the recorded-semantics guarantee the ablation suite relies on.
    """
    keys = uuid_keys(32, seed=4242)
    rules = {k: QoSRule(k, refill_rate=5.0, capacity=3.0) for k in keys}

    def drive(cls):
        clock = ManualClock()
        controller = cls(InMemoryRuleSource(dict(rules)),
                         AdmissionConfig(lock_shards=lock_shards),
                         clock=clock)
        verdicts = []
        for i in range(2_000):
            clock.advance(0.01)
            verdicts.append(controller.check(keys[i % len(keys)]))
        return verdicts, controller.stats

    fused_verdicts, fused_stats = drive(AdmissionController)
    seed_verdicts, seed_stats = drive(SeedPathController)
    assert fused_verdicts == seed_verdicts
    assert fused_stats.admitted == seed_stats.admitted
    assert fused_stats.denied == seed_stats.denied
    assert fused_stats.rule_hits == seed_stats.rule_hits
    assert fused_stats.rule_misses == seed_stats.rule_misses
