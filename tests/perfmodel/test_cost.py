"""Tests for the cost-efficiency model (extension)."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology
from repro.core.errors import ConfigurationError
from repro.perfmodel.cost import CostModel
from repro.simnet.instances import get_instance


@pytest.fixture
def model() -> CostModel:
    return CostModel()


class TestHourlyCost:
    def test_sums_both_layers(self, model):
        topo = ClusterTopology(n_routers=2, n_qos_servers=3,
                               router_instance="c3.xlarge",
                               qos_instance="c3.large")
        expected = 2 * 0.376 + 3 * 0.188
        assert model.hourly_cost(topo) == pytest.approx(expected)


class TestEfficiency:
    def test_bigger_instances_slightly_cheaper_per_decision(self, model):
        """The cost expression of Fig. 12: the per-node tax amortizes."""
        rows = model.efficiency_table()
        costs = [cost for _, _, cost in rows]
        assert costs == sorted(costs, reverse=True)
        # ...but only slightly: within ~20% end to end.
        assert costs[0] / costs[-1] < 1.25

    def test_usd_per_million_in_plausible_range(self, model):
        for name, _, usd_per_m in model.efficiency_table():
            assert 0.001 < usd_per_m < 0.1


class TestCheapestFor:
    def test_meets_target(self, model):
        best = model.cheapest_for(100_000)
        assert best is not None
        assert best.capacity_rps >= 100_000
        assert best.usd_per_hour < 20.0

    def test_small_target_small_bill(self, model):
        small = model.cheapest_for(1_000)
        large = model.cheapest_for(100_000)
        assert small.usd_per_hour < large.usd_per_hour

    def test_impossible_target_returns_none(self, model):
        assert model.cheapest_for(1e9, max_nodes=4) is None

    def test_invalid_target(self, model):
        with pytest.raises(ConfigurationError):
            model.cheapest_for(0.0)

    def test_prefers_efficient_big_instances_when_exact_fit(self, model):
        """For a target matching one c3.8xlarge, the single big node beats
        eight smalls (Fig. 12 economics)."""
        capacity = model.capacity.qos_node_capacity("c3.8xlarge")[0]
        best = model.cheapest_for(capacity * 0.99)
        qos_bill_big = get_instance("c3.8xlarge").price_usd_hr
        qos_bill = (best.topology.n_qos_servers
                    * get_instance(best.topology.qos_instance).price_usd_hr)
        assert qos_bill <= qos_bill_big * 1.001


class TestDeploymentCost:
    def test_usd_per_million_formula(self, model):
        cost = model.evaluate(ClusterTopology(
            n_routers=2, n_qos_servers=1,
            router_instance="c3.8xlarge", qos_instance="c3.large"))
        manual = cost.usd_per_hour / (cost.capacity_rps * 3600) * 1e6
        assert cost.usd_per_million_decisions == pytest.approx(manual)
