"""Tests for the M/M/c queueing approximations."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.perfmodel.mmc import (
    erlang_c,
    mm1_wait_time,
    mmc_residence_time,
    mmc_wait_time,
)


class TestErlangC:
    def test_zero_load_never_queues(self):
        assert erlang_c(4, 0.0) == 0.0

    def test_saturation_always_queues(self):
        assert erlang_c(4, 4.0) == 1.0
        assert erlang_c(4, 5.0) == 1.0

    def test_single_server_equals_rho(self):
        # For M/M/1 the queueing probability is exactly rho.
        for rho in (0.1, 0.5, 0.9):
            assert erlang_c(1, rho) == pytest.approx(rho)

    def test_known_value(self):
        # Classic table value: c=2, a=1 (rho=0.5) -> P(wait)=1/3.
        assert erlang_c(2, 1.0) == pytest.approx(1.0 / 3.0)

    def test_more_servers_less_queueing(self):
        assert erlang_c(8, 4.0) < erlang_c(5, 4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            erlang_c(0, 1.0)
        with pytest.raises(ConfigurationError):
            erlang_c(2, -1.0)


class TestWaitTimes:
    def test_mm1_closed_form(self):
        # W_q = rho/(1-rho) * s: rho=0.5, s=1 -> 1.0
        assert mm1_wait_time(0.5, 1.0) == pytest.approx(1.0)

    def test_unstable_is_infinite(self):
        assert mmc_wait_time(10.0, 1.0, 4) == float("inf")
        assert mmc_residence_time(10.0, 1.0, 4) == float("inf")

    def test_residence_is_wait_plus_service(self):
        wait = mmc_wait_time(2.0, 1.0, 4)
        assert mmc_residence_time(2.0, 1.0, 4) == pytest.approx(wait + 1.0)

    def test_wait_explodes_near_saturation(self):
        light = mmc_wait_time(1.0, 1.0, 4)
        heavy = mmc_wait_time(3.9, 1.0, 4)
        assert heavy > 50 * light

    def test_matches_simulation(self, sim):
        """Cross-check against the DES Resource under Poisson load."""
        import random
        from repro.simnet.engine import Resource
        rng = random.Random(99)
        res = Resource(sim, capacity=2)
        service, rate = 0.01, 150.0      # offered 1.5 erlangs on 2 servers
        waits = []

        def job():
            t0 = sim.now
            yield res.acquire()
            waits.append(sim.now - t0)
            yield rng.expovariate(1.0 / service)
            res.release()

        def arrivals():
            for i in range(6000):
                yield rng.expovariate(rate)
                sim.spawn(job(), f"j{i}")

        sim.spawn(arrivals(), "arr")
        sim.run()
        simulated = sum(waits) / len(waits)
        predicted = mmc_wait_time(rate, service, 2)
        assert simulated == pytest.approx(predicted, rel=0.15)
