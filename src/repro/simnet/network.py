"""Network model: latency distributions, UDP loss, TCP connection cost.

The evaluation runs in one AWS region (ap-southeast-2).  What matters for
the paper's figures is:

- the **internal** hop (router ↔ QoS server, LB ↔ router): tens of
  microseconds one way with enhanced networking — small enough that the
  paper's 100 µs UDP timeout usually passes on the first attempt
  ("in the best case, the communication ... is completed at the first
  attempt within 100 microseconds", §III-B);
- the **client-facing** hop (client fleet ↔ load balancer / router):
  hundreds of microseconds one way, which together with PHP processing
  produces the ~1.1 ms round trips of Fig. 5;
- the cost of the *extra TCP connection* a gateway load balancer inserts —
  the ~500 µs penalty of Fig. 5;
- UDP datagram loss that the router's timeout-and-retry loop compensates.

Latency is sampled from a shifted lognormal: a hard floor (propagation +
kernel) plus a lognormal body whose tail produces the P99/P99.9 spread.
Hosts are assigned a *zone* (``"internal"`` or ``"client"``); a hop
touching a client-zone host uses the client link model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.core.errors import ConfigurationError, SimulationError
from repro.simnet.engine import Simulation
from repro.simnet.rng import RngRegistry

__all__ = ["LatencyModel", "Network", "INTERNAL_LINK", "CLIENT_LINK"]


@dataclass(frozen=True, slots=True)
class LatencyModel:
    """Shifted-lognormal one-way latency: ``floor + LogNormal(mu, sigma)``.

    ``median_extra`` is the median of the lognormal body (so the one-way
    median is ``floor + median_extra``).
    """

    floor: float
    median_extra: float
    sigma: float

    def __post_init__(self) -> None:
        if self.floor < 0 or self.median_extra <= 0 or self.sigma <= 0:
            raise ConfigurationError("latency parameters must be positive")

    @property
    def mu(self) -> float:
        return math.log(self.median_extra)

    def sample(self, rng) -> float:
        return self.floor + rng.lognormvariate(self.mu, self.sigma)

    def mean(self) -> float:
        return self.floor + math.exp(self.mu + self.sigma ** 2 / 2.0)


#: Same-placement internal hop: ~19 us median, ~20 us mean one way.
INTERNAL_LINK = LatencyModel(floor=12e-6, median_extra=7e-6, sigma=0.55)
#: Client-fleet to front-end hop: ~185 us median one way, heavier tail.
CLIENT_LINK = LatencyModel(floor=130e-6, median_extra=42e-6, sigma=0.85)


class Network:
    """Message transport between named hosts inside one simulation.

    UDP
        :meth:`udp_send` delivers ``payload`` to the destination's handler
        after a sampled latency, or silently drops it with probability
        ``udp_loss``.
    TCP
        :meth:`tcp_connect_delay` samples the handshake cost (one RTT) and
        :meth:`tcp_rtt` one request/response round trip.  TCP segments are
        assumed never lost (retransmission hides loss at a latency cost
        already inside the lognormal tail).

    Hosts register a datagram handler with :meth:`attach`.  Pure clients
    (no inbound datagrams) declare their zone with :meth:`register_zone`.
    Per-packet NIC serialization is derived from the instance network cap.
    """

    def __init__(
        self,
        sim: Simulation,
        rng: RngRegistry,
        internal: LatencyModel = INTERNAL_LINK,
        client: LatencyModel = CLIENT_LINK,
        udp_loss: float = 1e-4,
    ):
        if not (0.0 <= udp_loss < 1.0):
            raise ConfigurationError(f"udp_loss must be in [0, 1), got {udp_loss}")
        self.sim = sim
        self.internal_model = internal
        self.client_model = client
        self.udp_loss = udp_loss
        self._latency_rng = rng.stream("net.latency")
        self._loss_rng = rng.stream("net.loss")
        self._handlers: dict[str, Callable[[str, Any], None]] = {}
        self._nic_mbps: dict[str, int] = {}
        self._zones: dict[str, str] = {}
        self.udp_sent = 0
        self.udp_dropped = 0

    # ------------------------------------------------------------------ #

    def attach(self, host: str, handler: Callable[[str, Any], None],
               nic_mbps: int = 10_000, zone: str = "internal") -> None:
        """Register ``host``; ``handler(src, payload)`` receives datagrams."""
        if host in self._handlers:
            raise SimulationError(f"host {host!r} already attached")
        self._handlers[host] = handler
        self._nic_mbps[host] = nic_mbps
        self.register_zone(host, zone)

    def register_zone(self, host: str, zone: str) -> None:
        if zone not in ("internal", "client"):
            raise ConfigurationError(f"zone must be 'internal' or 'client', got {zone!r}")
        self._zones[host] = zone

    def detach(self, host: str) -> None:
        """Remove a host (failed node); in-flight packets to it are lost."""
        self._handlers.pop(host, None)
        self._nic_mbps.pop(host, None)

    def is_attached(self, host: str) -> bool:
        return host in self._handlers

    # ------------------------------------------------------------------ #

    def _model_for(self, src: Optional[str], dst: Optional[str]) -> LatencyModel:
        if (self._zones.get(src or "", "internal") == "client"
                or self._zones.get(dst or "", "internal") == "client"):
            return self.client_model
        return self.internal_model

    def _serialization(self, host: Optional[str], size_bytes: int) -> float:
        mbps = self._nic_mbps.get(host or "", 10_000)
        return size_bytes * 8 / (mbps * 1e6)

    def one_way(self, src: Optional[str] = None, dst: Optional[str] = None) -> float:
        """Sample a one-way latency between two hosts (no loss, no NIC cost)."""
        return self._model_for(src, dst).sample(self._latency_rng)

    def udp_send(self, src: str, dst: str, payload: Any,
                 size_bytes: int = 128) -> None:
        """Send a datagram; it may be silently dropped (UDP semantics)."""
        self.udp_sent += 1
        if self._loss_rng.random() < self.udp_loss:
            self.udp_dropped += 1
            return
        delay = (self.one_way(src, dst)
                 + self._serialization(src, size_bytes)
                 + self._serialization(dst, size_bytes))

        def deliver() -> None:
            handler = self._handlers.get(dst)
            if handler is not None:     # dst may have failed in flight
                handler(src, payload)

        self.sim.call_in(delay, deliver)

    def tcp_connect_delay(self, src: Optional[str] = None,
                          dst: Optional[str] = None) -> float:
        """Cost of establishing a TCP connection (SYN/SYN-ACK: one RTT)."""
        return self.one_way(src, dst) + self.one_way(src, dst)

    def tcp_rtt(self, src: Optional[str] = None, dst: Optional[str] = None,
                size_bytes: int = 512) -> float:
        """One request/response exchange on an established connection."""
        return (self.one_way(src, dst) + self.one_way(src, dst)
                + 2 * size_bytes * 8 / 1e10)
