"""Framework behaviour: pragmas, JSON schema, rule selection, robustness."""

from __future__ import annotations

import json

import pytest

from repro.analysis import all_checkers
from repro.analysis.cli import _main as lint_main
from repro.analysis.framework import JSON_SCHEMA_VERSION, lint_paths

VIOLATION = """
import time

def elapsed(t0):
    return time.time() - t0
"""


def test_finding_reported_with_location(lint):
    result = lint(VIOLATION)
    assert len(result.findings) == 1
    finding = result.findings[0]
    assert finding.rule == "monotonic-time"
    assert finding.line == 5
    assert finding.path.endswith("snippet.py")
    assert "time.time()" in finding.message
    assert f"{finding.path}:{finding.line}" in finding.format()


def test_same_line_pragma_suppresses(lint):
    result = lint("""
    import time

    def stamp():
        return time.time()  # janus-lint: disable=monotonic-time
    """)
    assert result.ok


def test_comment_line_pragma_governs_next_line(lint):
    result = lint("""
    import time

    def stamp():
        # janus-lint: disable=monotonic-time
        return time.time()
    """)
    assert result.ok


def test_pragma_for_other_rule_does_not_suppress(lint):
    result = lint("""
    import time

    def elapsed(t0):
        return time.time() - t0  # janus-lint: disable=lock-discipline
    """)
    assert [f.rule for f in result.findings] == ["monotonic-time"]


def test_disable_all_pragma(lint):
    result = lint("""
    import time

    def elapsed(t0):
        return time.time() - t0  # janus-lint: disable=all
    """)
    assert result.ok


def test_file_level_pragma(lint):
    result = lint("""
    # janus-lint: disable-file=monotonic-time
    import time

    def elapsed(t0):
        return time.time() - t0

    def elapsed2(t0):
        return time.time() - t0
    """)
    assert result.ok


def test_rule_selection_restricts_checkers(lint):
    result = lint(VIOLATION, rules=["lock-discipline"])
    assert result.ok
    assert result.rules == ["lock-discipline"]


def test_unknown_rule_raises():
    with pytest.raises(ValueError, match="unknown rule"):
        lint_paths([], all_checkers(), rules=["no-such-rule"])


def test_syntax_error_becomes_finding(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def broken(:\n")
    result = lint_paths([str(bad)], all_checkers())
    assert [f.rule for f in result.findings] == ["syntax-error"]


def test_directory_walk_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("import time\n")
    (tmp_path / "ok.py").write_text("x = 1\n")
    result = lint_paths([str(tmp_path)], all_checkers())
    assert result.files_scanned == 1 and result.ok


def test_json_output_schema(lint):
    result = lint(VIOLATION)
    doc = result.as_dict()
    assert doc["version"] == JSON_SCHEMA_VERSION
    assert doc["files_scanned"] == 1
    assert set(doc["rules"]) == {c.rule for c in all_checkers()}
    (finding,) = doc["findings"]
    assert set(finding) == {"rule", "path", "line", "col", "message"}
    json.dumps(doc)     # round-trippable


def test_cli_exit_codes_and_json(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("x = 1\n")
    assert lint_main([str(clean)]) == 0
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import time\n\ndef f(t0):\n    return time.time() - t0\n")
    capsys.readouterr()
    assert lint_main([str(dirty), "--json"]) == 1
    doc = json.loads(capsys.readouterr().out)
    assert doc["findings"][0]["rule"] == "monotonic-time"
    assert lint_main(["--list-rules"]) == 0


def test_every_checker_has_rule_and_description():
    checkers = all_checkers()
    assert len({c.rule for c in checkers}) == len(checkers) == 8
    for checker in checkers:
        assert checker.rule and checker.description
