"""Multi-process QoS plane: shared-nothing shard workers under a supervisor.

A Janus node at ``ServerConfig.processes = N > 1`` is a supervisor
(:class:`ProcPlaneNode`) plus ``N`` worker *processes*.  Each worker owns
a disjoint CRC32 shard range — ``crc32(key) % N == i`` — with its own
:class:`~repro.core.admission.AdmissionController`, protocol-v2 decode
loop, and metrics registry, so the workers share nothing and the GIL
stops being the node's ceiling.

Two UDP fan-in modes (``ProcPlaneConfig.fanin``):

``"portmap"`` (default, hop-free)
    Every worker binds its own port; the supervisor publishes the
    ordered per-shard port map to the router, whose CRC32 partitioner
    then picks the owning worker's port directly.  Zero cross-process
    hops on the hot path.

``"reuseport"``
    All workers additionally bind one shared ``SO_REUSEPORT`` port; the
    kernel spreads incoming frames across them, and each worker splits
    received frames by owner, deciding its own share and forwarding the
    rest to the owning sibling inside a small envelope
    (:data:`~repro.runtime.procplane.worker.FORWARD_MAGIC`).  The
    sibling replies to the router directly.

Ownership is advisory — a worker decides *any* key it is handed — so
restart windows and stray frames degrade to correct-but-unsharded
behaviour instead of errors.
"""

from repro.runtime.procplane.supervisor import ProcPlaneNode
from repro.runtime.procplane.worker import (
    FORWARD_MAGIC,
    ShardWorkerDaemon,
    WorkerSpec,
    pack_forward,
    unpack_forward,
    worker_main,
)

__all__ = [
    "FORWARD_MAGIC",
    "ProcPlaneNode",
    "ShardWorkerDaemon",
    "WorkerSpec",
    "pack_forward",
    "unpack_forward",
    "worker_main",
]
