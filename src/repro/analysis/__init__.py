"""repro.analysis — janus-lint static checks + runtime lock-order detector.

The static side (``janus lint``, ``make lint``, the CI ``lint`` job) is a
registry of AST checkers over the repository's own concurrency and
protocol contracts; the runtime side is an opt-in instrumented-lock graph
that detects acquisition-order cycles and held-duration outliers under
tests.  See ``docs/ANALYSIS.md`` for the rule catalog and pragma syntax.
"""

from repro.analysis.blocking import TransitiveBlockingChecker
from repro.analysis.determinism import DeterminismChecker
from repro.analysis.framework import (
    Checker,
    Finding,
    LintResult,
    ModuleSource,
    Project,
    lint_paths,
)
from repro.analysis.guards import GuardInferenceChecker
from repro.analysis.lockorder import (
    InstrumentedLock,
    LockOrderGraph,
    current_graph,
    install_graph,
    uninstall_graph,
)
from repro.analysis.locking import (
    BlockingUnderLockChecker,
    LockDisciplineChecker,
)
from repro.analysis.protocol import ProtocolInvariantsChecker
from repro.analysis.timing import MonotonicTimeChecker
from repro.analysis.wiremodel import WireDocDriftChecker

__all__ = [
    "Checker",
    "Finding",
    "LintResult",
    "ModuleSource",
    "Project",
    "lint_paths",
    "all_checkers",
    "BlockingUnderLockChecker",
    "DeterminismChecker",
    "GuardInferenceChecker",
    "LockDisciplineChecker",
    "MonotonicTimeChecker",
    "ProtocolInvariantsChecker",
    "TransitiveBlockingChecker",
    "WireDocDriftChecker",
    "InstrumentedLock",
    "LockOrderGraph",
    "current_graph",
    "install_graph",
    "uninstall_graph",
]


def all_checkers() -> "list[Checker]":
    """Fresh instances of every registered checker, in catalog order."""
    return [
        LockDisciplineChecker(),
        BlockingUnderLockChecker(),
        MonotonicTimeChecker(),
        ProtocolInvariantsChecker(),
        DeterminismChecker(),
        GuardInferenceChecker(),
        TransitiveBlockingChecker(),
        WireDocDriftChecker(),
    ]
