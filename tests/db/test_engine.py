"""Tests for the SQL executor."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SQLError
from repro.db.engine import Engine


@pytest.fixture
def engine() -> Engine:
    e = Engine()
    e.execute("CREATE TABLE users (name TEXT PRIMARY KEY, age INTEGER, score REAL)")
    e.execute("INSERT INTO users (name, age, score) VALUES ('alice', 30, 9.5)")
    e.execute("INSERT INTO users (name, age, score) VALUES ('bob', 25, 7.0)")
    e.execute("INSERT INTO users (name, age, score) VALUES ('carol', 35, NULL)")
    return e


class TestDDL:
    def test_create_and_drop(self):
        e = Engine()
        e.execute("CREATE TABLE t (a TEXT)")
        assert e.table_names() == ["t"]
        e.execute("DROP TABLE t")
        assert e.table_names() == []

    def test_duplicate_create_rejected(self):
        e = Engine()
        e.execute("CREATE TABLE t (a TEXT)")
        with pytest.raises(SQLError):
            e.execute("CREATE TABLE t (a TEXT)")
        e.execute("CREATE TABLE IF NOT EXISTS t (a TEXT)")   # tolerated

    def test_drop_missing_rejected(self):
        e = Engine()
        with pytest.raises(SQLError):
            e.execute("DROP TABLE nope")
        e.execute("DROP TABLE IF EXISTS nope")               # tolerated


class TestInsert:
    def test_rowcount(self, engine):
        result = engine.execute(
            "INSERT INTO users (name, age) VALUES ('dave', 40)")
        assert result.rowcount == 1

    def test_duplicate_pk_rejected(self, engine):
        with pytest.raises(SQLError):
            engine.execute("INSERT INTO users (name) VALUES ('alice')")

    def test_missing_columns_become_null(self, engine):
        engine.execute("INSERT INTO users (name) VALUES ('erin')")
        row = engine.execute(
            "SELECT age, score FROM users WHERE name = 'erin'").first()
        assert row == (None, None)

    def test_unknown_column_rejected(self, engine):
        with pytest.raises(SQLError):
            engine.execute("INSERT INTO users (nope) VALUES (1)")

    def test_type_checked(self, engine):
        with pytest.raises(SQLError):
            engine.execute("INSERT INTO users (name, age) VALUES ('x', 'old')")

    def test_int_coerced_to_real(self, engine):
        engine.execute("INSERT INTO users (name, score) VALUES ('frank', 5)")
        value = engine.execute(
            "SELECT score FROM users WHERE name = 'frank'").scalar()
        assert value == 5.0 and isinstance(value, float)


class TestSelect:
    def test_star_columns(self, engine):
        result = engine.execute("SELECT * FROM users WHERE name = 'alice'")
        assert result.columns == ["name", "age", "score"]
        assert result.first() == ("alice", 30, 9.5)

    def test_where_comparisons(self, engine):
        result = engine.execute("SELECT name FROM users WHERE age >= 30")
        assert {r[0] for r in result} == {"alice", "carol"}

    def test_parameters(self, engine):
        result = engine.execute(
            "SELECT name FROM users WHERE age < ? AND score > ?", (30, 5.0))
        assert result.first() == ("bob",)

    def test_param_count_mismatch(self, engine):
        with pytest.raises(SQLError):
            engine.execute("SELECT * FROM users WHERE age = ?", ())

    def test_order_by_desc_limit(self, engine):
        result = engine.execute(
            "SELECT name FROM users ORDER BY age DESC LIMIT 2")
        assert [r[0] for r in result] == ["carol", "alice"]

    def test_order_by_nulls_first_ascending(self, engine):
        result = engine.execute("SELECT name FROM users ORDER BY score")
        assert [r[0] for r in result] == ["carol", "bob", "alice"]

    def test_count(self, engine):
        assert engine.execute("SELECT COUNT(*) FROM users").scalar() == 3

    def test_count_with_where(self, engine):
        assert engine.execute(
            "SELECT COUNT(*) FROM users WHERE age > 26").scalar() == 2

    def test_null_comparison_is_false(self, engine):
        # SQL three-valued logic: NULL never compares true.
        result = engine.execute("SELECT name FROM users WHERE score > 0")
        assert {r[0] for r in result} == {"alice", "bob"}

    def test_is_null(self, engine):
        result = engine.execute("SELECT name FROM users WHERE score IS NULL")
        assert result.first() == ("carol",)

    def test_in_list(self, engine):
        result = engine.execute(
            "SELECT name FROM users WHERE name IN ('bob', 'carol', 'zed')")
        assert {r[0] for r in result} == {"bob", "carol"}

    def test_column_vs_column(self, engine):
        engine.execute("CREATE TABLE pairs (a INTEGER, b INTEGER)")
        engine.execute("INSERT INTO pairs (a, b) VALUES (1, 2)")
        engine.execute("INSERT INTO pairs (a, b) VALUES (3, 3)")
        result = engine.execute("SELECT a FROM pairs WHERE a = b")
        assert result.first() == (3,)

    def test_unknown_table(self, engine):
        with pytest.raises(SQLError):
            engine.execute("SELECT * FROM nope")

    def test_unknown_select_column(self, engine):
        with pytest.raises(SQLError):
            engine.execute("SELECT nope FROM users")

    def test_unknown_order_column(self, engine):
        with pytest.raises(SQLError):
            engine.execute("SELECT * FROM users ORDER BY nope")

    def test_as_dicts(self, engine):
        rows = engine.execute(
            "SELECT name, age FROM users WHERE name = 'bob'").as_dicts()
        assert rows == [{"name": "bob", "age": 25}]


class TestUpdateDelete:
    def test_update_by_pk(self, engine):
        result = engine.execute(
            "UPDATE users SET age = ? WHERE name = ?", (31, "alice"))
        assert result.rowcount == 1
        assert engine.execute(
            "SELECT age FROM users WHERE name = 'alice'").scalar() == 31

    def test_update_all(self, engine):
        assert engine.execute("UPDATE users SET age = 1").rowcount == 3

    def test_update_from_column(self, engine):
        engine.execute("UPDATE users SET score = age WHERE name = 'bob'")
        assert engine.execute(
            "SELECT score FROM users WHERE name = 'bob'").scalar() == 25.0

    def test_pk_change_reindexes(self, engine):
        engine.execute("UPDATE users SET name = 'alice2' WHERE name = 'alice'")
        assert engine.execute(
            "SELECT COUNT(*) FROM users WHERE name = 'alice2'").scalar() == 1
        assert engine.execute(
            "SELECT COUNT(*) FROM users WHERE name = 'alice'").scalar() == 0

    def test_pk_collision_on_update_rejected(self, engine):
        with pytest.raises(SQLError):
            engine.execute("UPDATE users SET name = 'bob' WHERE name = 'alice'")

    def test_delete(self, engine):
        assert engine.execute(
            "DELETE FROM users WHERE name = 'bob'").rowcount == 1
        assert engine.execute("SELECT COUNT(*) FROM users").scalar() == 2

    def test_delete_then_reinsert_pk(self, engine):
        engine.execute("DELETE FROM users WHERE name = 'bob'")
        engine.execute("INSERT INTO users (name, age) VALUES ('bob', 99)")
        assert engine.execute(
            "SELECT age FROM users WHERE name = 'bob'").scalar() == 99


class TestPkFastPath:
    def test_pk_lookup_scans_one_row(self, engine):
        before = engine.rows_scanned
        engine.execute("SELECT * FROM users WHERE name = ?", ("alice",))
        assert engine.rows_scanned - before == 1

    def test_reversed_pk_comparison_also_fast(self, engine):
        before = engine.rows_scanned
        engine.execute("SELECT * FROM users WHERE 'alice' = name")
        assert engine.rows_scanned - before == 1

    def test_non_pk_filter_scans_all(self, engine):
        before = engine.rows_scanned
        engine.execute("SELECT * FROM users WHERE age = 30")
        assert engine.rows_scanned - before == 3


class TestConcurrency:
    def test_parallel_updates_no_lost_rows(self):
        e = Engine()
        e.execute("CREATE TABLE counters (k TEXT PRIMARY KEY, n INTEGER)")
        for i in range(8):
            e.execute("INSERT INTO counters (k, n) VALUES (?, 0)", (f"c{i}",))

        def worker(wid: int):
            for i in range(200):
                e.execute("UPDATE counters SET n = ? WHERE k = ?",
                          (i, f"c{wid}"))

        threads = [threading.Thread(target=worker, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        result = e.execute("SELECT n FROM counters ORDER BY k")
        assert [r[0] for r in result] == [199] * 8


class TestRoundTripProperty:
    @given(st.lists(
        st.tuples(st.text(min_size=1, max_size=20), st.integers(-10**6, 10**6)),
        min_size=1, max_size=30, unique_by=lambda t: t[0]))
    @settings(max_examples=60, deadline=None)
    def test_insert_select_round_trip(self, rows):
        e = Engine()
        e.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v INTEGER)")
        for k, v in rows:
            e.execute("INSERT INTO t (k, v) VALUES (?, ?)", (k, v))
        for k, v in rows:
            assert e.execute("SELECT v FROM t WHERE k = ?", (k,)).scalar() == v
        assert e.execute("SELECT COUNT(*) FROM t").scalar() == len(rows)
