"""Steady-state allocation behaviour of the worker decode/decide loop.

The seed worker rebuilt its response list and one ``QoSResponse`` object
per request for every frame — at wire rate that is thousands of transient
allocations a second that exist only to be flattened into a response
frame.  ``_WorkerScratch`` plus the ``check_batch`` fast path removed
them: these tests pin that property with ``tracemalloc`` so the churn
cannot quietly return.
"""

from __future__ import annotations

import gc
import tracemalloc

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import ServerConfig
from repro.core.protocol import (
    QoSRequest,
    decode_frame,
    encode_request_frame,
)
from repro.core.rules import QoSRule
from repro.runtime.udp_server import QoSServerDaemon, _WorkerScratch

ADDR = ("127.0.0.1", 54321)


@pytest.fixture
def daemon():
    source = InMemoryRuleSource({
        f"k{i}": QoSRule(f"k{i}", refill_rate=1000.0, capacity=1000.0)
        for i in range(64)})
    d = QoSServerDaemon(source, config=ServerConfig(workers=1))
    try:
        yield d     # never started: _decide_item is driven directly
    finally:
        d._sock.close()


def frame_payload(n: int = 64) -> bytes:
    return encode_request_frame(
        [QoSRequest(request_id=i + 1, key=f"k{i % 64}") for i in range(n)])


class TestBatchFastPath:
    def test_verdict_bitmap_round_trips_to_response_frame(self, daemon):
        scratch = _WorkerScratch()
        daemon._decide_item([(frame_payload(64), ADDR)], scratch)
        assert len(scratch.out) == 1
        payload, addr, n_responses = scratch.out[0]
        assert addr == ADDR
        assert n_responses == 64
        responses = decode_frame(payload)
        assert [r.request_id for r in responses] == list(range(1, 65))
        assert all(r.allowed for r in responses)

    def test_batch_path_builds_no_response_objects(self, daemon):
        """The bitmap is encoded straight into the frame; the per-message
        scratch list must stay untouched."""
        scratch = _WorkerScratch()
        daemon._decide_item([(frame_payload(64), ADDR)], scratch)
        assert scratch.responses == []

    def test_denials_encoded_from_bitmap(self):
        # A zero-refill bucket with 2 credits, hit 8 times in one frame:
        # exactly the first two may land in the bitmap.
        source = InMemoryRuleSource(
            {"k0": QoSRule("k0", refill_rate=0.0, capacity=2.0)})
        d = QoSServerDaemon(source, config=ServerConfig(workers=1))
        try:
            payload = encode_request_frame(
                [QoSRequest(request_id=i + 1, key="k0") for i in range(8)])
            scratch = _WorkerScratch()
            d._decide_item([(payload, ADDR)], scratch)
            responses = decode_frame(scratch.out[0][0])
            assert [r.allowed for r in responses] == [True, True] + [False] * 6
        finally:
            d._sock.close()


class TestSteadyStateAllocations:
    def test_second_frame_leaves_no_worker_garbage(self, daemon):
        """After warm-up, deciding a 64-request frame must leave only the
        outgoing ``(payload, addr, n)`` triple allocated from the worker
        module — no response objects, no rebuilt lists.

        The seed loop left 64 live ``QoSResponse`` instances (~6 KB)
        attributed to the worker after every frame; the scratch-based loop
        is pinned an order of magnitude below that.
        """
        scratch = _WorkerScratch()
        payload = frame_payload(64)
        daemon._decide_item([(payload, ADDR)], scratch)     # warm caches
        gc.collect()
        tracemalloc.start()
        try:
            daemon._decide_item([(payload, ADDR)], scratch)  # trace warm-up
            before = tracemalloc.take_snapshot()
            daemon._decide_item([(payload, ADDR)], scratch)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()
        here = tracemalloc.Filter(True, "*/runtime/udp_server.py")
        grew = sum(
            max(stat.size_diff, 0)
            for stat in after.filter_traces([here]).compare_to(
                before.filter_traces([here]), "lineno"))
        assert grew < 600, (
            f"worker loop retained {grew} bytes per frame; "
            "per-request churn has crept back in")

    def test_scratch_buffers_are_reused_in_place(self, daemon):
        scratch = _WorkerScratch()
        ids0, keys0, out0 = scratch.ids, scratch.keys, scratch.out
        for _ in range(3):
            daemon._decide_item([(frame_payload(16), ADDR)], scratch)
        assert scratch.ids is ids0
        assert scratch.keys is keys0
        assert scratch.out is out0
        assert len(scratch.ids) == 16
