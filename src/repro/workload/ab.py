"""An ApacheBench-style load tool for the real-socket runtime (paper §V).

The paper generates its load with "a modified version of the Apache HTTP
server benchmarking tool" — concurrent closed-loop workers issuing QoS
requests *with different QoS keys* and recording per-request round-trip
latency.  :func:`run_ab` reproduces that against a
:class:`~repro.runtime.cluster.LocalCluster` endpoint (or any Janus HTTP
endpoint) and returns the same statistics the paper reports.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

from repro.core.errors import ConfigurationError
from repro.metrics.histogram import LatencySample, LatencySummary
from repro.runtime.client import QoSClient

__all__ = ["AbResult", "run_ab"]


@dataclass(frozen=True, slots=True)
class AbResult:
    """Aggregate result of one ``ab`` run."""

    requests: int
    duration: float
    allowed: int
    denied: int
    default_replies: int
    transport_errors: int
    latency: LatencySummary

    @property
    def throughput(self) -> float:
        return self.requests / self.duration if self.duration > 0 else 0.0


def run_ab(
    endpoint: str,
    keygen: Callable[[int, int], str],
    *,
    n_requests: int = 1_000,
    concurrency: int = 4,
    timeout: float = 5.0,
    warmup_requests: int = 0,
) -> AbResult:
    """Drive ``endpoint`` with ``concurrency`` closed-loop workers.

    ``keygen(worker_id, i)`` supplies the QoS key for worker ``worker_id``'s
    ``i``-th request.  ``n_requests`` is the total across all workers.
    """
    if n_requests < 1 or concurrency < 1:
        raise ConfigurationError("n_requests and concurrency must be >= 1")
    per_worker = [n_requests // concurrency] * concurrency
    for i in range(n_requests % concurrency):
        per_worker[i] += 1

    samples: list[list[float]] = [[] for _ in range(concurrency)]
    allowed = [0] * concurrency
    denied = [0] * concurrency
    defaults = [0] * concurrency
    errors = [0] * concurrency
    barrier = threading.Barrier(concurrency + 1)

    def worker(wid: int) -> None:
        client = QoSClient(endpoint, timeout=timeout)
        for i in range(warmup_requests // concurrency):
            client.check(keygen(wid, -1 - i))
        barrier.wait()
        for i in range(per_worker[wid]):
            result = client.check_detailed(keygen(wid, i))
            samples[wid].append(result.latency)
            # A transport error is the client's synthetic default reply
            # (attempts=0 AND default); a lease-local admission also
            # reports attempts=0 but is a real verdict, not an error.
            if result.attempts == 0 and result.is_default_reply:
                errors[wid] += 1
            if result.is_default_reply:
                defaults[wid] += 1
            if result.allowed:
                allowed[wid] += 1
            else:
                denied[wid] += 1
        client.close()

    threads = [threading.Thread(target=worker, args=(w,), daemon=True)
               for w in range(concurrency)]
    for t in threads:
        t.start()
    barrier.wait()
    t0 = time.monotonic()
    for t in threads:
        t.join()
    duration = time.monotonic() - t0

    sample = LatencySample()
    for chunk in samples:
        sample.extend(chunk)
    return AbResult(
        requests=n_requests,
        duration=duration,
        allowed=sum(allowed),
        denied=sum(denied),
        default_replies=sum(defaults),
        transport_errors=sum(errors),
        latency=sample.summary())
