"""Fig. 5 — Gateway load balancer vs DNS load balancer round-trip latency.

Setup (paper §V-A): two c3.8xlarge request routers, two c3.8xlarge QoS
servers; two single-thread clients each issuing 100 000 QoS requests at a
modest ~1 000 rps aggregate; metrics: average, P90, P99, P99.9.

Paper result: DNS ≈ 1140 µs average / 1410 µs P90; gateway ≈ 1650 µs
average / 2370 µs P90 — the gateway's extra TCP connection costs ~500 µs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ClusterTopology
from repro.experiments.driver import build_cluster
from repro.experiments.scale import Scale, current_scale
from repro.metrics.histogram import LatencySummary
from repro.metrics.report import format_table
from repro.workload.keygen import KeyCycle
from repro.workload.simclient import ClosedLoopClient

__all__ = ["run", "report", "Fig5Result"]

#: Paper values (microseconds) for the report's side-by-side column.
PAPER_US = {
    "dns": {"mean": 1140, "p90": 1410},
    "gateway": {"mean": 1650, "p90": 2370},
}


@dataclass(frozen=True, slots=True)
class Fig5Result:
    dns: LatencySummary
    gateway: LatencySummary

    @property
    def gateway_penalty(self) -> float:
        """Mean extra latency of the gateway LB (the paper's ~500 µs)."""
        return self.gateway.mean - self.dns.mean


def _measure(mode: str, scale: Scale, seed: int) -> LatencySummary:
    topology = ClusterTopology(
        n_routers=2, n_qos_servers=2,
        router_instance="c3.8xlarge", qos_instance="c3.8xlarge",
        load_balancer=mode)
    cluster, keys = build_cluster(topology, n_rules=500, seed=seed)
    clients = [
        ClosedLoopClient(cluster, f"client-{i}", KeyCycle(keys, i * 61),
                         mode=mode, n_requests=scale.fig5_requests // 2)
        for i in range(2)
    ]
    # Single-thread clients at ~1 ms/request: bound the run generously.
    horizon = 2.0e-3 * scale.fig5_requests
    cluster.sim.run(until=horizon)
    merged = [r.latency for c in clients for r in c.log.records]
    from repro.metrics.histogram import LatencySample
    return LatencySample(merged).summary()


def run(scale: Scale | None = None, seed: int = 5) -> Fig5Result:
    scale = scale or current_scale()
    return Fig5Result(
        dns=_measure("dns", scale, seed),
        gateway=_measure("gateway", scale, seed + 1))


def report(result: Fig5Result | None = None) -> str:
    result = result or run()
    rows = []
    for mode, summary in (("DNS LB", result.dns), ("Gateway LB", result.gateway)):
        s = summary.as_microseconds()
        paper = PAPER_US["dns" if mode == "DNS LB" else "gateway"]
        rows.append((mode, int(s["mean_us"]), int(s["p90_us"]),
                     int(s["p99_us"]), int(s["p999_us"]),
                     paper["mean"], paper["p90"]))
    table = format_table(
        ("LB type", "mean (us)", "P90", "P99", "P99.9",
         "paper mean", "paper P90"),
        rows, title="Fig. 5: Gateway vs DNS load balancer latency")
    return (f"{table}\n"
            f"gateway penalty: {result.gateway_penalty * 1e6:.0f} us "
            f"(paper: ~500 us)")
