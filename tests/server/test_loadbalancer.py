"""Tests for the gateway load balancer model (§II-A)."""

from __future__ import annotations

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.server.loadbalancer import GatewayLoadBalancer
from repro.server.qos_server import SimQoSServer
from repro.server.router import SimRequestRouter
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


@pytest.fixture
def routers():
    sim = Simulation()
    rng = RngRegistry(31)
    net = Network(sim, rng, udp_loss=0.0)
    source = InMemoryRuleSource({"k": QoSRule("k", 1e6, 1e6)})
    server = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                          rng=rng, warm=True)
    return [SimRequestRouter(sim, net, f"rr-{i}", "c3.xlarge",
                             [server.name], rng=rng)
            for i in range(3)]


class TestRoundRobin:
    def test_cycles_evenly(self, routers):
        lb = GatewayLoadBalancer("elb", routers)
        picks = [lb.pick().name for _ in range(9)]
        assert picks == ["rr-0", "rr-1", "rr-2"] * 3
        assert lb.requests_routed == 9


class TestLeastConnections:
    def test_prefers_idle_backend(self, routers):
        lb = GatewayLoadBalancer("elb", routers,
                                 algorithm="least_connections")
        lb.connection_opened(routers[0])
        lb.connection_opened(routers[0])
        lb.connection_opened(routers[1])
        assert lb.pick().name == "rr-2"

    def test_outstanding_tracking(self, routers):
        lb = GatewayLoadBalancer("elb", routers,
                                 algorithm="least_connections")
        lb.connection_opened(routers[2])
        assert lb.outstanding()["rr-2"] == 1
        lb.connection_closed(routers[2])
        assert lb.outstanding()["rr-2"] == 0


class TestValidation:
    def test_empty_backends_rejected(self):
        with pytest.raises(ConfigurationError):
            GatewayLoadBalancer("elb", [])

    def test_unknown_algorithm_rejected(self, routers):
        with pytest.raises(ConfigurationError):
            GatewayLoadBalancer("elb", routers, algorithm="random-walk")

    def test_proc_time_near_calibration(self, routers):
        from repro.perfmodel.calibration import DEFAULT_CALIBRATION
        lb = GatewayLoadBalancer("elb", routers)
        samples = [lb.proc_time() for _ in range(3000)]
        mean = sum(samples) / len(samples)
        assert mean == pytest.approx(DEFAULT_CALIBRATION.lb_proc_time, rel=0.05)
