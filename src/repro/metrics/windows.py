"""Sliding-window latency observation (load-balancer metrics).

The paper lists "the average latency observed on the load balancer" as an
Auto Scaling metric (§V-A).  :class:`SlidingWindowLatency` keeps the last
``window`` seconds of observations and serves mean/percentile queries over
them — the ELB CloudWatch-metric stand-in used by the latency-based
autoscaler policy.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

import numpy as np

from repro.core.clock import MONOTONIC, Clock
from repro.core.errors import ConfigurationError

__all__ = ["SlidingWindowLatency"]


class SlidingWindowLatency:
    """Ring of (timestamp, latency) pairs with windowed statistics."""

    def __init__(self, window: float = 10.0, *, max_samples: int = 100_000,
                 clock: Clock = MONOTONIC):
        if window <= 0:
            raise ConfigurationError(f"window must be > 0, got {window}")
        if max_samples < 1:
            raise ConfigurationError("max_samples must be >= 1")
        self.window = window
        self.max_samples = max_samples
        self._clock = clock
        self._samples: Deque[Tuple[float, float]] = deque()
        self.total_recorded = 0

    def record(self, latency: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        now = self._clock()
        self._samples.append((now, latency))
        self.total_recorded += 1
        self._evict(now)

    def _evict(self, now: float) -> None:
        horizon = now - self.window
        while self._samples and (self._samples[0][0] < horizon
                                 or len(self._samples) > self.max_samples):
            self._samples.popleft()

    def _values(self) -> np.ndarray:
        self._evict(self._clock())
        return np.array([lat for _, lat in self._samples])

    def count(self) -> int:
        self._evict(self._clock())
        return len(self._samples)

    def mean(self) -> float:
        values = self._values()
        return float(values.mean()) if values.size else 0.0

    def percentile(self, pct: float) -> float:
        values = self._values()
        return float(np.percentile(values, pct)) if values.size else 0.0
