"""Tests for the qos_rules table API (§II-D, §III-D)."""

from __future__ import annotations

import pytest

from repro.core.rules import QoSRule
from repro.db.engine import Engine
from repro.db.rulestore import RuleStore


@pytest.fixture
def store() -> RuleStore:
    s = RuleStore()
    s.put_rule(QoSRule("alice", refill_rate=100.0, capacity=1000.0))
    s.put_rule(QoSRule("bob", refill_rate=10.0, capacity=100.0))
    return s


class TestCrud:
    def test_get_rule(self, store):
        rule = store.get_rule("alice")
        assert rule == QoSRule("alice", refill_rate=100.0, capacity=1000.0)

    def test_get_missing_returns_none(self, store):
        assert store.get_rule("nobody") is None

    def test_put_updates_in_place(self, store):
        store.put_rule(QoSRule("alice", refill_rate=5.0, capacity=50.0))
        assert store.get_rule("alice").refill_rate == 5.0
        assert store.count() == 2

    def test_delete(self, store):
        assert store.delete_rule("bob")
        assert not store.delete_rule("bob")
        assert store.get_rule("bob") is None
        assert store.count() == 1

    def test_get_rules_batch(self, store):
        rules = store.get_rules(["alice", "bob", "nobody"])
        assert set(rules) == {"alice", "bob"}

    def test_load_all_warmup_scan(self, store):
        # "SELECT * FROM qos_rules" at startup (§III-D).
        everything = store.load_all()
        assert set(everything) == {"alice", "bob"}
        assert everything["bob"].capacity == 100.0


class TestCheckpoint:
    def test_checkpoint_round_trip(self, store):
        store.checkpoint({"alice": 123.0})
        assert store.get_rule("alice").credit == 123.0

    def test_checkpoint_unknown_key_ignored(self, store):
        store.checkpoint({"nobody": 5.0})
        assert store.get_rule("nobody") is None

    def test_oversized_checkpoint_clamped_on_read(self, store):
        # A stale checkpoint larger than a shrunk capacity must not
        # violate the rule invariant when materialized.
        store.checkpoint({"bob": 99.0})
        store.engine.execute(
            "UPDATE qos_rules SET capacity = 10.0 WHERE qos_key = 'bob'")
        rule = store.get_rule("bob")
        assert rule.credit == 10.0

    def test_negative_checkpoint_clamped(self, store):
        store.engine.execute(
            "UPDATE qos_rules SET credit = -5.0 WHERE qos_key = 'bob'")
        assert store.get_rule("bob").credit == 0.0


class TestFootprint:
    def test_approx_bytes_scales(self, store):
        small = store.approx_bytes()
        for i in range(100):
            store.put_rule(QoSRule(f"user-{i:04d}", 1.0, 10.0))
        assert store.approx_bytes() > small

    def test_empty_engine_zero_bytes(self):
        store = RuleStore(Engine(), create=False)
        assert store.approx_bytes() == 0

    def test_row_size_near_paper_estimate(self, store):
        # The paper sizes a rule at ~100 bytes.
        per_row = store.approx_bytes() / store.count()
        assert 40 <= per_row <= 300


class TestSharedEngine:
    def test_two_stores_share_state(self):
        engine = Engine()
        a = RuleStore(engine)
        b = RuleStore(engine)
        a.put_rule(QoSRule("k", 1.0, 10.0))
        assert b.get_rule("k") is not None
