"""Tests for the key populations (Fig. 6) and rule generation."""

from __future__ import annotations

import re

import pytest

from repro.core.errors import ConfigurationError
from repro.workload.keygen import (
    KEY_POPULATIONS,
    KeyCycle,
    english_keys,
    rule_population,
    sequential_keys,
    timestamp_keys,
    uuid_keys,
)

UUID_RE = re.compile(
    r"^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$")
TS_RE = re.compile(r"^\d{4}-\d{2}-\d{2}-\d{2}-\d{2}-\d{2}$")


class TestPopulations:
    def test_uuid_format(self):
        keys = uuid_keys(200, seed=1)
        assert all(UUID_RE.match(k) for k in keys)
        assert len(set(keys)) == 200

    def test_timestamp_format(self):
        keys = timestamp_keys(200, seed=1)
        assert all(TS_RE.match(k) for k in keys)

    def test_english_unique_and_alpha(self):
        keys = english_keys(500, seed=1)
        assert len(set(keys)) == 500
        assert all(k.isalpha() for k in keys)

    def test_sequential_exact_paper_range(self):
        # "sequential numbers starting from 1500000001 to 1500500000"
        keys = sequential_keys(5)
        assert keys == ["1500000001", "1500000002", "1500000003",
                        "1500000004", "1500000005"]

    def test_deterministic_by_seed(self):
        assert uuid_keys(50, seed=9) == uuid_keys(50, seed=9)
        assert uuid_keys(50, seed=9) != uuid_keys(50, seed=10)

    def test_registry_has_four_populations(self):
        assert set(KEY_POPULATIONS) == {
            "UUID", "TimeStamp", "EnglishVocabulary", "SequentialNumbers"}
        for factory in KEY_POPULATIONS.values():
            assert len(factory(10, 0)) == 10


class TestRulePopulation:
    def test_rates_within_paper_range(self):
        rules = list(rule_population(500, seed=2))
        rates = [r.refill_rate for r in rules]
        assert min(rates) >= 1.0
        assert max(rates) <= 10_000.0
        # Log-uniform: both decades below 100 and above 1000 populated.
        assert any(r < 100 for r in rates)
        assert any(r > 1000 for r in rates)

    def test_capacity_is_burst_headroom(self):
        for rule in rule_population(50, seed=3, burst_seconds=10.0):
            assert rule.capacity == pytest.approx(
                max(1.0, rule.refill_rate * 10.0))

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            list(rule_population(-1))


class TestKeyCycle:
    def test_round_robin(self):
        cycle = KeyCycle(["a", "b", "c"])
        assert [cycle() for _ in range(7)] == ["a", "b", "c", "a", "b", "c", "a"]

    def test_start_offset(self):
        cycle = KeyCycle(["a", "b", "c"], start=2)
        assert cycle() == "c"

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            KeyCycle([])


class TestZipfKeyChooser:
    def test_skew_orders_by_rank(self):
        from collections import Counter
        from repro.workload.keygen import ZipfKeyChooser
        keys = [f"k{i}" for i in range(50)]
        chooser = ZipfKeyChooser(keys, exponent=1.0, seed=3)
        counts = Counter(chooser() for _ in range(30_000))
        assert counts["k0"] > counts["k9"] > counts["k49"]

    def test_probability_sums_to_one(self):
        from repro.workload.keygen import ZipfKeyChooser
        chooser = ZipfKeyChooser([f"k{i}" for i in range(20)], exponent=1.2)
        total = sum(chooser.probability(r) for r in range(20))
        assert abs(total - 1.0) < 1e-9

    def test_probability_matches_empirical(self):
        from collections import Counter
        from repro.workload.keygen import ZipfKeyChooser
        keys = [f"k{i}" for i in range(30)]
        chooser = ZipfKeyChooser(keys, exponent=1.0, seed=4)
        counts = Counter(chooser() for _ in range(50_000))
        assert counts["k0"] / 50_000 == pytest.approx(
            chooser.probability(0), rel=0.1)

    def test_zero_exponent_is_uniform(self):
        from collections import Counter
        from repro.workload.keygen import ZipfKeyChooser
        keys = [f"k{i}" for i in range(10)]
        chooser = ZipfKeyChooser(keys, exponent=0.0, seed=5)
        counts = Counter(chooser() for _ in range(20_000))
        assert max(counts.values()) / min(counts.values()) < 1.25

    def test_validation(self):
        from repro.workload.keygen import ZipfKeyChooser
        with pytest.raises(ConfigurationError):
            ZipfKeyChooser([])
        with pytest.raises(ConfigurationError):
            ZipfKeyChooser(["k"], exponent=-1.0)
        chooser = ZipfKeyChooser(["k"], exponent=1.0)
        with pytest.raises(ConfigurationError):
            chooser.probability(5)
