"""Tests for database snapshots."""

from __future__ import annotations

import json

import pytest

from repro.core.errors import SQLError
from repro.core.rules import QoSRule
from repro.db.engine import Engine
from repro.db.persistence import dump_engine, load_engine
from repro.db.rulestore import RuleStore


class TestRoundTrip:
    def test_full_round_trip(self, tmp_path):
        engine = Engine("source")
        engine.execute("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL, n INTEGER)")
        engine.execute("INSERT INTO t (k, v, n) VALUES ('a', 1.5, 10)")
        engine.execute("INSERT INTO t (k, v, n) VALUES ('b', NULL, -3)")
        path = tmp_path / "snap.json"
        assert dump_engine(engine, path) == 2
        restored = load_engine(path)
        rows = restored.execute("SELECT k, v, n FROM t ORDER BY k").rows
        assert rows == [("a", 1.5, 10), ("b", None, -3)]

    def test_pk_index_survives(self, tmp_path):
        engine = Engine()
        engine.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
        engine.execute("INSERT INTO t (k) VALUES ('x')")
        path = tmp_path / "snap.json"
        dump_engine(engine, path)
        restored = load_engine(path)
        with pytest.raises(SQLError):
            restored.execute("INSERT INTO t (k) VALUES ('x')")
        before = restored.rows_scanned
        restored.execute("SELECT * FROM t WHERE k = 'x'")
        assert restored.rows_scanned - before == 1     # point lookup

    def test_rulestore_round_trip(self, tmp_path):
        store = RuleStore()
        store.put_rule(QoSRule("alice", 100.0, 1000.0, credit=42.0))
        store.put_rule(QoSRule("bob", 10.0, 100.0))
        path = tmp_path / "rules.snap"
        dump_engine(store.engine, path)
        restored = RuleStore(load_engine(path), create=False)
        assert restored.count() == 2
        assert restored.get_rule("alice").credit == 42.0

    def test_multiple_tables(self, tmp_path):
        engine = Engine()
        engine.execute("CREATE TABLE a (x INTEGER)")
        engine.execute("CREATE TABLE b (y TEXT)")
        engine.execute("INSERT INTO a (x) VALUES (1)")
        path = tmp_path / "snap.json"
        dump_engine(engine, path)
        restored = load_engine(path)
        assert restored.table_names() == ["a", "b"]


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SQLError):
            load_engine(tmp_path / "nope.json")

    def test_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{")
        with pytest.raises(SQLError):
            load_engine(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text(json.dumps({"version": 99, "tables": {}}))
        with pytest.raises(SQLError):
            load_engine(path)

    def test_malformed_table(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(
            {"version": 1, "tables": {"t": {"rows": []}}}))
        with pytest.raises(SQLError):
            load_engine(path)
