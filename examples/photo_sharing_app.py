#!/usr/bin/env python3
"""The paper's §IV/§V-D scenario: integrating Janus with a web application.

Simulates the photo-sharing deployment (5 web nodes + Memcached + MySQL)
behind a Janus cluster, drives it at 130 rps from one client IP, and prints
the Fig. 13 story: the purchased burst, the settle-down to the purchased
rate, and the millisecond-class throttling of the excess.

Run:  python examples/photo_sharing_app.py
"""

from __future__ import annotations

from repro.apps import PhotoShareApp
from repro.core.config import (
    AdmissionConfig,
    ClusterTopology,
    JanusConfig,
    ServerConfig,
)
from repro.core.keys import ip_key
from repro.core.rules import GUEST_ACCESS, QoSRule
from repro.metrics import RequestLog
from repro.server import SimJanusCluster
from repro.workload import NoisyConstantArrivals

CLIENT_IP = "203.0.113.7"
DURATION = 60.0


def main() -> None:
    config = JanusConfig(
        topology=ClusterTopology(n_routers=2, n_qos_servers=2,
                                 router_instance="c3.xlarge",
                                 qos_instance="c3.xlarge"),
        server=ServerConfig(workers=4,
                            admission=AdmissionConfig(default_rule=GUEST_ACCESS)))
    janus = SimJanusCluster(config)
    # The §IV wrapper keys on the client IP; this IP bought 100 rps with a
    # 1000-request burst allowance (the paper's custom rule).
    janus.rules.put_rule(
        QoSRule(ip_key(CLIENT_IP), refill_rate=100.0, capacity=1000.0))
    app = PhotoShareApp(janus.sim, janus.net, janus.rng, janus=janus)

    sim, net = janus.sim, janus.net
    log = RequestLog()
    gaps = NoisyConstantArrivals(130.0, noise=0.08, seed=7).gaps()
    net.register_zone("browser", "client")

    def browser_fleet():
        serial = 0
        while sim.now < DURATION:
            yield next(gaps)
            serial += 1
            sim.spawn(one_page_view(), f"view{serial}")

    def one_page_view():
        t0 = sim.now
        yield sim.timeout(net.tcp_connect_delay("browser", "app-elb"))
        yield sim.timeout(net.one_way("browser", "app-elb"))
        view = yield from app.index_page(CLIENT_IP)
        yield sim.timeout(net.one_way("app-elb", "browser"))
        log.record(sim.now, sim.now - t0, view.allowed)

    sim.spawn(browser_fleet(), "browser-fleet")
    print(f"driving {CLIENT_IP} at ~130 rps for {DURATION:.0f}s "
          f"(purchased: 100 rps, burst 1000)...\n")
    sim.run(until=DURATION + 2.0)

    print("t (s) | accepted/s | rejected/s")
    print("------+------------+-----------")
    for t in range(0, int(DURATION), 5):
        print(f"{t:5d} | {log.accepted.rate_at(t):10.0f} "
              f"| {log.rejected.rate_at(t):9.0f}")

    ok = log.latency_summary(allowed=True).as_milliseconds()
    print(f"\nserved pages:    n={ok['count']}  "
          f"P90={ok['p90_ms']:.1f} ms (paper: ~30 ms)")
    if log.n_rejected:
        rej = log.latency_summary(allowed=False).as_milliseconds()
        print(f"throttled pages: n={rej['count']}  "
              f"P90={rej['p90_ms']:.2f} ms (paper: ~3 ms)")
    print(f"\nThe burst credit funds ~130 rps for about "
          f"{1000 / 30:.0f}s; after that the accepted rate settles at the "
          f"purchased 100 rps and the excess is throttled in milliseconds.")


if __name__ == "__main__":
    main()
