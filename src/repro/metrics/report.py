"""Plain-text table/series rendering for experiment output.

Every benchmark prints the same rows/series the paper's tables and figures
report; these helpers keep that output consistent and diff-friendly
(EXPERIMENTS.md embeds them verbatim).
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence

__all__ = ["format_table", "format_series", "format_kv"]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(series: Iterable[tuple[float, float]],
                  x_label: str = "t", y_label: str = "value",
                  title: str = "") -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table((x_label, y_label), series, title=title)


def format_kv(pairs: Mapping[str, Any], title: str = "") -> str:
    """Render a key/value block."""
    width = max((len(k) for k in pairs), default=0)
    lines = [title] if title else []
    lines.extend(f"{k.ljust(width)} : {_fmt(v)}" for k, v in pairs.items())
    return "\n".join(lines)
