"""High availability for the QoS server layer (paper §III-C).

"When high-availability is desired, an optional slave node can be
configured for each QoS server.  The slave node continuously replicates the
local QoS rule table from the master node at a configurable interval."  The
pair is published under one DNS failover name; routers address QoS servers
by that name, so a failover is invisible to the routing layer (hash results
— and hence routing rules — never change, §II-D).

Two recovery paths are modelled:

- :meth:`HAPair.fail_master` — the slave (which holds an up-to-date table
  replica) is promoted via the DNS health check: "minimum downtime".
- :meth:`ReplacementPolicy` (no slave) — a fresh server is launched for the
  failed one and re-warms lazily from the database, seeded with the last
  check-pointed credits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.admission import RuleSource
from repro.core.errors import ReplicationError
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry

from repro.server.dns import DnsService
from repro.server.qos_server import SimQoSServer

__all__ = ["HAPair", "launch_replacement"]


class HAPair:
    """A master/slave QoS server pair behind one DNS failover name."""

    def __init__(
        self,
        sim: Simulation,
        net: Network,
        dns: DnsService,
        service_name: str,
        master: SimQoSServer,
        slave: SimQoSServer,
        *,
        replication_interval: float = 1.0,
    ):
        if replication_interval <= 0:
            raise ReplicationError("replication_interval must be > 0")
        self.sim = sim
        self.net = net
        self.dns = dns
        self.service_name = service_name
        self.master = master
        self.slave: Optional[SimQoSServer] = slave
        self.replication_interval = replication_interval
        self.record = dns.register_failover(service_name, master.name, slave.name)
        self.replications = 0
        self.failovers = 0
        self._repl_proc = sim.spawn(self._replication_loop(),
                                    f"{service_name}.replication")

    def _replication_loop(self):
        """The slave's pull loop: copy the master's local QoS table.

        ``bucket_snapshots``/``restore_snapshots`` aggregate and route
        across every modeled worker process, so multi-process masters
        (``ServerConfig.processes > 1``) replicate every shard — not
        just the first controller's.
        """
        while True:
            yield self.replication_interval
            if self.slave is None or not self.master.running:
                continue
            # Snapshot transfer: latency proportional to table size.
            snapshot = self.master.bucket_snapshots()
            transfer = self.net.one_way() + len(snapshot) * 100 * 8 / 1e9
            yield self.sim.timeout(transfer)
            if self.slave is not None:
                self.slave.restore_snapshots(snapshot)
                self.slave.mark_warm(s.key for s in snapshot)
                self.replications += 1

    # ------------------------------------------------------------------ #

    def fail_master(self) -> SimQoSServer:
        """Kill the master; the DNS health check promotes the slave.

        Returns the new master.  The promoted node "already has an
        up-to-date local QoS table, allowing the QoS server to continue
        functioning with minimum interruption."
        """
        if self.slave is None:
            raise ReplicationError(
                f"{self.service_name}: master failed with no slave configured")
        self.master.fail()
        promoted = self.slave
        self.slave = None
        self.dns.mark_unhealthy(self.service_name)
        self.failovers += 1
        old, self.master = self.master, promoted
        return promoted

    def attach_new_slave(self, slave: SimQoSServer) -> None:
        """Complete recovery: pair the promoted master with a fresh slave."""
        if self.slave is not None:
            raise ReplicationError(f"{self.service_name}: slave already attached")
        self.slave = slave
        self.dns.promote(self.service_name, self.master.name, slave.name)


def launch_replacement(
    sim: Simulation,
    net: Network,
    dns: DnsService,
    service_name: str,
    failed: SimQoSServer,
    rule_source: RuleSource,
    *,
    instance: Optional[str] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    rng: Optional[RngRegistry] = None,
) -> SimQoSServer:
    """Replace a failed, non-HA QoS server (§II-D).

    The replacement re-initializes its local QoS table lazily from the
    database as requests arrive; check-pointed credits become the initial
    credit values.  The DNS name flips to the new node, so "the hash
    results — and hence the routing rules — remain the same" and the
    failure stays local to this partition.
    """
    replacement = SimQoSServer(
        sim, net, f"{failed.name}.r{id(failed) % 1000}",
        instance or failed.node.instance.name,
        rule_source,
        config=failed.config,
        calibration=calibration,
        rng=rng,
    )
    dns.promote(service_name, replacement.name)
    return replacement
