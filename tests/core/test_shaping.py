"""Tests for the traffic shaper (extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.core.shaping import TrafficShaper


class TestBurst:
    def test_initial_burst_is_capacity(self, clock):
        shaper = TrafficShaper(10.0, 5.0, clock=clock)
        delays = [shaper.reserve() for _ in range(8)]
        assert delays[:5] == [0.0] * 5
        assert delays[5] == pytest.approx(0.1)
        assert delays[6] == pytest.approx(0.2)

    def test_burst_replenishes_after_idle(self, clock):
        shaper = TrafficShaper(10.0, 5.0, clock=clock)
        for _ in range(8):
            shaper.reserve()
        clock.advance(100.0)
        assert [shaper.reserve() for _ in range(5)] == [0.0] * 5

    def test_counters(self, clock):
        shaper = TrafficShaper(10.0, 2.0, clock=clock)
        for _ in range(5):
            shaper.reserve()
        assert shaper.passed_immediately == 2
        assert shaper.delayed == 3


class TestPacing:
    def test_longrun_rate_conforms(self, clock):
        """Sleeping the returned delays paces exactly to the rate."""
        shaper = TrafficShaper(rate=50.0, capacity=1.0, clock=clock)
        for _ in range(200):
            clock.advance(shaper.reserve())
        # 200 unit-costs at 50/s from a 1-burst: ~(200-1)/50 seconds.
        assert clock() == pytest.approx(199 / 50.0, rel=0.01)

    def test_weighted_costs(self, clock):
        shaper = TrafficShaper(rate=10.0, capacity=1.0, clock=clock)
        shaper.reserve(1.0)
        delay = shaper.reserve(5.0)     # 5 units at 10/s behind one unit
        assert delay == pytest.approx(0.1)
        delay2 = shaper.reserve(1.0)
        assert delay2 == pytest.approx(0.1 + 0.5)

    def test_would_delay_is_pure(self, clock):
        shaper = TrafficShaper(10.0, 1.0, clock=clock)
        shaper.reserve()
        peek1 = shaper.would_delay()
        peek2 = shaper.would_delay()
        assert peek1 == peek2 == pytest.approx(0.1)

    @given(rate=st.floats(1.0, 1000.0), capacity=st.floats(1.0, 50.0),
           n=st.integers(10, 200))
    @settings(max_examples=60, deadline=None)
    def test_never_exceeds_rate_property(self, rate, capacity, n):
        """Conformed traffic never exceeds rate * t + capacity."""
        clock = ManualClock()
        shaper = TrafficShaper(rate, capacity, clock=clock)
        sent = 0
        for _ in range(n):
            clock.advance(shaper.reserve())
            sent += 1
            elapsed = clock()
            assert sent <= rate * elapsed + capacity + 1e-6


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"rate": 0.0, "capacity": 5.0},
        {"rate": 10.0, "capacity": 0.5},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            TrafficShaper(**kwargs)

    def test_invalid_cost(self, clock):
        shaper = TrafficShaper(10.0, 5.0, clock=clock)
        with pytest.raises(ConfigurationError):
            shaper.reserve(0.0)
        with pytest.raises(ConfigurationError):
            shaper.would_delay(-1.0)

    def test_from_rule(self, clock):
        rule = QoSRule("k", refill_rate=20.0, capacity=40.0)
        shaper = TrafficShaper.from_rule(rule, clock=clock)
        assert shaper.rate == 20.0
        assert shaper.capacity == 40.0

    def test_from_zero_rate_rule_rejected(self, clock):
        with pytest.raises(ConfigurationError):
            TrafficShaper.from_rule(QoSRule("k", 0.0, 10.0), clock=clock)


class TestShaperVsPolicer:
    def test_shaped_client_never_denied(self, clock):
        """Pre-pacing with the shaper makes the policer always admit —
        the practical point of offering both primitives."""
        from repro.core.bucket import LeakyBucket
        rate, capacity = 25.0, 10.0
        shaper = TrafficShaper(rate, capacity, clock=clock)
        policer = LeakyBucket(capacity, rate, clock=clock)
        for _ in range(300):
            clock.advance(shaper.reserve())
            assert policer.try_consume()
