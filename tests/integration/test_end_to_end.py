"""End-to-end integration: multi-tenant scenarios across the whole stack."""

from __future__ import annotations

import pytest

from repro.core.config import (
    AdmissionConfig,
    ClusterTopology,
    JanusConfig,
    ServerConfig,
)
from repro.core.keys import user_database_key, user_key
from repro.core.rules import GUEST_ACCESS, QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.simclient import ClosedLoopClient


def build_cluster(**admission_kwargs):
    config = JanusConfig(
        topology=ClusterTopology(n_routers=2, n_qos_servers=3),
        server=ServerConfig(workers=4,
                            admission=AdmissionConfig(**admission_kwargs)))
    return SimJanusCluster(config, seed=61)


class TestMultiTenant:
    def test_tenants_isolated(self):
        """One tenant exhausting its quota never affects another."""
        cluster = build_cluster()
        cluster.rules.put_rule(
            QoSRule(user_key("starved"), refill_rate=0.0, capacity=5.0))
        cluster.rules.put_rule(
            QoSRule(user_key("healthy"), refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        starved = ClosedLoopClient(cluster, "c-starved",
                                   lambda: user_key("starved"),
                                   n_requests=50)
        healthy = ClosedLoopClient(cluster, "c-healthy",
                                   lambda: user_key("healthy"),
                                   n_requests=50)
        cluster.sim.run(until=5.0)
        assert starved.log.n_allowed <= 6
        assert healthy.log.n_allowed == 50

    def test_per_database_quotas(self):
        """The §IV NoSQL use case: one user, two databases, two rates."""
        cluster = build_cluster()
        cluster.rules.put_rule(QoSRule(
            user_database_key("alice", "hot"), refill_rate=0.0, capacity=20.0))
        cluster.rules.put_rule(QoSRule(
            user_database_key("alice", "cold"), refill_rate=0.0, capacity=5.0))
        cluster.prewarm()
        hot = ClosedLoopClient(cluster, "c-hot",
                               lambda: user_database_key("alice", "hot"),
                               n_requests=30)
        cold = ClosedLoopClient(cluster, "c-cold",
                                lambda: user_database_key("alice", "cold"),
                                n_requests=30)
        cluster.sim.run(until=5.0)
        assert hot.log.n_allowed in (19, 20, 21)
        assert cold.log.n_allowed in (4, 5, 6)

    def test_burst_credit_accumulation_end_to_end(self):
        """§II-C: idle time accumulates credit that funds a later burst."""
        cluster = build_cluster()
        cluster.rules.put_rule(
            QoSRule(user_key("bursty"), refill_rate=50.0, capacity=100.0,
                    credit=0.0))
        cluster.prewarm()

        logs = []

        def phased_client():
            from repro.workload.simclient import qos_round_trip
            cluster.net.register_zone("phased", "client")
            # Phase 1: drain whatever trickles in for 0.2 s.
            for _ in range(30):
                r = yield from qos_round_trip(cluster, "phased",
                                              user_key("bursty"), "gateway")
                logs.append(("p1", r.allowed))
            # Idle 2 s: accumulate 50/s * 2 s = 100 credits (capacity cap).
            yield 2.0
            for _ in range(120):
                r = yield from qos_round_trip(cluster, "phased",
                                              user_key("bursty"), "gateway")
                logs.append(("p2", r.allowed))

        cluster.sim.spawn(phased_client(), "phased")
        cluster.sim.run(until=10.0)
        p2_allowed = sum(ok for phase, ok in logs if phase == "p2")
        assert p2_allowed >= 95      # the accumulated burst credit


class TestGuestTraffic:
    def test_mixed_known_and_guest(self):
        cluster = build_cluster(default_rule=GUEST_ACCESS)
        cluster.rules.put_rule(
            QoSRule(user_key("paying"), refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        paying = ClosedLoopClient(cluster, "c-pay",
                                  lambda: user_key("paying"), n_requests=200)
        guest = ClosedLoopClient(cluster, "c-guest",
                                 lambda: user_key("anon"), n_requests=200)
        cluster.sim.run(until=5.0)
        assert paying.log.n_allowed == 200
        # Guest: 100-capacity burst plus a trickle.
        assert 95 <= guest.log.n_allowed <= 120

    def test_hostile_key_churn_bounded_when_not_memorized(self):
        from repro.core.rules import DefaultRulePolicy
        cluster = build_cluster(default_rule=DefaultRulePolicy(
            refill_rate=0.0, capacity=0.0, memorize_unknown_keys=False))
        cluster.prewarm()
        serial = iter(range(10_000))
        attacker = ClosedLoopClient(
            cluster, "c-evil", lambda: f"attack-{next(serial)}",
            n_requests=300)
        cluster.sim.run(until=10.0)
        assert attacker.log.n_allowed == 0
        assert sum(s.controller.table_size()
                   for s in cluster.qos_servers) == 0


class TestScaleOutCorrectness:
    @pytest.mark.parametrize("n_servers", [1, 3, 5])
    def test_quota_independent_of_partition_count(self, n_servers):
        """The same rule admits the same total regardless of how many QoS
        servers the keyspace is partitioned over."""
        config = JanusConfig(topology=ClusterTopology(
            n_routers=2, n_qos_servers=n_servers))
        cluster = SimJanusCluster(config, seed=62)
        cluster.rules.put_rule(
            QoSRule("fixed-key", refill_rate=0.0, capacity=25.0))
        cluster.prewarm()
        client = ClosedLoopClient(cluster, "c0", lambda: "fixed-key",
                                  n_requests=60)
        cluster.sim.run(until=5.0)
        # Exactly the capacity, minus at most a couple of credits consumed
        # by duplicate decisions when a UDP retry crosses a late response
        # (inherent to the paper's retry protocol at its 100 us timeout).
        assert 23 <= client.log.n_allowed <= 25
