"""Tests for the key-value wire protocol (§II, §III-B/C)."""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import BucketSnapshot
from repro.core.errors import ProtocolError
from repro.core.protocol import (
    FLAG_FRAME_TRACED,
    MAX_FRAME_MESSAGES,
    MAX_KEY_BYTES,
    MAX_LEASE_TTL_MS,
    MAX_XFER_CHUNKS,
    TOPOLOGY_ABORT,
    TOPOLOGY_COMMIT,
    TOPOLOGY_PREPARE,
    TRACE_ID_BYTES,
    VERSION,
    VERSION2,
    LeaseGrant,
    LeaseRequest,
    LeaseRevoke,
    LockedRequestIdGenerator,
    QoSRequest,
    QoSResponse,
    RequestIdGenerator,
    SnapshotChunk,
    TopologyUpdate,
    XferAck,
    decode,
    decode_any,
    decode_any_traced,
    decode_frame,
    decode_frame_traced,
    encode_lease_grant_frame,
    encode_lease_request_frame,
    encode_lease_revoke_frame,
    encode_request_frame,
    encode_request_frame_parts,
    encode_response_frame,
    encode_snapshot_xfer_frame,
    encode_topology_frame,
    encode_xfer_ack_frame,
)


class TestRoundTrip:
    def test_request_round_trip(self):
        req = QoSRequest(request_id=7, key="user:alice", cost=2.5)
        assert decode(req.encode()) == req

    def test_response_round_trip(self):
        for allowed in (True, False):
            for default in (True, False):
                resp = QoSResponse(9, allowed, default)
                assert decode(resp.encode()) == resp

    @given(st.integers(0, 2**64 - 1),
           st.text(min_size=1, max_size=200),
           st.floats(0.001, 1e6))
    @settings(max_examples=200)
    def test_request_round_trip_property(self, request_id, key, cost):
        req = QoSRequest(request_id, key, cost)
        decoded = decode(req.encode())
        assert decoded.request_id == request_id
        assert decoded.key == key
        assert decoded.cost == pytest.approx(cost)

    @given(st.integers(0, 2**64 - 1), st.booleans(), st.booleans())
    def test_response_round_trip_property(self, request_id, allowed, default):
        assert decode(QoSResponse(request_id, allowed, default).encode()) == \
            QoSResponse(request_id, allowed, default)


class TestValidation:
    def test_empty_key_rejected_on_encode(self):
        with pytest.raises(ProtocolError):
            QoSRequest(1, "").encode()

    def test_oversized_key_rejected(self):
        with pytest.raises(ProtocolError):
            QoSRequest(1, "x" * (MAX_KEY_BYTES + 1)).encode()

    def test_request_id_out_of_range(self):
        with pytest.raises(ProtocolError):
            QoSRequest(2**64, "k").encode()
        with pytest.raises(ProtocolError):
            QoSRequest(-1, "k").encode()

    def test_unicode_key_round_trip(self):
        req = QoSRequest(1, "user:日本語-ключ")
        assert decode(req.encode()).key == "user:日本語-ключ"


class TestMalformedInput:
    """A UDP port receives arbitrary garbage; decode must never crash."""

    def test_short_datagram(self):
        with pytest.raises(ProtocolError):
            decode(b"hi")

    def test_bad_magic(self):
        data = bytearray(QoSRequest(1, "k").encode())
        data[0] ^= 0xFF
        with pytest.raises(ProtocolError):
            decode(bytes(data))

    def test_bad_version(self):
        data = bytearray(QoSRequest(1, "k").encode())
        data[2] = 99
        with pytest.raises(ProtocolError):
            decode(bytes(data))

    def test_unknown_type(self):
        data = bytearray(QoSRequest(1, "k").encode())
        data[3] = 42
        with pytest.raises(ProtocolError):
            decode(bytes(data))

    def test_truncated_request_body(self):
        data = QoSRequest(1, "some-key").encode()
        with pytest.raises(ProtocolError):
            decode(data[:-3])

    def test_inflated_key_length(self):
        data = bytearray(QoSRequest(1, "abc").encode())
        struct.pack_into("!H", data, 12, 2000)
        with pytest.raises(ProtocolError):
            decode(bytes(data))

    def test_invalid_utf8_key(self):
        good = bytearray(QoSRequest(1, "ab").encode())
        good[14:16] = b"\xff\xfe"
        with pytest.raises(ProtocolError):
            decode(bytes(good))

    def test_bad_verdict_byte(self):
        data = bytearray(QoSResponse(1, True).encode())
        data[12] = 7
        with pytest.raises(ProtocolError):
            decode(bytes(data))

    @given(st.binary(max_size=64))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, blob):
        try:
            decode(blob)
        except ProtocolError:
            pass        # the only acceptable failure mode


class TestRequestIdGenerator:
    def test_monotone(self):
        gen = RequestIdGenerator()
        ids = [gen.next_id() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100

    def test_thread_safety_unique(self):
        import threading
        gen = RequestIdGenerator()
        out: list[int] = []
        lock = threading.Lock()

        def worker():
            local = [gen.next_id() for _ in range(1000)]
            with lock:
                out.extend(local)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(set(out)) == 4000


class TestCostValidation:
    @pytest.mark.parametrize("cost", [0.0, -1.0, float("nan"), float("inf")])
    def test_bad_cost_rejected_on_encode(self, cost):
        with pytest.raises(ProtocolError):
            QoSRequest(1, "k", cost).encode()

    def test_bad_cost_rejected_on_decode(self):
        data = bytearray(QoSRequest(1, "k", 1.0).encode())
        struct.pack_into("!d", data, len(data) - 8, float("nan"))
        with pytest.raises(ProtocolError):
            decode(bytes(data))


class TestV2Frames:
    """Protocol-v2 batch frames (§III-B wire path, PR 3)."""

    def _requests(self, n):
        return [QoSRequest(i + 1, f"tenant:{i}", 0.5 + i) for i in range(n)]

    def test_request_frame_round_trip(self):
        requests = self._requests(5)
        frame = encode_request_frame(requests)
        assert decode_frame(frame) == requests

    def test_response_frame_round_trip(self):
        responses = [QoSResponse(i + 1, i % 2 == 0, is_default_reply=(i == 3))
                     for i in range(6)]
        assert decode_frame(encode_response_frame(responses)) == responses

    def test_single_message_frame(self):
        requests = self._requests(1)
        assert decode_frame(encode_request_frame(requests)) == requests

    def test_decode_any_dispatches_on_version_byte(self):
        req = QoSRequest(9, "k", 2.0)
        version, messages = decode_any(req.encode())
        assert (version, messages) == (VERSION, [req])
        requests = self._requests(3)
        version, messages = decode_any(encode_request_frame(requests))
        assert (version, messages) == (VERSION2, requests)

    def test_parts_form_matches_request_form(self):
        requests = self._requests(4)
        parts = [(r.request_id, r.key.encode(), r.cost) for r in requests]
        assert encode_request_frame_parts(parts) == \
            encode_request_frame(requests)

    def test_empty_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request_frame([])
        with pytest.raises(ProtocolError):
            encode_response_frame([])

    def test_overfull_frame_rejected(self):
        with pytest.raises(ProtocolError):
            encode_request_frame(self._requests(MAX_FRAME_MESSAGES + 1))

    def test_oversized_frame_rejected(self):
        big = [QoSRequest(i, "x" * MAX_KEY_BYTES) for i in range(20)]
        with pytest.raises(ProtocolError):
            encode_request_frame(big)

    @given(st.integers(1, 64))
    @settings(max_examples=30)
    def test_frame_round_trip_property(self, n):
        requests = self._requests(n)
        assert decode_frame(encode_request_frame(requests)) == requests


class TestTracedFrames:
    """The TRACED flag bit and the optional 8-byte trace id (PR 4)."""

    TRACE_ID = 0x1234_5678_9ABC_DEF0

    def _requests(self, n):
        return [QoSRequest(i + 1, f"tenant:{i}", 0.5 + i) for i in range(n)]

    def test_traced_request_frame_round_trip(self):
        requests = self._requests(4)
        frame = encode_request_frame(requests, trace_id=self.TRACE_ID)
        trace_id, messages = decode_frame_traced(frame)
        assert trace_id == self.TRACE_ID
        assert messages == requests

    def test_traced_response_frame_round_trip(self):
        responses = [QoSResponse(i + 1, i % 2 == 0) for i in range(3)]
        frame = encode_response_frame(responses, trace_id=self.TRACE_ID)
        trace_id, messages = decode_frame_traced(frame)
        assert trace_id == self.TRACE_ID
        assert messages == responses

    def test_untraced_frame_byte_identical_to_pre_tracing_encoding(self):
        # trace_id=0 must not change the wire image at all: v2 peers
        # that predate tracing keep interoperating byte for byte.
        requests = self._requests(3)
        assert encode_request_frame(requests, trace_id=0) == \
            encode_request_frame(requests)
        frame = encode_request_frame(requests)
        assert not frame[3] & FLAG_FRAME_TRACED
        assert decode_frame_traced(frame) == (0, requests)

    def test_traced_frame_is_exactly_eight_bytes_longer(self):
        requests = self._requests(2)
        untraced = encode_request_frame(requests)
        traced = encode_request_frame(requests, trace_id=self.TRACE_ID)
        assert len(traced) == len(untraced) + TRACE_ID_BYTES
        assert traced[3] & FLAG_FRAME_TRACED

    def test_decode_frame_drops_the_trace_id(self):
        # The pre-tracing decode surface still works on traced frames.
        requests = self._requests(2)
        frame = encode_request_frame(requests, trace_id=self.TRACE_ID)
        assert decode_frame(frame) == requests

    def test_decode_any_traced_v1_has_no_trace_id(self):
        req = QoSRequest(9, "k", 2.0)
        assert decode_any_traced(req.encode()) == (VERSION, 0, [req])

    def test_decode_any_traced_v2(self):
        requests = self._requests(3)
        frame = encode_request_frame(requests, trace_id=self.TRACE_ID)
        assert decode_any_traced(frame) == \
            (VERSION2, self.TRACE_ID, requests)

    def test_trace_id_out_of_u64_range_rejected(self):
        for bad in (-1, 2**64):
            with pytest.raises(ProtocolError):
                encode_request_frame(self._requests(1), trace_id=bad)
            with pytest.raises(ProtocolError):
                encode_response_frame([QoSResponse(1, True)], trace_id=bad)

    def test_truncated_trace_id_rejected(self):
        frame = encode_request_frame(self._requests(1),
                                     trace_id=self.TRACE_ID)
        header_end = 6
        for cut in range(header_end, header_end + TRACE_ID_BYTES):
            with pytest.raises(ProtocolError):
                decode_frame_traced(frame[:cut])

    def test_flag_set_with_zero_id_rejected(self):
        # A frame claiming TRACED must carry a nonzero id: zero would be
        # indistinguishable from "untraced" downstream.
        frame = bytearray(encode_request_frame(self._requests(1),
                                               trace_id=self.TRACE_ID))
        frame[6:6 + TRACE_ID_BYTES] = b"\x00" * TRACE_ID_BYTES
        with pytest.raises(ProtocolError):
            decode_frame_traced(bytes(frame))

    @given(st.integers(1, 2**64 - 1), st.integers(1, 16))
    @settings(max_examples=50)
    def test_traced_round_trip_property(self, trace_id, n):
        requests = self._requests(n)
        frame = encode_request_frame(requests, trace_id=trace_id)
        assert decode_frame_traced(frame) == (trace_id, requests)

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_never_crash_traced_decoders(self, blob):
        for decoder in (decode_frame_traced, decode_any_traced):
            try:
                decoder(blob)
            except ProtocolError:
                pass    # the only acceptable failure mode


class TestV2FrameMalformedInput:
    """Truncated, inflated, and garbage v2 frames must only ever raise."""

    def test_truncated_header(self):
        frame = encode_request_frame([QoSRequest(1, "k")])
        with pytest.raises(ProtocolError):
            decode_frame(frame[:4])

    def test_truncated_entry(self):
        frame = encode_request_frame([QoSRequest(1, "key-one"),
                                      QoSRequest(2, "key-two")])
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-5])

    def test_count_disagrees_with_payload(self):
        # Declared count says 3, payload carries 2: must raise, not
        # return a short list.
        frame = bytearray(encode_request_frame(
            [QoSRequest(1, "a"), QoSRequest(2, "b")]))
        struct.pack_into("!H", frame, 4, 3)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_count_smaller_than_payload(self):
        frame = bytearray(encode_request_frame(
            [QoSRequest(1, "a"), QoSRequest(2, "b")]))
        struct.pack_into("!H", frame, 4, 1)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_zero_count_rejected(self):
        frame = bytearray(encode_request_frame([QoSRequest(1, "a")]))
        struct.pack_into("!H", frame, 4, 0)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_inflated_key_length(self):
        frame = bytearray(encode_request_frame([QoSRequest(1, "ab")]))
        struct.pack_into("!H", frame, 6 + 8, 60_000)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_bad_verdict_in_response_frame(self):
        frame = bytearray(encode_response_frame([QoSResponse(1, True)]))
        frame[6 + 8] = 9
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_v1_datagram_rejected_by_decode_frame(self):
        with pytest.raises(ProtocolError):
            decode_frame(QoSRequest(1, "k").encode())

    def test_unsupported_version_rejected_by_decode_any(self):
        frame = bytearray(encode_request_frame([QoSRequest(1, "k")]))
        frame[2] = 7
        with pytest.raises(ProtocolError):
            decode_any(bytes(frame))

    @given(st.binary(max_size=200))
    @settings(max_examples=300)
    def test_random_bytes_never_crash(self, blob):
        for decoder in (decode_frame, decode_any):
            try:
                decoder(blob)
            except ProtocolError:
                pass    # the only acceptable failure mode

    @given(st.binary(max_size=100), st.integers(0, 99))
    @settings(max_examples=200)
    def test_flipped_frame_bytes_never_crash(self, junk, cut):
        # Mutate a valid frame: truncate, extend, or both.
        frame = encode_request_frame(
            [QoSRequest(5, "tenant:a", 1.0), QoSRequest(6, "tenant:b", 2.0)])
        mutated = frame[:cut % len(frame)] + junk
        try:
            decode_any(mutated)
        except ProtocolError:
            pass


class TestLeaseFrames:
    """Credit-lease frames (v2 LEASE_REQ/LEASE_GRANT/LEASE_REVOKE, PR 7)."""

    TRACE_ID = 0xFEED_FACE_CAFE_BEEF

    def _requests(self, n):
        return [LeaseRequest(i + 1, f"hot:{i}", 32.0 + i, 500)
                for i in range(n)]

    def test_request_frame_round_trip(self):
        requests = self._requests(3)
        frame = encode_lease_request_frame(requests)
        assert decode_frame(frame) == requests

    def test_renewal_round_trip(self):
        renewal = LeaseRequest(7, "hot", credits=64.0, ttl_ms=250,
                               return_credits=12.5, return_lease_id=99)
        assert decode_frame(encode_lease_request_frame([renewal])) == \
            [renewal]

    def test_pure_return_round_trip(self):
        giveback = LeaseRequest(8, "hot", credits=0.0, ttl_ms=0,
                                return_credits=3.0, return_lease_id=42)
        assert decode_frame(encode_lease_request_frame([giveback])) == \
            [giveback]

    def test_grant_frame_round_trip(self):
        grants = [LeaseGrant(i + 1, f"hot:{i}", 100 + i, 16.0, 500)
                  for i in range(4)]
        assert decode_frame(encode_lease_grant_frame(grants)) == grants

    def test_refusal_grant_round_trip(self):
        refusal = LeaseGrant(5, "hot", lease_id=0, credits=0.0, ttl_ms=0)
        assert decode_frame(encode_lease_grant_frame([refusal])) == [refusal]

    def test_revoke_frame_round_trip(self):
        revokes = [LeaseRevoke(100 + i, f"hot:{i}") for i in range(3)]
        assert decode_frame(encode_lease_revoke_frame(revokes)) == revokes

    def test_traced_lease_frames_carry_the_id(self):
        for encode, messages in (
                (encode_lease_request_frame, self._requests(2)),
                (encode_lease_grant_frame,
                 [LeaseGrant(1, "k", 9, 8.0, 100)]),
                (encode_lease_revoke_frame, [LeaseRevoke(9, "k")])):
            frame = encode(messages, trace_id=self.TRACE_ID)
            assert frame[3] & FLAG_FRAME_TRACED
            assert decode_frame_traced(frame) == (self.TRACE_ID, messages)

    def test_decode_any_routes_lease_frames(self):
        requests = self._requests(2)
        version, messages = decode_any(encode_lease_request_frame(requests))
        assert (version, messages) == (VERSION2, requests)

    def test_return_credits_require_a_lease_id(self):
        bad = LeaseRequest(1, "k", 8.0, 100, return_credits=2.0,
                           return_lease_id=0)
        with pytest.raises(ProtocolError):
            encode_lease_request_frame([bad])

    def test_half_refusal_grants_rejected(self):
        # credits>0 with lease_id 0, and lease_id>0 with credits 0, are
        # both nonsense on the wire.
        for lease_id, credits in ((0, 8.0), (9, 0.0)):
            with pytest.raises(ProtocolError):
                encode_lease_grant_frame(
                    [LeaseGrant(1, "k", lease_id, credits, 100)])

    def test_zero_lease_id_revoke_rejected(self):
        with pytest.raises(ProtocolError):
            encode_lease_revoke_frame([LeaseRevoke(0, "k")])

    def test_ttl_out_of_range_rejected(self):
        for ttl in (-1, MAX_LEASE_TTL_MS + 1):
            with pytest.raises(ProtocolError):
                encode_lease_request_frame([LeaseRequest(1, "k", 8.0, ttl)])

    def test_empty_lease_frame_rejected(self):
        for encode in (encode_lease_request_frame, encode_lease_grant_frame,
                       encode_lease_revoke_frame):
            with pytest.raises(ProtocolError):
                encode([])

    def test_truncated_lease_entry_rejected(self):
        frame = encode_lease_request_frame(self._requests(2))
        with pytest.raises(ProtocolError):
            decode_frame(frame[:-5])

    @given(st.integers(1, 32))
    @settings(max_examples=30)
    def test_lease_request_frame_round_trip_property(self, n):
        requests = self._requests(n)
        assert decode_frame(encode_lease_request_frame(requests)) == requests

    @given(st.binary(max_size=200), st.integers(0, 99))
    @settings(max_examples=300)
    def test_mutated_lease_frames_never_crash(self, junk, cut):
        frame = encode_lease_grant_frame(
            [LeaseGrant(1, "hot:a", 7, 16.0, 500),
             LeaseGrant(2, "hot:b", 8, 32.0, 500)])
        mutated = frame[:cut % len(frame)] + junk
        for decoder in (decode_frame, decode_any, decode_frame_traced,
                        decode_any_traced):
            try:
                decoder(mutated)
            except ProtocolError:
                pass    # the only acceptable failure mode

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_with_lease_types_never_crash(self, blob):
        # Force the frame-type byte through the lease range so the fuzz
        # actually reaches the type-3/4/5 decoders.
        frame = bytearray(encode_lease_request_frame(self._requests(1)))
        for mtype in (3, 4, 5):
            mutated = bytes(frame[:3]) + bytes([mtype]) + bytes(blob)
            try:
                decode_any(mutated)
            except ProtocolError:
                pass


class TestLockedRequestIdGenerator:
    def test_monotone_and_unique(self):
        gen = LockedRequestIdGenerator()
        ids = [gen.next_id() for _ in range(100)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 100

    def test_interchangeable_with_lock_free(self):
        a, b = RequestIdGenerator(start=5), LockedRequestIdGenerator(start=5)
        assert [a.next_id() for _ in range(10)] == \
            [b.next_id() for _ in range(10)]


class TestReshardFrames:
    """Reshard frames (v2 SNAPSHOT_XFER/XFER_ACK/TOPOLOGY, PR 9)."""

    TRACE_ID = 0xDEAD_BEEF_0000_0009

    def _buckets(self, n, leases=0):
        from repro.core.admission import LeaseSnapshot

        return tuple(
            BucketSnapshot(
                key=f"moved:{i}", capacity=100.0 + i, refill_rate=float(i),
                credit=50.0 + i,
                leases=tuple(LeaseSnapshot(
                    lease_id=1 + i * 10 + j, granted=4.0 + j,
                    ttl_remaining=0.5, holder=("10.0.0.9", 7000 + j))
                    for j in range(leases)))
            for i in range(n))

    def _chunk(self, n=3, leases=0, **kwargs):
        fields = dict(xfer_id=7, epoch=3, seq=1, total=4,
                      buckets=self._buckets(n, leases))
        fields.update(kwargs)
        return SnapshotChunk(**fields)

    def test_snapshot_chunk_round_trip(self):
        chunk = self._chunk(n=3, leases=2)
        assert decode_frame(encode_snapshot_xfer_frame(chunk)) == [chunk]

    def test_snapshot_chunk_traced_round_trip(self):
        chunk = self._chunk()
        frame = encode_snapshot_xfer_frame(chunk, trace_id=self.TRACE_ID)
        assert frame[3] & FLAG_FRAME_TRACED
        assert decode_frame_traced(frame) == (self.TRACE_ID, [chunk])

    def test_xfer_ack_round_trip(self):
        acks = [XferAck(7, 3, i) for i in range(4)]
        assert decode_frame(encode_xfer_ack_frame(acks)) == acks

    def test_topology_round_trip(self):
        for phase in (TOPOLOGY_PREPARE, TOPOLOGY_COMMIT, TOPOLOGY_ABORT):
            update = TopologyUpdate(
                epoch=9, phase=phase,
                backends=(("10.0.0.1", 9001), ("10.0.0.2", 9002)))
            assert decode_frame(encode_topology_frame(update)) == [update]

    def test_decode_any_routes_reshard_frames(self):
        chunk = self._chunk()
        version, messages = decode_any(encode_snapshot_xfer_frame(chunk))
        assert (version, messages) == (VERSION2, [chunk])

    def test_epoch_zero_rejected_everywhere(self):
        with pytest.raises(ProtocolError, match="epoch"):
            encode_snapshot_xfer_frame(self._chunk(epoch=0))
        with pytest.raises(ProtocolError, match="epoch"):
            encode_xfer_ack_frame([XferAck(7, 0, 1)])
        with pytest.raises(ProtocolError, match="epoch"):
            encode_topology_frame(TopologyUpdate(
                0, TOPOLOGY_PREPARE, (("h", 1),)))

    def test_reserved_xfer_id_rejected_for_chunks(self):
        with pytest.raises(ProtocolError, match="reserved"):
            encode_snapshot_xfer_frame(self._chunk(xfer_id=0))

    def test_chunk_seq_total_bounds(self):
        with pytest.raises(ProtocolError):
            encode_snapshot_xfer_frame(self._chunk(seq=4, total=4))
        with pytest.raises(ProtocolError):
            encode_snapshot_xfer_frame(self._chunk(total=0, seq=0))
        with pytest.raises(ProtocolError):
            encode_snapshot_xfer_frame(
                self._chunk(total=MAX_XFER_CHUNKS + 1))

    def test_oversized_lease_count_rejected_on_decode(self):
        # Forge the bucket's lease count over the wire bound: the
        # decoder must refuse before trying to read 64k lease entries.
        chunk = self._chunk(n=1, leases=1)
        frame = bytearray(encode_snapshot_xfer_frame(chunk))
        # n_leases is the u16 closing the bucket tail, right before the
        # lease entry (!QdIB, 21B fixed) + holder host ("10.0.0.9", 8B)
        # + port (2B) that end the frame.
        lease_entry = 21 + len("10.0.0.9") + 2
        n_leases_at = len(frame) - lease_entry - 2
        struct.pack_into("!H", frame, n_leases_at, 60_000)
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_bad_topology_phase_rejected(self):
        update = TopologyUpdate(5, TOPOLOGY_ABORT, (("h", 1),))
        frame = bytearray(encode_topology_frame(update))
        # The phase byte is the last byte of the topology head.
        frame[6 + 4] = 9
        with pytest.raises(ProtocolError):
            decode_frame(bytes(frame))

    def test_truncation_at_every_boundary_rejected_cleanly(self):
        chunk = self._chunk(n=2, leases=1)
        for frame in (encode_snapshot_xfer_frame(chunk),
                      encode_xfer_ack_frame([XferAck(7, 3, 0)]),
                      encode_topology_frame(TopologyUpdate(
                          4, TOPOLOGY_COMMIT, (("10.0.0.1", 9001),)))):
            for cut in range(len(frame)):
                with pytest.raises(ProtocolError):
                    decode_frame(frame[:cut])

    @given(st.integers(1, 16), st.integers(0, 3))
    @settings(max_examples=40)
    def test_snapshot_round_trip_property(self, n, leases):
        chunk = self._chunk(n=n, leases=leases)
        (decoded,) = decode_frame(encode_snapshot_xfer_frame(chunk))
        assert decoded.xfer_id == chunk.xfer_id
        assert decoded.epoch == chunk.epoch
        assert [b.key for b in decoded.buckets] == \
            [b.key for b in chunk.buckets]
        assert [b.credit for b in decoded.buckets] == \
            [b.credit for b in chunk.buckets]
        for before, after in zip(chunk.buckets, decoded.buckets):
            assert [l.lease_id for l in after.leases] == \
                [l.lease_id for l in before.leases]
            assert all(l.holder == m.holder
                       for l, m in zip(before.leases, after.leases))

    @given(st.binary(max_size=200), st.integers(0, 99))
    @settings(max_examples=300)
    def test_mutated_reshard_frames_never_crash(self, junk, cut):
        frame = encode_snapshot_xfer_frame(self._chunk(n=2, leases=1))
        mutated = frame[:cut % len(frame)] + junk
        for decoder in (decode_frame, decode_any, decode_frame_traced,
                        decode_any_traced):
            try:
                decoder(mutated)
            except ProtocolError:
                pass    # the only acceptable failure mode

    @given(st.binary(max_size=200))
    @settings(max_examples=200)
    def test_random_bytes_with_reshard_types_never_crash(self, blob):
        # Force the frame-type byte through the reshard range so the
        # fuzz actually reaches the type-6/7/8 decoders.
        frame = bytearray(encode_topology_frame(TopologyUpdate(
            1, TOPOLOGY_PREPARE, (("h", 1),))))
        for mtype in (6, 7, 8):
            mutated = bytes(frame[:3]) + bytes([mtype]) + bytes(blob)
            try:
                decode_any(mutated)
            except ProtocolError:
                pass
