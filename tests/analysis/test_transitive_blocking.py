"""transitive-blocking-under-lock: call-graph reachability under locks."""

from __future__ import annotations

import textwrap

import pytest

from repro.analysis import all_checkers
from repro.analysis.callgraph import MAX_CALL_DEPTH
from repro.analysis.framework import lint_paths

RULE = "transitive-blocking-under-lock"


@pytest.fixture
def lint_tree(tmp_path):
    """Write a {relpath: code} tree under tmp_path and lint it whole.

    Paths are relative, e.g. ``core/channel.py`` — directories are
    created as needed so cross-module fixtures read naturally.
    """

    def run(files: dict, *, rules=(RULE,)):
        for rel, code in files.items():
            target = tmp_path / rel
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(textwrap.dedent(code))
        return lint_paths([str(tmp_path)], all_checkers(),
                          rules=list(rules))

    return run


def test_one_hop_chain_reports_path_and_sink(lint_tree):
    result = lint_tree({"core/channel.py": """
        import time


        class Channel:
            def flush(self):
                with self._lock:
                    self._drain()

            def _drain(self):
                time.sleep(0.05)
    """})
    assert [f.rule for f in result.findings] == [RULE]
    finding = result.findings[0]
    message = finding.message
    assert "call chain Channel._drain" in message
    assert "time.sleep()" in message
    assert "core/channel.py" in message     # sink file named in the path
    # The finding lands on the call site under the lock, not the sink.
    assert finding.line == 8


def test_multi_hop_chain_prints_every_hop(lint_tree):
    result = lint_tree({"core/deep.py": """
        import time


        class Deep:
            def flush(self):
                with self._lock:
                    self._a()

            def _a(self):
                self._b()

            def _b(self):
                time.sleep(0.1)
    """})
    assert len(result.findings) == 1
    assert "Deep._a -> Deep._b" in result.findings[0].message


def test_direct_blocking_left_to_per_scope_rule(lint_tree):
    # `with lock: time.sleep(...)` is blocking-under-lock's finding; the
    # transitive rule must not double-report the same line.
    result = lint_tree({"core/direct.py": """
        import time


        class Direct:
            def flush(self):
                with self._lock:
                    time.sleep(0.1)
    """})
    assert result.ok
    both = lint_tree({"core/direct.py": """
        import time


        class Direct:
            def flush(self):
                with self._lock:
                    time.sleep(0.1)
    """}, rules=("blocking-under-lock", RULE))
    assert [f.rule for f in both.findings] == ["blocking-under-lock"]


def test_cross_module_chain(lint_tree):
    result = lint_tree({
        "core/caller.py": """
            from core.wire import push


            class Router:
                def publish(self, payload):
                    with self._lock:
                        push(payload)
        """,
        "core/wire.py": """
            def push(payload):
                _transmit(payload)


            def _transmit(payload):
                print("sending", payload)
        """,
    })
    assert [f.rule for f in result.findings] == [RULE]
    finding = result.findings[0]
    assert finding.path.endswith("core/caller.py")
    assert "push -> _transmit" in finding.message
    assert "core/wire.py" in finding.message


def test_diamond_converges_to_one_finding_per_site(lint_tree):
    # a -> b -> d and a -> c -> d: two call sites under the lock, each
    # reporting one shortest path — the diamond must not multiply
    # findings beyond the lock-held call sites.
    result = lint_tree({"core/diamond.py": """
        import time


        class Diamond:
            def flush(self):
                with self._lock:
                    self._b()
                    self._c()

            def _b(self):
                self._d()

            def _c(self):
                self._d()

            def _d(self):
                time.sleep(0.1)
    """})
    assert [f.rule for f in result.findings] == [RULE, RULE]
    assert {f.line for f in result.findings} == {8, 9}


def test_recursive_chain_terminates_and_reports(lint_tree):
    result = lint_tree({"core/recur.py": """
        import time


        class Recur:
            def flush(self):
                with self._lock:
                    self._spin(3)

            def _spin(self, n):
                if n:
                    self._spin(n - 1)
                time.sleep(0.1)
    """})
    assert [f.rule for f in result.findings] == [RULE]


def test_pure_cycle_without_sink_is_clean(lint_tree):
    result = lint_tree({"core/cycle.py": """
        class Cycle:
            def flush(self):
                with self._lock:
                    self._ping()

            def _ping(self):
                self._pong()

            def _pong(self):
                self._ping()
    """})
    assert result.ok


def test_chain_beyond_depth_bound_not_reported(lint_tree):
    hops = MAX_CALL_DEPTH + 2
    body = ["import time", "", "", "class Long:",
            "    def flush(self):",
            "        with self._lock:",
            "            self._hop0()"]
    for i in range(hops):
        body += [f"    def _hop{i}(self):",
                 f"        self._hop{i + 1}()"]
    body += [f"    def _hop{hops}(self):",
             "        time.sleep(0.1)"]
    result = lint_tree({"core/long.py": "\n".join(body) + "\n"})
    assert result.ok


def test_locked_suffix_method_body_counts_as_held(lint_tree):
    result = lint_tree({"core/suffix.py": """
        import time


        class Shard:
            def _sweep_unlocked(self):
                self._evict()

            def _evict(self):
                time.sleep(0.1)
    """})
    assert [f.rule for f in result.findings] == [RULE]
    assert "runs with its caller's lock held" in result.findings[0].message


def test_pragmad_sink_does_not_poison_chains(lint_tree):
    # The sink line carries a reviewed blocking-under-lock pragma (e.g.
    # a send on a socket known to be non-blocking): chains reaching it
    # are not flagged transitively either.
    result = lint_tree({"core/wake.py": """
        class Waker:
            def notify(self):
                with self._lock:
                    self._wake()

            def _wake(self):
                # non-blocking socketpair: full pipe raises, never stalls
                self.sock.send(b"0")  # janus-lint: disable=blocking-under-lock
    """})
    assert result.ok


def test_pragma_on_call_site_suppresses(lint_tree):
    result = lint_tree({"core/site.py": """
        import time


        class Site:
            def flush(self):
                with self._lock:
                    # shutdown path only, lock uncontended by then
                    self._drain()  # janus-lint: disable=transitive-blocking-under-lock

            def _drain(self):
                time.sleep(0.05)
    """})
    assert result.ok


def test_out_of_scope_caller_not_reported(lint_tree):
    result = lint_tree({"bench/driver.py": """
        import time


        class Driver:
            def run(self):
                with self._lock:
                    self._work()

            def _work(self):
                time.sleep(0.1)
    """})
    assert result.ok
