"""Tests for the multiplexed UDP channel (router side of the v2 wire path).

Covers the :class:`~repro.runtime.udp_channel.TimerWheel` in isolation
(including the full-revolution scheduling regression and live-deadline
``peek``), then drives :class:`~repro.runtime.udp_channel.ChannelSet`
against a real :class:`~repro.runtime.udp_server.QoSServerDaemon` on
loopback: single exchanges, batched frames, concurrency, protocol-v1
fallback, dead-backend retry/default-reply semantics, and shutdown.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import RouterConfig, ServerConfig
from repro.core.protocol import (
    LeaseGrant,
    LeaseRevoke,
    encode_lease_grant_frame,
    encode_lease_revoke_frame,
)
from repro.core.rules import QoSRule
from repro.runtime.udp_channel import ChannelSet, TimerWheel
from repro.runtime.udp_server import QoSServerDaemon


class TestTimerWheel:
    def test_schedule_and_expire(self):
        wheel = TimerWheel(tick=0.01)
        wheel.schedule(100.0, "a")
        wheel.schedule(100.005, "b")
        wheel.schedule(100.5, "later")
        assert len(wheel) == 3
        assert wheel.advance(99.99) == []
        expired = wheel.advance(100.02)
        assert sorted(expired) == ["a", "b"]
        assert wheel.advance(100.6) == ["later"]
        assert len(wheel) == 0

    def test_deadline_on_tick_boundary_not_delayed_a_revolution(self):
        # Regression: an entry bucketed at floor(deadline/tick) used to be
        # examined one sweep *before* its deadline, survive, and then wait
        # a full wheel revolution.
        tick, slots = 0.01, 64
        wheel = TimerWheel(tick=tick, slots=slots)
        deadline = 200.0           # exactly on a tick boundary
        wheel.schedule(deadline, "edge")
        now = deadline - tick / 2
        assert wheel.advance(now) == []
        # It must fire within a couple of ticks, not a revolution later.
        assert wheel.advance(deadline + 2 * tick) == ["edge"]

    def test_advance_is_incremental(self):
        wheel = TimerWheel(tick=0.01)
        wheel.schedule(50.0, "x")
        assert wheel.advance(49.0) == []
        assert wheel.advance(49.5) == []
        assert wheel.advance(50.01) == ["x"]

    def test_peek_returns_earliest(self):
        wheel = TimerWheel(tick=0.01)
        assert wheel.peek() is None
        wheel.schedule(300.5, "late")
        wheel.schedule(300.05, "early")
        wheel.advance(300.0)       # position the cursor
        assert wheel.peek() == pytest.approx(300.05)

    def test_peek_prunes_dead_entries(self):
        dead = {"corpse"}
        wheel = TimerWheel(tick=0.01, is_dead=lambda item: item in dead)
        wheel.advance(400.0)
        wheel.schedule(400.05, "corpse")
        wheel.schedule(400.5, "alive")
        assert wheel.peek() == pytest.approx(400.5)
        assert len(wheel) == 1     # the dead entry was pruned outright

    def test_bad_tick_rejected(self):
        with pytest.raises(ValueError):
            TimerWheel(tick=0.0)


@pytest.fixture
def rules():
    return InMemoryRuleSource({
        "alice": QoSRule("alice", refill_rate=1e6, capacity=1e9),
        "empty": QoSRule("empty", refill_rate=0.0, capacity=0.0),
    })


@pytest.fixture
def server(rules):
    with QoSServerDaemon(rules, config=ServerConfig(workers=2)) as daemon:
        yield daemon


def make_channels(server, **overrides) -> ChannelSet:
    defaults = dict(udp_timeout=0.5, max_retries=2, wire_mode="channel")
    defaults.update(overrides)
    return ChannelSet([server.address],
                      config=RouterConfig(**defaults)).start()


class TestExchange:
    def test_single_exchange(self, server):
        channels = make_channels(server)
        try:
            response, attempts = channels.exchange(server.address, "alice")
            assert response.allowed
            assert not response.is_default_reply
            assert attempts == 1
        finally:
            channels.stop()

    def test_deny_travels_back(self, server):
        channels = make_channels(server)
        try:
            response, _ = channels.exchange(server.address, "empty")
            assert not response.allowed
            assert not response.is_default_reply
        finally:
            channels.stop()

    def test_exchange_many_one_call(self, server):
        channels = make_channels(server, batch_size=64)
        try:
            checks = [(server.address, "alice", 1.0) for _ in range(40)]
            checks[7] = (server.address, "empty", 1.0)
            results = channels.exchange_many(checks)
            assert len(results) == 40
            for i, (response, attempts) in enumerate(results):
                assert response.allowed == (i != 7)
                assert attempts == 1
            stats = channels.stats
            assert stats.messages_sent == 40
            # Batching really happened: far fewer frames than messages.
            assert stats.frames_sent < 40
        finally:
            channels.stop()

    def test_exchange_many_empty(self, server):
        channels = make_channels(server)
        try:
            assert channels.exchange_many([]) == []
        finally:
            channels.stop()

    def test_concurrent_submitters(self, server):
        channels = make_channels(server, batch_size=32)
        errors: list = []
        try:
            def worker():
                try:
                    for _ in range(50):
                        response, _ = channels.exchange(
                            server.address, "alice")
                        assert response.allowed
                except Exception as exc:          # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert errors == []
            assert channels.stats.responses_matched == 400
        finally:
            channels.stop()

    def test_v1_wire_protocol_mode(self, server):
        # wire_protocol=1: the channel multiplexes but sends one v1
        # datagram per request — interop with pre-v2 servers.
        channels = make_channels(server, wire_protocol=1, batch_size=64)
        try:
            results = channels.exchange_many(
                [(server.address, "alice", 1.0) for _ in range(10)])
            assert all(r.allowed for r, _ in results)
            stats = channels.stats
            assert stats.frames_sent == stats.messages_sent == 10
        finally:
            channels.stop()

    def test_needs_a_backend(self):
        with pytest.raises(ValueError):
            ChannelSet([], config=RouterConfig(udp_timeout=0.1))


class TestFailureSemantics:
    def _dead_address(self):
        # Bind-then-close guarantees a port with no listener.
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        address = probe.getsockname()
        probe.close()
        return address

    def test_dead_backend_default_reply_after_retries(self):
        address = self._dead_address()
        config = RouterConfig(udp_timeout=0.05, max_retries=2,
                              default_reply=True, wire_mode="channel")
        channels = ChannelSet([address], config=config).start()
        try:
            t0 = time.monotonic()
            response, attempts = channels.exchange(address, "alice")
            elapsed = time.monotonic() - t0
            assert response.is_default_reply
            assert response.allowed          # fail-open default
            # Seed parity: max_retries counts total send attempts, and
            # the default reply arrives after roughly
            # max_retries * udp_timeout — not instantly, and not after
            # the whole wait budget.
            assert attempts == config.max_retries
            assert elapsed < 2.0
            assert channels.stats.retries == config.max_retries - 1
            assert channels.stats.default_replies == 1
        finally:
            channels.stop()

    def test_default_reply_fail_closed(self):
        address = self._dead_address()
        config = RouterConfig(udp_timeout=0.05, max_retries=1,
                              default_reply=False, wire_mode="channel")
        channels = ChannelSet([address], config=config).start()
        try:
            response, _ = channels.exchange(address, "alice")
            assert response.is_default_reply
            assert not response.allowed
        finally:
            channels.stop()

    def test_stop_unblocks_and_later_calls_get_defaults(self, server):
        channels = make_channels(server)
        channels.stop()
        response, _ = channels.exchange(server.address, "alice")
        assert response.is_default_reply

    def test_stop_is_idempotent(self, server):
        channels = make_channels(server)
        channels.stop()
        channels.stop()


class TestStats:
    def test_counters_coherent(self, server):
        channels = make_channels(server, batch_size=16)
        try:
            channels.exchange_many(
                [(server.address, "alice", 1.0) for _ in range(32)])
            stats = channels.stats
            assert stats.messages_sent == 32
            assert stats.responses_matched == 32
            assert stats.frames_received >= 1
            assert stats.malformed_datagrams == 0
            d = stats.as_dict()
            assert d["messages_sent"] == 32
        finally:
            channels.stop()


class TestLeaseFrameInterop:
    """Lease frames at a channel with no lease plane wired (v1-era router).

    A pre-lease router never *sends* LEASE_REQ, but a lease-capable
    server it shares a fleet with may still aim stray LEASE_GRANT /
    LEASE_REVOKE datagrams at it (e.g. a stale holder address after a
    router restart reused the port).  With no ``lease_listener`` those
    frames must count as malformed and change nothing else.
    """

    def _inject_and_exchange(self, server, channels, payload):
        """Queue ``payload`` at the channel's socket, then exchange."""
        channel = next(iter(channels._channels.values()))
        local = channel.sock.getsockname()
        # The channel socket is connected to the server, so the frame
        # must come from the server's own port to pass the kernel filter.
        server.reply_sock.sendto(payload, local)
        deadline = time.monotonic() + 2.0
        while time.monotonic() < deadline:
            response, _ = channels.exchange(server.address, "alice")
            assert response.allowed and not response.is_default_reply
            if channels.stats.malformed_datagrams >= 1:
                return
            time.sleep(0.01)
        pytest.fail("injected lease frame never drained")

    def test_grant_frame_ignored_cleanly(self, server):
        channels = make_channels(server)
        try:
            assert channels.lease_listener is None
            self._inject_and_exchange(server, channels,
                                      encode_lease_grant_frame([LeaseGrant(
                                          request_id=1, key="alice",
                                          lease_id=9, credits=50.0,
                                          ttl_ms=1_000)]))
            assert channels.stats.malformed_datagrams == 1
        finally:
            channels.stop()

    def test_revoke_frame_ignored_cleanly(self, server):
        channels = make_channels(server)
        try:
            self._inject_and_exchange(server, channels,
                                      encode_lease_revoke_frame(
                                          [LeaseRevoke(lease_id=9,
                                                       key="alice")]))
            assert channels.stats.malformed_datagrams == 1
        finally:
            channels.stop()


class TestBackendMutation:
    """add_backend/replace_backend: live partition-map surgery."""

    def test_add_backend_joins_live_set(self, rules, server):
        channels = make_channels(server)
        try:
            with QoSServerDaemon(rules,
                                 config=ServerConfig(workers=2)) as extra:
                channels.add_backend(extra.address)
                response, _ = channels.exchange(extra.address, "alice", 1.0)
                assert response.allowed
                assert not response.is_default_reply
        finally:
            channels.stop()

    def test_replace_backend_swaps_address(self, rules, server):
        channels = make_channels(server)
        try:
            response, _ = channels.exchange(server.address, "alice", 1.0)
            assert response.allowed
            with QoSServerDaemon(rules,
                                 config=ServerConfig(workers=2)) as successor:
                assert channels.replace_backend(server.address,
                                                successor.address)
                # The old address is gone, the new one answers for real.
                response, _ = channels.exchange(successor.address,
                                                "alice", 1.0)
                assert response.allowed
                assert not response.is_default_reply
        finally:
            channels.stop()

    def test_replace_unknown_backend_is_noop(self, server):
        channels = make_channels(server)
        try:
            assert not channels.replace_backend(("127.0.0.1", 1),
                                                ("127.0.0.1", 2))
            # The original backend still works.
            response, _ = channels.exchange(server.address, "alice", 1.0)
            assert response.allowed
        finally:
            channels.stop()

    def _black_hole(self):
        """A bound UDP port that swallows datagrams and never replies."""
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        return sock

    def _pending_exchanges(self, channels, target, n):
        """Fire ``n`` exchanges at ``target`` from threads; return them."""
        results: list = []
        barrier = threading.Barrier(n + 1)

        def call() -> None:
            barrier.wait()
            results.append(channels.exchange(target, "alice", 1.0))

        threads = [threading.Thread(target=call, daemon=True)
                   for _ in range(n)]
        for t in threads:
            t.start()
        barrier.wait()
        return threads, results

    def test_replace_backend_resolves_every_outstanding_request(
            self, rules, server):
        """In-flight exchanges toward the replaced address all resolve.

        The reshard cutover swaps addresses while requests are pending;
        a stranded future would hang a router worker forever.  Pending
        calls must resolve through their armed timers as default
        replies — never block, never raise.
        """
        hole = self._black_hole()
        dead = hole.getsockname()
        try:
            channels = make_channels(server, udp_timeout=0.3, max_retries=1)
            channels.add_backend(dead)
            try:
                threads, results = self._pending_exchanges(channels, dead, 4)
                time.sleep(0.05)   # let the exchanges reach the wire
                assert channels.replace_backend(dead, server.address)
                for t in threads:
                    t.join(timeout=5.0)
                assert not any(t.is_alive() for t in threads)
                assert len(results) == 4
                for response, retries in results:
                    assert response.is_default_reply
                # New submissions ride the replacement channel for real.
                response, _ = channels.exchange(server.address, "alice", 1.0)
                assert response.allowed and not response.is_default_reply
            finally:
                channels.stop()
        finally:
            hole.close()

    def test_retire_backend_resolves_every_outstanding_request(
            self, rules, server):
        hole = self._black_hole()
        dead = hole.getsockname()
        try:
            channels = make_channels(server, udp_timeout=0.3, max_retries=1)
            channels.add_backend(dead)
            try:
                threads, results = self._pending_exchanges(channels, dead, 4)
                time.sleep(0.05)
                assert channels.retire_backend(dead)
                for t in threads:
                    t.join(timeout=5.0)
                assert not any(t.is_alive() for t in threads)
                assert len(results) == 4
                assert all(r.is_default_reply for r, _ in results)
                # The survivor still answers.
                response, _ = channels.exchange(server.address, "alice", 1.0)
                assert response.allowed and not response.is_default_reply
            finally:
                channels.stop()
        finally:
            hole.close()

    def test_retire_never_drops_the_last_backend(self, server):
        channels = make_channels(server)
        try:
            assert not channels.retire_backend(server.address)
            response, _ = channels.exchange(server.address, "alice", 1.0)
            assert response.allowed
        finally:
            channels.stop()
