"""Tests for the simulated client drivers."""

from __future__ import annotations

import itertools

import pytest

from repro.core.config import ClusterTopology, JanusConfig
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.arrival import PoissonArrivals
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient, OpenLoopDriver


@pytest.fixture
def cluster():
    c = SimJanusCluster(JanusConfig(topology=ClusterTopology(
        n_routers=2, n_qos_servers=2)))
    keys = uuid_keys(40)
    for k in keys:
        c.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
    c.prewarm()
    return c, keys


class TestClosedLoop:
    def test_completes_requested_count(self, cluster):
        c, keys = cluster
        client = ClosedLoopClient(c, "c0", KeyCycle(keys), mode="gateway",
                                  n_requests=25)
        c.sim.run(until=2.0)
        assert client.done
        assert len(client.log) == 25

    def test_think_time_slows_rate(self, cluster):
        c, keys = cluster
        fast = ClosedLoopClient(c, "fast", KeyCycle(keys), n_requests=20)
        slow = ClosedLoopClient(c, "slow", KeyCycle(keys), n_requests=20,
                                think_time=0.05)
        c.sim.run(until=2.0)
        assert fast.done and slow.done
        fast_span = max(r.finished_at for r in fast.log.records)
        slow_span = max(r.finished_at for r in slow.log.records)
        assert slow_span > 5 * fast_span

    def test_dns_mode_pins_router_within_ttl(self, cluster):
        """The §V-A skew: one client, one router within a TTL window."""
        c, keys = cluster
        ClosedLoopClient(c, "c0", KeyCycle(keys), mode="dns", n_requests=60)
        c.sim.run(until=2.0)      # well inside the 30 s TTL
        handled = [r.requests_handled for r in c.routers]
        assert sorted(handled) == [0, 60]

    def test_gateway_mode_spreads_routers(self, cluster):
        c, keys = cluster
        ClosedLoopClient(c, "c0", KeyCycle(keys), mode="gateway",
                         n_requests=60)
        c.sim.run(until=2.0)
        handled = [r.requests_handled for r in c.routers]
        assert handled == [30, 30]


class TestOpenLoop:
    def test_rate_honored(self, cluster):
        c, keys = cluster
        driver = OpenLoopDriver(
            c, "d0", KeyCycle(keys),
            PoissonArrivals(200.0, seed=1).gaps(),
            mode="gateway", duration=2.0)
        c.sim.run(until=3.0)
        assert len(driver.log) == pytest.approx(400, rel=0.2)
        assert driver.in_flight == 0

    def test_invalid_duration(self, cluster):
        c, keys = cluster
        with pytest.raises(ConfigurationError):
            OpenLoopDriver(c, "d0", KeyCycle(keys),
                           iter([0.1]), duration=0.0)

    def test_dns_mode_requires_no_explicit_resolver(self, cluster):
        c, keys = cluster
        driver = OpenLoopDriver(
            c, "d0", KeyCycle(keys), itertools.repeat(0.01),
            mode="dns", duration=0.3)
        c.sim.run(until=1.0)
        assert len(driver.log) > 10
