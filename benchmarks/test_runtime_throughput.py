"""Bench: the real-socket runtime's throughput and latency on localhost.

Not a paper figure — the paper's numbers come from a 15-node EC2 fleet —
but the measurement that matters for anyone deploying *this* Python
implementation: end-to-end decisions/second through LB -> router -> UDP
server on one machine, and the per-check latency profile.
"""

from __future__ import annotations

import pytest

from repro.core.rules import QoSRule
from repro.metrics.report import format_kv
from repro.runtime.cluster import LocalCluster
from repro.workload.ab import run_ab
from repro.workload.keygen import uuid_keys


@pytest.fixture(scope="module")
def cluster():
    with LocalCluster(n_routers=2, n_qos_servers=2) as c:
        for k in uuid_keys(256, seed=5):
            c.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
        yield c


def test_real_socket_throughput(benchmark, cluster, report_sink):
    keys = uuid_keys(256, seed=5)

    def drive():
        return run_ab(cluster.endpoint,
                      lambda w, i: keys[(w * 131 + i) % len(keys)],
                      n_requests=600, concurrency=6)

    result = benchmark.pedantic(drive, rounds=2, iterations=1)
    summary = result.latency.as_milliseconds()
    report_sink(format_kv({
        "throughput (rps)": round(result.throughput),
        "allowed": result.allowed,
        "default replies": result.default_replies,
        "p50 (ms)": round(summary["p50_ms"], 2),
        "p90 (ms)": round(summary["p90_ms"], 2),
        "p99 (ms)": round(summary["p99_ms"], 2),
    }, title="Real-socket LocalCluster (2 routers + 2 QoS servers, "
             "loopback):"))
    assert result.allowed == 600
    assert result.default_replies == 0
    assert result.throughput > 100          # very conservative floor
    assert summary["p90_ms"] < 100.0


def test_single_check_latency(benchmark, cluster):
    client = cluster.client()
    client.check("warmup-key")      # establish the keep-alive connection

    keys = uuid_keys(256, seed=5)
    index = {"i": 0}

    def one_check():
        index["i"] = (index["i"] + 1) % len(keys)
        return client.check(keys[index["i"]])

    allowed = benchmark(one_check)
    assert allowed
