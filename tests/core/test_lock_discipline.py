"""Lock-acquisition discipline of the fused admission hot path.

The ISSUE-1 acceptance criterion: :meth:`AdmissionController.check`
acquires exactly **one** lock per decision on the hit path, and the miss
path no longer nests any lock acquisition inside the shard lock (the seed
nested the bucket lock and a global stats lock there).  These tests
instrument every lock the controller and its buckets can touch and count
real acquisitions.

Both table backends are covered: the object store (dict of LeakyBucket)
and the columnar slab store, which must honour the same discipline — plus
the frame-at-a-time batch path, which owes exactly one shard-lock
acquisition per distinct shard per frame.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.admission import AdmissionController
from repro.core.clock import ManualClock
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule

# Captured before any monkeypatching so instrumented locks can build on
# the real primitive.
_REAL_LOCK = threading.Lock

BACKENDS = ["object", "slab"]


class CountingLock:
    """A ``threading.Lock`` lookalike that records acquire/release events."""

    def __init__(self, events: list, label: str):
        self._inner = _REAL_LOCK()
        self._events = events
        self._label = label

    def acquire(self, *args, **kwargs):
        self._events.append(("acquire", self._label))
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        self._events.append(("release", self._label))
        self._inner.release()

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class UnlockedRuleSource:
    """A rule source with no lock of its own, so every counted acquisition
    in these tests belongs to the controller or a bucket."""

    def __init__(self, rules):
        self._rules = dict(rules)

    def get_rule(self, key):
        return self._rules.get(key)

    def get_rules(self, keys):
        return {k: self._rules[k] for k in keys if k in self._rules}

    def checkpoint(self, credits):
        pass


def instrument(controller: AdmissionController, events: list) -> None:
    """Wrap every lock the controller owns (and its buckets' locks)."""
    controller._locks = [CountingLock(events, f"shard{i}")
                         for i in range(len(controller._locks))]
    for stripe in controller._stripes:
        stripe.lock = CountingLock(events, "stripe")
    controller._control_lock = CountingLock(events, "control")
    n_stripes = len(controller._stripes)
    controller._shard_state = [
        (controller._locks[i], controller._shards[i],
         controller._stripes[i % n_stripes])
        for i in range(len(controller._shards))]
    if hasattr(controller, "_slab_state"):
        controller._slab_state = [
            (controller._locks[i], controller._slabs[i],
             controller._stripes[i % n_stripes])
            for i in range(len(controller._slabs))]
        controller._slab_frame_state = [
            (lock, slab, slab.consume_frame_unlocked, stripe)
            for lock, slab, stripe in controller._slab_state]
        controller._plans._lock = CountingLock(events, "plan")
    for table in controller._shards:
        for bucket in table.values():
            bucket._lock = CountingLock(events, "bucket")


def acquires(events: list) -> list:
    return [label for op, label in events if op == "acquire"]


def max_nesting(events: list) -> int:
    depth = peak = 0
    for op, _ in events:
        depth += 1 if op == "acquire" else -1
        peak = max(peak, depth)
    return peak


def make_controller(backend: str = "object",
                    **config_kwargs) -> AdmissionController:
    source = UnlockedRuleSource(
        {f"k{i}": QoSRule(f"k{i}", refill_rate=100.0, capacity=100.0)
         for i in range(16)})
    return AdmissionController(
        source, AdmissionConfig(table_backend=backend, **config_kwargs),
        clock=ManualClock())


@pytest.mark.parametrize("backend", BACKENDS)
class TestFusedHitPath:
    @pytest.mark.parametrize("lock_shards", [1, 8])
    def test_exactly_one_lock_per_decision(self, backend, lock_shards):
        controller = make_controller(backend, lock_shards=lock_shards)
        for i in range(16):
            controller.check(f"k{i}")       # warm: all keys materialized
        events: list = []
        instrument(controller, events)
        for i in range(16):
            assert controller.check(f"k{i}")
        labels = acquires(events)
        assert len(labels) == 16, (
            f"expected 1 lock acquisition per decision, saw {labels}")
        assert all(label.startswith("shard") for label in labels)
        assert max_nesting(events) == 1

    def test_weighted_cost_also_single_lock(self, backend):
        controller = make_controller(backend, lock_shards=4)
        controller.check("k0")
        events: list = []
        instrument(controller, events)
        controller.check("k0", cost=7.5)
        assert len(acquires(events)) == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestMissPath:
    def test_miss_path_no_nested_acquisition(self, backend, monkeypatch):
        """The lazy-materialization path holds only the shard lock.

        ``threading.Lock`` is patched globally so even the freshly created
        bucket's internal lock would be counted if the fused path touched
        it; the old code acquired both the bucket lock and a global stats
        lock while holding the shard lock.  ``k0`` is warmed first so the
        slab backend has interned the shared plan — a miss for a key on an
        already-seen plan never touches the plan-table lock.
        """
        controller = make_controller(backend, lock_shards=4)
        controller.check("k0")              # interns the (100, 100) plan
        events: list = []
        instrument(controller, events)
        monkeypatch.setattr(threading, "Lock",
                            lambda: CountingLock(events, "fresh"))
        assert controller.check("k7")       # first sighting: miss path
        labels = acquires(events)
        assert labels == ["shard" + labels[0][5:]], (
            f"miss path acquired {labels}, expected only its shard lock")
        assert max_nesting(events) == 1

    def test_unknown_key_miss_path_single_lock(self, backend, monkeypatch):
        controller = make_controller(backend, lock_shards=4)
        controller.check("warm-unknown")    # interns the default-rule plan
        events: list = []
        instrument(controller, events)
        monkeypatch.setattr(threading, "Lock",
                            lambda: CountingLock(events, "fresh"))
        controller.check("never-seen")      # default-rule fallback
        assert len(acquires(events)) == 1
        assert max_nesting(events) == 1


@pytest.mark.parametrize("backend", BACKENDS)
class TestSharedStripes:
    def test_striped_mode_two_flat_acquisitions(self, backend):
        """``stats_stripes < lock_shards``: shard lock then stripe lock,
        strictly sequential, never nested."""
        controller = make_controller(backend, lock_shards=8, stats_stripes=2)
        for i in range(16):
            controller.check(f"k{i}")
        events: list = []
        instrument(controller, events)
        controller.check("k3")
        labels = acquires(events)
        assert len(labels) == 2
        assert labels[0].startswith("shard")
        assert labels[1] == "stripe"
        assert max_nesting(events) == 1     # released before the next

    def test_striped_mode_counters_still_exact(self, backend):
        controller = make_controller(backend, lock_shards=8, stats_stripes=2)
        for i in range(16):
            controller.check(f"k{i}")
            controller.check(f"k{i}")
        stats = controller.stats
        assert stats.decisions == 32
        assert stats.rule_misses == 16
        assert stats.rule_hits == 16


@pytest.mark.parametrize("backend", BACKENDS)
class TestBatchPath:
    def test_one_lock_per_shard_per_frame(self, backend):
        """``check_batch`` owes one shard-lock take per distinct shard per
        frame — that is the whole point of the frame-at-a-time path."""
        controller = make_controller(backend, lock_shards=4)
        keys = [f"k{i}" for i in range(16)]
        for key in keys:
            controller.check(key)           # warm: all keys materialized
        distinct_shards = {controller._shard_of(k) for k in keys}
        events: list = []
        instrument(controller, events)
        verdicts = controller.check_batch(keys)
        labels = acquires(events)
        assert len(labels) == len(distinct_shards), (
            f"expected one acquisition per shard, saw {labels}")
        assert all(label.startswith("shard") for label in labels)
        assert max_nesting(events) == 1
        assert verdicts == (1 << len(keys)) - 1     # all admitted

    def test_single_shard_frame_single_lock(self, backend):
        controller = make_controller(backend, lock_shards=1)
        keys = [f"k{i}" for i in range(8)]
        for key in keys:
            controller.check(key)
        events: list = []
        instrument(controller, events)
        controller.check_batch(keys)
        assert acquires(events) == ["shard0"]


class TestSlabPlanInterning:
    def test_first_plan_sighting_nests_plan_lock_once(self):
        """The slab's one sanctioned nesting: shard lock → plan-table lock,
        taken only when a (capacity, rate) pair is seen for the first
        time.  Every later miss on the same plan is plan-lock free."""
        controller = make_controller("slab", lock_shards=4)
        events: list = []
        instrument(controller, events)
        controller.check("k1")              # plan (100, 100) first sighting
        assert acquires(events).count("plan") == 1
        assert max_nesting(events) == 2
        events.clear()
        controller.check("k2")              # same plan: dict hit, no lock
        assert "plan" not in acquires(events)
        assert max_nesting(events) == 1


class TestSeedPathContrast:
    def test_seed_path_acquired_three_locks(self):
        """The comparison baseline really does pay 3 acquisitions —
        documents what the fusion removed."""
        from repro.metrics.hotpath import SeedPathController

        source = UnlockedRuleSource(
            {"k": QoSRule("k", refill_rate=100.0, capacity=100.0)})
        controller = SeedPathController(
            source, AdmissionConfig(lock_shards=4), clock=ManualClock())
        controller.check("k")
        events: list = []
        instrument(controller, events)
        controller._seed_stats_lock = CountingLock(events, "stats")
        controller.check("k")
        labels = acquires(events)
        assert len(labels) == 3
        assert labels[0].startswith("shard")
        assert labels[1] == "bucket"        # nested inside the shard lock
        assert labels[2] == "stats"
        assert max_nesting(events) == 2
