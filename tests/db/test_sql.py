"""Tests for the SQL tokenizer and parser."""

from __future__ import annotations

import pytest

from repro.core.errors import SQLError
from repro.db import sql
from repro.db.sql import (
    BooleanOp,
    ColumnRef,
    CreateTable,
    Delete,
    InList,
    Insert,
    IsNull,
    Literal,
    NotOp,
    Parameter,
    Select,
    Update,
    parse,
    tokenize,
)


class TestTokenizer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT * FROM t WHERE a = 1")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "PUNCT", "KEYWORD", "IDENT", "KEYWORD",
                         "IDENT", "OP", "NUMBER", "EOF"]

    def test_string_literal_with_escaped_quote(self):
        tokens = tokenize("SELECT * FROM t WHERE a = 'it''s'")
        strings = [t for t in tokens if t.kind == "STRING"]
        assert strings[0].value == "it's"

    def test_numbers(self):
        tokens = tokenize("1 2.5 .5 1e3 2.5E-2")
        values = [t.value for t in tokens if t.kind == "NUMBER"]
        assert values == [1, 2.5, 0.5, 1000.0, 0.025]
        assert isinstance(values[0], int)

    def test_keywords_case_insensitive(self):
        tokens = tokenize("select * from t")
        assert tokens[0].value == "SELECT"

    def test_alternative_not_equal(self):
        tokens = tokenize("a <> b")
        assert tokens[1].value == "!="

    def test_bad_character(self):
        with pytest.raises(SQLError):
            tokenize("SELECT @ FROM t")


class TestParseCreate:
    def test_create_table(self):
        stmt, n = parse("CREATE TABLE t (k TEXT PRIMARY KEY, v REAL NOT NULL, n INTEGER)")
        assert isinstance(stmt, CreateTable)
        assert n == 0
        assert stmt.columns[0].primary_key
        assert stmt.columns[0].not_null          # PK implies NOT NULL
        assert stmt.columns[1].not_null
        assert not stmt.columns[2].not_null

    def test_if_not_exists(self):
        stmt, _ = parse("CREATE TABLE IF NOT EXISTS t (a TEXT)")
        assert stmt.if_not_exists

    def test_two_primary_keys_rejected(self):
        with pytest.raises(SQLError):
            parse("CREATE TABLE t (a TEXT PRIMARY KEY, b TEXT PRIMARY KEY)")

    def test_drop_table(self):
        stmt, _ = parse("DROP TABLE IF EXISTS t")
        assert stmt.if_exists


class TestParseInsert:
    def test_insert_with_params(self):
        stmt, n = parse("INSERT INTO t (a, b) VALUES (?, ?)")
        assert isinstance(stmt, Insert)
        assert n == 2
        assert stmt.values == (Parameter(0), Parameter(1))

    def test_insert_literals(self):
        stmt, _ = parse("INSERT INTO t (a, b, c) VALUES ('x', 2.5, NULL)")
        assert stmt.values == (Literal("x"), Literal(2.5), Literal(None))

    def test_count_mismatch(self):
        with pytest.raises(SQLError):
            parse("INSERT INTO t (a, b) VALUES (1)")


class TestParseSelect:
    def test_select_star(self):
        stmt, _ = parse("SELECT * FROM qos_rules")
        assert isinstance(stmt, Select)
        assert stmt.columns is None

    def test_select_columns_where(self):
        stmt, n = parse("SELECT a, b FROM t WHERE a = ? AND b > 3")
        assert stmt.columns == ("a", "b")
        assert isinstance(stmt.where, BooleanOp)
        assert n == 1

    def test_order_limit(self):
        stmt, _ = parse("SELECT * FROM t ORDER BY ts DESC LIMIT 20")
        assert stmt.order_by == "ts"
        assert stmt.descending
        assert stmt.limit == 20

    def test_count_star(self):
        stmt, _ = parse("SELECT COUNT(*) FROM t")
        assert stmt.count

    def test_in_list(self):
        stmt, n = parse("SELECT * FROM t WHERE a IN (1, 2, ?)")
        assert isinstance(stmt.where, InList)
        assert n == 1

    def test_not_in(self):
        stmt, _ = parse("SELECT * FROM t WHERE a NOT IN ('x')")
        assert stmt.where.negated

    def test_is_null(self):
        stmt, _ = parse("SELECT * FROM t WHERE credit IS NULL")
        assert isinstance(stmt.where, IsNull)
        stmt, _ = parse("SELECT * FROM t WHERE credit IS NOT NULL")
        assert stmt.where.negated

    def test_parentheses_and_not(self):
        stmt, _ = parse("SELECT * FROM t WHERE NOT (a = 1 OR b = 2)")
        assert isinstance(stmt.where, NotOp)
        assert isinstance(stmt.where.operand, BooleanOp)

    def test_precedence_and_binds_tighter(self):
        stmt, _ = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert isinstance(stmt.where, BooleanOp)
        assert stmt.where.op == "OR"
        assert isinstance(stmt.where.right, BooleanOp)
        assert stmt.where.right.op == "AND"

    def test_negative_limit_rejected(self):
        with pytest.raises(SQLError):
            parse("SELECT * FROM t LIMIT x")


class TestParseUpdateDelete:
    def test_update(self):
        stmt, n = parse("UPDATE t SET a = ?, b = 2 WHERE k = ?")
        assert isinstance(stmt, Update)
        assert stmt.assignments[0] == ("a", Parameter(0))
        assert n == 2

    def test_delete(self):
        stmt, _ = parse("DELETE FROM t WHERE k = 'x'")
        assert isinstance(stmt, Delete)

    def test_delete_no_where(self):
        stmt, _ = parse("DELETE FROM t")
        assert stmt.where is None


class TestParseErrors:
    @pytest.mark.parametrize("bad", [
        "SELEKT * FROM t",
        "SELECT * FORM t",
        "SELECT * FROM t WHERE",
        "INSERT INTO t VALUES (1)",
        "UPDATE t SET a 1",
        "SELECT * FROM t; SELECT * FROM u",
        "CREATE TABLE t ()",
        "SELECT * FROM t WHERE a ==",
    ])
    def test_rejected(self, bad):
        with pytest.raises(SQLError):
            parse(bad)

    def test_trailing_semicolon_ok(self):
        parse("SELECT * FROM t;")


class TestIterOperands:
    def test_walks_whole_tree(self):
        stmt, _ = parse(
            "SELECT * FROM t WHERE (a = 1 AND b IN (2, 3)) OR NOT c IS NULL")
        operands = list(sql.iter_operands(stmt.where))
        columns = {op.name for op in operands if isinstance(op, ColumnRef)}
        assert columns == {"a", "b", "c"}
