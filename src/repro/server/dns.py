"""Route53-model DNS: round-robin A records, TTL, health-check failover.

Two behaviours from the paper live here:

- **DNS load balancing** (§II-A, Fig. 1b): a domain's A record lists every
  request-router IP; each query returns the list *permuted*.  Client
  operating systems cache the answer for the record's TTL, so "QoS requests
  from the same client node always hit the same request router node within
  the TTL cycle" — the skew effect §V-A analyses (reproduced by
  :class:`Resolver` and measured in the ``ablation_dnslb_skew`` benchmark).

- **Failover records** (§III-C/D): a master/slave pair is published under
  one name that resolves to the healthy master only; failing the master
  flips the record to the slave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.clock import Clock
from repro.core.errors import ConfigurationError, RoutingError
from repro.simnet.rng import RngRegistry

__all__ = ["DnsService", "Resolver", "FailoverRecord"]


@dataclass(slots=True)
class FailoverRecord:
    """A primary/secondary pair with Route53-style health-check failover."""

    primary: str
    secondary: Optional[str] = None
    primary_healthy: bool = True

    def active(self) -> str:
        if self.primary_healthy:
            return self.primary
        if self.secondary is None:
            raise RoutingError(f"no healthy target (primary {self.primary!r} down)")
        return self.secondary


class DnsService:
    """The authoritative server: multi-value A records + failover records."""

    def __init__(self, rng: RngRegistry, default_ttl: float = 30.0):
        if default_ttl <= 0:
            raise ConfigurationError(f"default_ttl must be > 0, got {default_ttl}")
        self.default_ttl = default_ttl
        self._rng = rng.stream("dns.permute")
        self._a_records: Dict[str, List[str]] = {}
        self._ttls: Dict[str, float] = {}
        self._failover: Dict[str, FailoverRecord] = {}
        self.queries = 0

    # -- record management ---------------------------------------------------

    def register(self, name: str, addresses: List[str],
                 ttl: Optional[float] = None) -> None:
        """Create/replace a round-robin A record."""
        if not addresses:
            raise ConfigurationError(f"A record {name!r} needs at least one address")
        self._a_records[name] = list(addresses)
        self._ttls[name] = self.default_ttl if ttl is None else ttl

    def register_failover(self, name: str, primary: str,
                          secondary: Optional[str] = None,
                          ttl: Optional[float] = None) -> FailoverRecord:
        """Create a health-checked failover record; returns its handle."""
        record = FailoverRecord(primary=primary, secondary=secondary)
        self._failover[name] = record
        self._ttls[name] = self.default_ttl if ttl is None else ttl
        return record

    def set_addresses(self, name: str, addresses: List[str]) -> None:
        """Update an A record in place (e.g. router autoscaling)."""
        if name not in self._a_records:
            raise RoutingError(f"unknown A record {name!r}")
        if not addresses:
            raise ConfigurationError("cannot set an empty address list")
        self._a_records[name] = list(addresses)

    def mark_unhealthy(self, name: str) -> Optional[str]:
        """Health check failure on the primary: fail over (§III-C).

        Returns the now-active address, or ``None`` when no secondary is
        configured (subsequent queries for the name will fail until a
        replacement is promoted).
        """
        record = self._failover.get(name)
        if record is None:
            raise RoutingError(f"no failover record for {name!r}")
        record.primary_healthy = False
        return record.secondary

    def promote(self, name: str, new_primary: str,
                new_secondary: Optional[str] = None) -> None:
        """Install a new master/slave pair after recovery (§III-C)."""
        record = self._failover.get(name)
        if record is None:
            raise RoutingError(f"no failover record for {name!r}")
        record.primary = new_primary
        record.secondary = new_secondary
        record.primary_healthy = True

    # -- queries ---------------------------------------------------------------

    def query(self, name: str) -> tuple[List[str], float]:
        """Resolve ``name``; returns (addresses, ttl).

        A-record answers are freshly permuted on every query ("with each
        DNS response, the IP address sequence in the list is permuted").
        """
        self.queries += 1
        if name in self._failover:
            return [self._failover[name].active()], self._ttls[name]
        addresses = self._a_records.get(name)
        if addresses is None:
            raise RoutingError(f"NXDOMAIN: {name!r}")
        shuffled = list(addresses)
        self._rng.shuffle(shuffled)
        return shuffled, self._ttls[name]


class Resolver:
    """A client host's stub resolver with OS-level TTL caching.

    "By default most operating systems cache DNS resolution results until
    the time-to-live (TTL) property of the DNS record expires" (§V-A).
    Each client node owns one resolver; within a TTL window every
    resolution returns the *same first address*, producing the request-
    router pinning the paper observes.
    """

    def __init__(self, dns: DnsService, clock: Clock):
        self._dns = dns
        self._clock = clock
        self._cache: Dict[str, tuple[List[str], float]] = {}
        self.cache_hits = 0
        self.cache_misses = 0

    def resolve(self, name: str) -> List[str]:
        """Full (cached) address list for ``name``."""
        now = self._clock()
        cached = self._cache.get(name)
        if cached is not None and cached[1] > now:
            self.cache_hits += 1
            return cached[0]
        self.cache_misses += 1
        addresses, ttl = self._dns.query(name)
        self._cache[name] = (addresses, now + ttl)
        return addresses

    def resolve_one(self, name: str) -> str:
        """First address — what a typical client connects to (§II-A)."""
        return self.resolve(name)[0]

    def flush(self) -> None:
        self._cache.clear()
