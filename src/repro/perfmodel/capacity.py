"""Analytic capacity/latency model of a Janus deployment.

Closed-form counterpart of the discrete-event simulator, sharing the same
:class:`~repro.perfmodel.calibration.Calibration` constants.  The
scalability figures (7–12) are generated from this model at the paper's
full scale, while the simulator cross-validates selected points; the test
suite asserts the two agree.

Capacity composition: a node's throughput is its usable CPU divided by the
per-request CPU cost, clamped by any serialized sections (the QoS table
lock, the UDP listener thread, the router's accept path); a layer is the
sum of its nodes ("no communication between the QoS servers"); the system
is the minimum across layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ClusterTopology
from repro.core.errors import ConfigurationError
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.mmc import mm1_wait_time, mmc_wait_time
from repro.simnet.instances import get_instance
from repro.simnet.network import CLIENT_LINK, INTERNAL_LINK

__all__ = ["CapacityModel", "LayerEstimate", "SystemEstimate"]


@dataclass(frozen=True, slots=True)
class LayerEstimate:
    """Capacity and the binding constraint for one layer."""

    nodes: int
    node_capacity: float
    layer_capacity: float
    binding: str            # which constraint binds on a node


@dataclass(frozen=True, slots=True)
class SystemEstimate:
    """End-to-end estimate for a deployment at a given offered load."""

    capacity: float                 # sustainable requests/second
    bottleneck: str                 # "router" or "qos"
    router: LayerEstimate
    qos: LayerEstimate
    base_latency: float             # light-load round trip (mean, seconds)


class CapacityModel:
    """Closed-form throughput / utilization / latency predictions."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.calib = calibration

    # -- node / layer capacities -------------------------------------------

    def _usable_cores(self, instance_name: str) -> float:
        inst = get_instance(instance_name)
        usable = inst.vcpus - self.calib.node_background_cores
        if usable <= 0:
            raise ConfigurationError(
                f"{instance_name}: background load exceeds the core count")
        return usable

    def qos_node_capacity(self, instance_name: str) -> tuple[float, str]:
        """Sustainable decisions/second for one QoS server node."""
        c = self.calib
        cpu_cap = self._usable_cores(instance_name) / c.qos_cpu_per_request
        lock_cap = 1.0 / c.qos_cpu_serial
        listener_cap = 1.0 / c.qos_cpu_listener
        cap = min(cpu_cap, lock_cap, listener_cap)
        binding = {cpu_cap: "cpu", lock_cap: "table-lock",
                   listener_cap: "listener"}[cap]
        return cap, binding

    def rr_node_capacity(self, instance_name: str) -> tuple[float, str]:
        """Sustainable requests/second for one request-router node."""
        c = self.calib
        cpu_cap = self._usable_cores(instance_name) / c.rr_cpu_per_request
        accept_cap = 1.0 / c.rr_accept_serial
        cap = min(cpu_cap, accept_cap)
        return cap, ("cpu" if cap == cpu_cap else "accept")

    def qos_layer(self, n_nodes: int, instance_name: str) -> LayerEstimate:
        cap, binding = self.qos_node_capacity(instance_name)
        return LayerEstimate(n_nodes, cap, n_nodes * cap, binding)

    def rr_layer(self, n_nodes: int, instance_name: str) -> LayerEstimate:
        cap, binding = self.rr_node_capacity(instance_name)
        return LayerEstimate(n_nodes, cap, n_nodes * cap, binding)

    # -- system ------------------------------------------------------------

    def estimate(self, topology: ClusterTopology) -> SystemEstimate:
        router = self.rr_layer(topology.n_routers, topology.router_instance)
        qos = self.qos_layer(topology.n_qos_servers, topology.qos_instance)
        if router.layer_capacity <= qos.layer_capacity:
            capacity, bottleneck = router.layer_capacity, "router"
        else:
            capacity, bottleneck = qos.layer_capacity, "qos"
        return SystemEstimate(
            capacity=capacity, bottleneck=bottleneck, router=router, qos=qos,
            base_latency=self.base_latency(topology.load_balancer))

    # -- utilization at an operating point -----------------------------------

    def rr_cpu_utilization(self, throughput: float, n_nodes: int,
                           instance_name: str) -> float:
        """Predicted mean router-node CPU fraction (includes background)."""
        inst = get_instance(instance_name)
        busy = (throughput * self.calib.rr_cpu_per_request / n_nodes
                + self.calib.node_background_cores)
        return min(1.0, busy / inst.vcpus)

    def qos_cpu_utilization(self, throughput: float, n_nodes: int,
                            instance_name: str) -> float:
        """Predicted mean QoS-node CPU fraction (includes background)."""
        inst = get_instance(instance_name)
        busy = (throughput * self.calib.qos_cpu_per_request / n_nodes
                + self.calib.node_background_cores)
        return min(1.0, busy / inst.vcpus)

    # -- latency --------------------------------------------------------------

    def udp_leg_latency(self, qos_load: float = 0.0,
                        qos_instance: str = "c3.8xlarge",
                        n_qos: int = 1) -> float:
        """Mean router→QoS→router time at a given per-layer load."""
        c = self.calib
        per_node = qos_load / n_qos if n_qos else 0.0
        inst = get_instance(qos_instance)
        burst = c.qos_cpu_decode + c.qos_cpu_serial + c.qos_cpu_respond
        # Worker-path queueing: the node's cores process bursts + async
        # overhead; approximate with M/M/c on the aggregate CPU demand.
        queue = mmc_wait_time(per_node, c.qos_cpu_per_request, inst.vcpus) \
            if per_node > 0 else 0.0
        lock_wait = mm1_wait_time(per_node, c.qos_cpu_serial) \
            if per_node > 0 else 0.0
        return (2 * INTERNAL_LINK.mean() + c.qos_cpu_listener + burst
                + min(queue, 50e-3) + min(lock_wait, 50e-3))

    def base_latency(self, load_balancer: str = "gateway") -> float:
        """Light-load mean client round trip (the Fig. 5 quantity)."""
        c = self.calib
        client_hop = CLIENT_LINK.mean()
        rr_time = c.rr_cpu_on_path + c.rr_accept_serial + self.udp_leg_latency()
        if load_balancer == "dns":
            # connect (2 hops) + request + response
            return 4 * client_hop + rr_time
        if load_balancer == "gateway":
            internal_hop = INTERNAL_LINK.mean()
            # client->LB connect+request, LB->RR connect+forward, response
            # back through the appliance.
            return (4 * client_hop + 2 * c.lb_proc_time
                    + 4 * internal_hop + rr_time)
        raise ConfigurationError(f"unknown load balancer {load_balancer!r}")

    def gateway_penalty(self) -> float:
        """Predicted Fig. 5 gap between gateway and DNS load balancing."""
        return self.base_latency("gateway") - self.base_latency("dns")

    # -- experiment sizing ------------------------------------------------------

    def size_fleet(self, topology: ClusterTopology, *,
                   headroom: float = 1.15) -> int:
        """Closed-loop client count that saturates without collapse.

        Little's law: concurrency = capacity x latency; ``headroom``
        overshoots slightly so the bottleneck stays pinned.  This mirrors
        benchmarking practice with ``ab -c`` (and the paper's tuned client
        fleet): enough outstanding requests to reach max throughput, not so
        many that queueing blows past the UDP retry budget.
        """
        est = self.estimate(topology)
        return max(2, int(round(est.capacity * est.base_latency * headroom)))
