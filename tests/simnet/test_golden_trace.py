"""Golden-trace equivalence: optimized kernel vs the seed kernel.

The PR-2 kernel (pooled entries, float fast path, immediate queue, O(1)
cancellation) must replay the *exact* ``(time, seq, process)`` event
sequence of the seed kernel on the same workload — every scheduling path
consumes identical sequence numbers, and the immediate-queue/heap merge
preserves the seed's processing order.  ``first_of`` is deliberately
absent from the workload: its loser-detach fix (ISSUE 2 satellite)
legitimately removes dead events the seed kernel processed as no-ops.

Also locks down tombstone compaction: mass cancellation must shrink the
heap instead of pinning it until the dead entries drain.
"""

from __future__ import annotations

import pytest

from repro.metrics.simkernel import (
    SeedResource,
    SeedSimulation,
    SeedStore,
)
from repro.simnet.engine import Resource, Simulation, Store


def _mixed_workload(sim, store_cls, resource_cls):
    """The golden workload: every kernel feature except ``first_of``.

    Timeout waits (valued and bare), plain-float sleeps, Store put/get
    through both the buffered and the blocked path, Resource contention
    with FIFO handoff, interrupts landing on sleeps and on queued
    acquires, and deliberate same-timestamp ties.
    """
    store = store_cls(sim)
    cores = resource_cls(sim, capacity=2)
    log = []

    def producer(pid):
        for i in range(30):
            store.put((pid, i))
            # Tie: both producers sleep the same duration from t=0.
            yield 0.01
        log.append(("prod-done", pid, sim.now))

    def consumer(cid):
        for _ in range(20):
            item = yield store.get()
            yield sim.timeout(0.003, item)
            log.append(("consumed", cid, item, sim.now))

    def worker(wid):
        for _ in range(12):
            yield cores.acquire()
            try:
                yield 0.004 + wid * 1e-4
            finally:
                cores.release()
            yield sim.timeout(0.002)
        log.append(("worker-done", wid, sim.now))

    def sleeper(sid):
        try:
            yield 10.0
        except Exception as exc:        # Interrupt (kernel-specific class)
            log.append(("interrupted", sid, sim.now, str(exc.cause)))
            yield sim.timeout(0.001)

    def victim_waiter():
        # Interrupted while queued on the resource (orphaned-waiter path).
        try:
            yield cores.acquire()
        except Exception:
            log.append(("acquire-interrupted", sim.now))
            return
        cores.release()                  # pragma: no cover - never reached

    for pid in range(2):
        sim.spawn(producer(pid), f"prod{pid}")
    for cid in range(3):
        sim.spawn(consumer(cid), f"cons{cid}")
    for wid in range(4):
        sim.spawn(worker(wid), f"w{wid}")
    sleepers = [sim.spawn(sleeper(sid), f"sleep{sid}") for sid in range(3)]
    victim = sim.spawn(victim_waiter(), "victim")
    # Same-timestamp interrupts, scheduled identically on both kernels.
    sim.call_at(0.02, sleepers[0].interrupt, "wake0")
    sim.call_at(0.02, sleepers[1].interrupt, "wake1")
    sim.call_at(0.05, sleepers[2].interrupt, "wake2")
    sim.call_at(0.001, victim.interrupt, "dequeue")
    return store, cores, log


def _run_traced(sim_cls, store_cls, resource_cls):
    sim = sim_cls()
    sim.trace = []
    store, cores, log = _mixed_workload(sim, store_cls, resource_cls)
    sim.run()
    return sim, store, cores, log


class TestGoldenTrace:
    def test_optimized_kernel_replays_seed_trace(self):
        seed_sim, seed_store, seed_cores, seed_log = _run_traced(
            SeedSimulation, SeedStore, SeedResource)
        fast_sim, fast_store, fast_cores, fast_log = _run_traced(
            Simulation, Store, Resource)

        assert len(seed_sim.trace) > 400      # the workload is non-trivial
        assert fast_sim.trace == seed_sim.trace
        assert fast_sim.now == seed_sim.now
        assert fast_sim.events_processed == seed_sim.events_processed

    def test_model_observables_identical(self):
        _, seed_store, seed_cores, seed_log = _run_traced(
            SeedSimulation, SeedStore, SeedResource)
        _, fast_store, fast_cores, fast_log = _run_traced(
            Simulation, Store, Resource)

        assert fast_log == seed_log
        assert len(fast_store) == len(seed_store)
        assert fast_store.dropped == seed_store.dropped
        assert fast_cores.acquisitions == seed_cores.acquisitions
        assert fast_cores.waits == seed_cores.waits
        assert fast_cores.busy_time == pytest.approx(seed_cores.busy_time)

    def test_trace_is_deterministic_across_runs(self):
        a = _run_traced(Simulation, Store, Resource)[0]
        b = _run_traced(Simulation, Store, Resource)[0]
        assert a.trace == b.trace


class TestTombstoneCompaction:
    def test_mass_cancellation_shrinks_heap(self):
        sim = Simulation()

        def sleeper():
            yield 1_000.0

        procs = [sim.spawn(sleeper(), f"s{i}") for i in range(4_000)]
        sim.run(until=0.0)               # everyone is now asleep
        assert len(sim._heap) == 4_000
        for p in procs:
            p.interrupt("cancelled")
        # Compaction keeps tombstones below the configured ratio of live
        # entries instead of letting 4 000 dead sleeps pin the heap (the
        # interrupt throws are pending, cancelled sleeps mostly reclaimed).
        live = sum(1 for e in sim._heap if e[2] != 0)
        assert len(sim._heap) - live <= max(
            sim.tombstone_min,
            sim.tombstone_ratio * (live + len(sim._imm))) + 1
        assert len(sim._heap) < 1_000
        sim.run()
        assert all(p.done for p in procs)
        assert sim._tombstones == 0

    def test_compaction_ratio_configurable(self):
        sim = Simulation(tombstone_ratio=0.1, tombstone_min=8)

        def sleeper():
            yield 50.0

        procs = [sim.spawn(sleeper(), f"s{i}") for i in range(200)]
        sim.run(until=0.0)
        for p in procs[:150]:
            p.interrupt()
        live = sum(1 for e in sim._heap if e[2] != 0)
        tombstones = len(sim._heap) - live
        assert tombstones <= max(8, 0.1 * live) + 1
        sim.run()

    def test_cancelled_entries_return_to_pool(self):
        sim = Simulation()

        def sleeper():
            yield 100.0

        procs = [sim.spawn(sleeper(), f"s{i}") for i in range(500)]
        sim.run(until=0.0)
        for p in procs:
            p.interrupt()
        sim.run()
        # Pool holds the reclaimed entries for reuse; a second identical
        # wave of sleeps should allocate (almost) nothing new.
        pooled = len(sim._pool)
        assert pooled >= 500
