"""monotonic-time checker: wall clocks must not measure durations.

``time.time()`` jumps when NTP slews or steps the clock, so any duration
computed from it can be negative, zero, or wildly wrong — the classic
irreproducible-benchmark bug (the Processor-Sharing reproducibility report
in PAPERS.md traces several reported anomalies to exactly this).  Every
elapsed-time measurement in the repository must use ``time.monotonic()``
or ``time.perf_counter()`` (or the :mod:`repro.core.clock` abstraction,
which wraps them).

The rule flags **every** call to ``time.time()`` (including import
aliases and ``from time import time``).  Legitimate wall-clock *stamps* —
the ``unix_time`` field a benchmark report records so a human can tell
when the run happened — are allowlisted with an inline pragma plus a
justification::

    "unix_time": time.time(),   # janus-lint: disable=monotonic-time — report stamp, not a duration

so that every wall-clock read in the tree is either a duration bug or a
reviewed, documented stamp.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.framework import Checker, Finding, ModuleSource

__all__ = ["MonotonicTimeChecker"]


def _module_aliases(tree: ast.Module, module_name: str) -> set[str]:
    """Names the module ``module_name`` is bound to (``import x as y``)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name)
    return aliases


def _from_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    """``{local_name: original_name}`` for ``from module_name import ...``."""
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name \
                and node.level == 0:
            for alias in node.names:
                names[alias.asname or alias.name] = alias.name
    return names


class MonotonicTimeChecker(Checker):
    """Flag ``time.time()`` everywhere; stamps get a pragma."""

    rule = "monotonic-time"
    description = ("forbid time.time() — durations need time.monotonic()/"
                   "perf_counter(); wall-clock stamps take a pragma")

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        time_aliases = _module_aliases(module.tree, "time")
        # ``from time import time [as t]`` — only the ``time`` symbol.
        bare_names = {local for local, original
                      in _from_imports(module.tree, "time").items()
                      if original == "time"}
        if not time_aliases and not bare_names:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            hit = False
            if isinstance(func, ast.Attribute) and func.attr == "time" \
                    and isinstance(func.value, ast.Name) \
                    and func.value.id in time_aliases:
                hit = True
            elif isinstance(func, ast.Name) and func.id in bare_names:
                hit = True
            if hit:
                yield module.finding(
                    self.rule, node,
                    "time.time() is a wall clock — use time.monotonic() or "
                    "time.perf_counter() for durations (pragma a deliberate "
                    "wall-clock stamp)")
