"""Parallel experiment sweep executor.

The figure sweeps (figs 7–12) re-measure independent (topology x seed)
points in the DES — an embarrassingly parallel grid that the seed
pipeline walked strictly serially.  :func:`run_tasks` fans such a grid
across a :class:`concurrent.futures.ProcessPoolExecutor` while keeping
the results **deterministically ordered**: every task is keyed by its
input index and the merged output list matches what the serial loop
would have produced, element for element.  Each worker process runs its
own simulation from its own seed, so parallel results are bit-identical
to serial ones (``tests/experiments/test_parallel_sweep.py`` locks this
down against the fig8/fig11 report text).

``jobs`` resolution, lowest to highest precedence: the built-in default
of 1 (serial, the seed behavior), the ``REPRO_JOBS`` environment
variable, :func:`set_default_jobs` (the runner's ``--jobs`` flag), and
an explicit ``jobs=`` argument at the call site.

Task functions must be picklable (defined at module top level) because
workers are separate processes.  A task that raises — or a worker that
dies outright (``BrokenProcessPool``) — surfaces as a :class:`SweepError`
naming the failed point; the pool is torn down, never left hanging.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence, TypeVar

from repro.core.errors import JanusError

logger = logging.getLogger(__name__)

__all__ = ["SweepError", "run_tasks", "set_default_jobs", "current_jobs"]

T = TypeVar("T")
R = TypeVar("R")

#: Process-wide default set by ``--jobs`` (None = fall back to REPRO_JOBS).
_default_jobs: Optional[int] = None


class SweepError(JanusError):
    """A sweep point failed (worker exception or worker death)."""


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default parallelism (the runner's ``--jobs``).

    ``None`` restores the built-in resolution (``REPRO_JOBS`` env var,
    else serial).
    """
    global _default_jobs
    if jobs is not None and jobs < 1:
        raise SweepError(f"jobs must be >= 1, got {jobs}")
    _default_jobs = jobs


def current_jobs() -> int:
    """The effective default parallelism for sweeps that don't pass one."""
    if _default_jobs is not None:
        return _default_jobs
    env = os.environ.get("REPRO_JOBS", "").strip()
    if env:
        try:
            jobs = int(env)
        except ValueError:
            raise SweepError(f"REPRO_JOBS must be an integer, got {env!r}")
        if jobs < 1:
            raise SweepError(f"REPRO_JOBS must be >= 1, got {jobs}")
        return jobs
    return 1


def run_tasks(
    fn: Callable[[T], R],
    items: Sequence[T],
    *,
    jobs: Optional[int] = None,
    labels: Optional[Sequence[str]] = None,
) -> list[R]:
    """``[fn(item) for item in items]``, fanned across worker processes.

    Results come back in input order regardless of completion order.
    ``jobs=None`` resolves via :func:`current_jobs`; ``jobs<=1`` runs the
    plain serial loop in this process (no pool, no pickling).  ``labels``
    (defaulting to ``str(item)``) name points in error messages.
    """
    jobs = current_jobs() if jobs is None else jobs
    if jobs > 1 and (os.cpu_count() or 1) == 1:
        # On a single core the pool only adds pickling and process spawn
        # on top of time-sliced execution (the --jobs sweep measured
        # 0.86x serial): fall back, loudly, to the serial loop.
        logger.warning(
            "parallel sweep requested %d jobs but only 1 CPU is available;"
            " falling back to serial execution", jobs)
        jobs = 1
    if labels is not None and len(labels) != len(items):
        raise SweepError(
            f"labels/items length mismatch: {len(labels)} != {len(items)}")

    def label_of(i: int) -> str:
        return labels[i] if labels is not None else str(items[i])

    if jobs <= 1 or len(items) <= 1:
        out = []
        for i, item in enumerate(items):
            try:
                out.append(fn(item))
            except Exception as exc:
                raise SweepError(
                    f"sweep point {label_of(i)!r} "
                    f"(task {i + 1}/{len(items)}) failed: {exc}") from exc
        return out

    results: dict[int, R] = {}
    with ProcessPoolExecutor(max_workers=min(jobs, len(items))) as pool:
        futures = {pool.submit(fn, item): i for i, item in enumerate(items)}
        # FIRST_EXCEPTION so a failed point aborts the sweep promptly
        # instead of burning the remaining grid.
        done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
        for fut in not_done:
            fut.cancel()
        for fut in sorted(done, key=futures.__getitem__):
            i = futures[fut]
            try:
                results[i] = fut.result()
            except BrokenProcessPool as exc:
                raise SweepError(
                    f"sweep point {label_of(i)!r} (task {i + 1}/"
                    f"{len(items)}) killed its worker process "
                    f"(out of memory or hard crash?)") from exc
            except Exception as exc:
                raise SweepError(
                    f"sweep point {label_of(i)!r} "
                    f"(task {i + 1}/{len(items)}) failed: {exc}") from exc
    missing = [i for i in range(len(items)) if i not in results]
    if missing:  # pragma: no cover - only reachable via cancelled futures
        raise SweepError(
            f"sweep aborted before point(s) "
            f"{', '.join(label_of(i) for i in missing)} completed")
    return [results[i] for i in range(len(items))]
