"""The remaining §IV use cases, end to end.

§IV derives several scenarios from the photo-sharing example: IP-keyed
anonymous browsing, User-Agent-keyed crawler shaping, and the NoSQL
per-database case (covered in tests/apps/test_nosql.py).  These tests run
the first two against a simulated deployment.
"""

from __future__ import annotations

import pytest

from repro.core.config import (
    AdmissionConfig,
    ClusterTopology,
    JanusConfig,
    ServerConfig,
)
from repro.core.keys import ip_key, user_agent_key
from repro.core.rules import GUEST_ACCESS, QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.simclient import ClosedLoopClient


def build_cluster():
    config = JanusConfig(
        topology=ClusterTopology(n_routers=2, n_qos_servers=2),
        server=ServerConfig(workers=4,
                            admission=AdmissionConfig(default_rule=GUEST_ACCESS)))
    return SimJanusCluster(config, seed=121)


class TestAnonymousBrowsing:
    def test_ip_keys_allow_reasonable_browsing_and_stop_surges(self):
        """'Using IP address as the QoS key allows reasonable anonymous
        browsing, at the same time mitigating the threats from malicious
        or unintentional surge requests.'"""
        cluster = build_cluster()
        cluster.prewarm()
        # A human browser: a handful of pages, spread out.
        human = ClosedLoopClient(cluster, "human",
                                 lambda: ip_key("198.51.100.7"),
                                 n_requests=30, think_time=0.2)
        # A surge source hammering as fast as it can.
        surge = ClosedLoopClient(cluster, "surge",
                                 lambda: ip_key("203.0.113.66"),
                                 n_requests=500)
        cluster.sim.run(until=10.0)
        assert human.log.n_allowed == 30                 # all human pages OK
        # The surge got its guest burst (100) plus a trickle, no more.
        assert 95 <= surge.log.n_allowed <= 200
        assert surge.log.n_rejected >= 300

    def test_surge_does_not_affect_other_ips(self):
        cluster = build_cluster()
        cluster.prewarm()
        surge = ClosedLoopClient(cluster, "surge",
                                 lambda: ip_key("203.0.113.66"),
                                 n_requests=400)
        bystander = ClosedLoopClient(cluster, "bystander",
                                     lambda: ip_key("198.51.100.9"),
                                     n_requests=50, think_time=0.05)
        cluster.sim.run(until=10.0)
        assert bystander.log.n_allowed == 50


class TestCrawlerShaping:
    def test_user_agent_rules_shape_crawlers(self):
        """'QoS rules can be setup with the User-Agent string ... allowing
        access from search engines with a reasonable access rate.'"""
        cluster = build_cluster()
        # The provider grants a known crawler 20 rps with a small burst;
        # unknown agents fall to the guest rule.
        cluster.rules.put_rule(QoSRule(
            user_agent_key("Googlebot/2.1"), refill_rate=20.0,
            capacity=20.0))
        cluster.prewarm()
        googlebot = ClosedLoopClient(
            cluster, "googlebot", lambda: user_agent_key("Googlebot/2.1"))
        scraper = ClosedLoopClient(
            cluster, "scraper", lambda: user_agent_key("BadBot/0.1"))
        cluster.sim.run(until=12.0)
        # The sanctioned crawler converges to its purchased 20 rps.
        late_ok = sum(1 for r in googlebot.log.records
                      if r.allowed and 6.0 <= r.finished_at < 11.0) / 5.0
        assert late_ok == pytest.approx(20.0, rel=0.15)
        # The unknown scraper is pinned to the 10 rps guest trickle.
        late_scraper = sum(1 for r in scraper.log.records
                           if r.allowed and 6.0 <= r.finished_at < 11.0) / 5.0
        assert late_scraper == pytest.approx(10.0, rel=0.2)

    def test_agent_and_ip_keys_do_not_collide(self):
        """Namespacing: a UA string equal to an IP string is a different
        key (the injectivity of repro.core.keys)."""
        assert user_agent_key("10.0.0.1") != ip_key("10.0.0.1")
