"""Warm bucket-state transfer over protocol-v2 SNAPSHOT_XFER frames.

The sender side of the reshard plane: pack a set of
:class:`~repro.core.admission.BucketSnapshot` into chunks that fit one
UDP datagram each, push them to the new owner, and retransmit unacked
chunks off a :class:`~repro.runtime.udp_channel.TimerWheel` until every
chunk is acknowledged or the retry budget is spent.  The receiver side
(:class:`~repro.runtime.reshard.state.ReshardState`) deduplicates
``(xfer_id, seq)``, so a retransmit racing a lost ack never restores —
and therefore never double-credits — the same chunk twice.

TOPOLOGY announcements use the same ack/retry discipline via
:func:`broadcast_topology`: a backend acks a TOPOLOGY frame with the
reserved xfer id :data:`~repro.core.protocol.XFER_ACK_TOPOLOGY`.
"""

from __future__ import annotations

import socket
import time
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.core.admission import BucketSnapshot
from repro.core.errors import JanusError, ProtocolError
from repro.core.protocol import (
    MAX_DATAGRAM_BYTES,
    MAX_FRAME_MESSAGES,
    MAX_XFER_CHUNKS,
    SNAPSHOT_XFER_HEAD_BYTES,
    XFER_ACK_TOPOLOGY,
    SnapshotChunk,
    TopologyUpdate,
    XferAck,
    decode_any_traced,
    encode_snapshot_xfer_frame,
    encode_topology_frame,
    snapshot_entry_size,
)
from repro.runtime.udp_channel import TimerWheel

__all__ = ["ReshardError", "SnapshotSender", "XferReport",
           "broadcast_topology", "chunk_snapshots"]

#: Chunk byte budget: leave the same slack under the datagram limit as
#: the router channel's frame budget, for envelope headroom.
_CHUNK_BYTE_BUDGET = MAX_DATAGRAM_BYTES - 512

#: Fixed per-chunk overhead: v2 header + chunk head (untraced frames).
_CHUNK_OVERHEAD = 6 + SNAPSHOT_XFER_HEAD_BYTES


class ReshardError(JanusError):
    """A topology change could not complete (transfer or ack failure)."""


def chunk_snapshots(buckets: "Sequence[BucketSnapshot]", xfer_id: int,
                    epoch: int,
                    budget: int = _CHUNK_BYTE_BUDGET) -> "list[SnapshotChunk]":
    """Pack bucket snapshots into datagram-sized SNAPSHOT_XFER chunks.

    Greedy first-fit in input order: a chunk closes when the next entry
    would push it past ``budget`` bytes or :data:`MAX_FRAME_MESSAGES`
    entries.  A single bucket whose encoded entry exceeds the budget
    (a pathological lease ledger) is a :class:`ProtocolError` — it could
    never ride one datagram.
    """
    groups: "list[list[BucketSnapshot]]" = []
    current: "list[BucketSnapshot]" = []
    size = _CHUNK_OVERHEAD
    for snap in buckets:
        entry = snapshot_entry_size(snap)
        if _CHUNK_OVERHEAD + entry > budget:
            raise ProtocolError(
                f"bucket snapshot for key {snap.key!r} encodes to {entry} "
                f"bytes, over the {budget - _CHUNK_OVERHEAD}-byte chunk "
                f"budget")
        if current and (size + entry > budget
                        or len(current) >= MAX_FRAME_MESSAGES):
            groups.append(current)
            current = []
            size = _CHUNK_OVERHEAD
        current.append(snap)
        size += entry
    if current:
        groups.append(current)
    total = len(groups)
    if total > MAX_XFER_CHUNKS:
        raise ProtocolError(f"transfer needs {total} chunks, over the "
                            f"{MAX_XFER_CHUNKS} chunk bound")
    return [SnapshotChunk(xfer_id, epoch, seq, total, tuple(group))
            for seq, group in enumerate(groups)]


@dataclass(slots=True)
class XferReport:
    """Outcome of one transfer (or one topology broadcast)."""

    target: "tuple[str, int]"
    epoch: int
    xfer_id: int
    keys: int = 0
    chunks: int = 0
    bytes_sent: int = 0
    retries: int = 0
    duration: float = 0.0
    complete: bool = False
    #: Chunk seqs never acknowledged (empty when ``complete``).
    unacked: "tuple[int, ...]" = field(default=())

    def as_dict(self) -> dict:
        return {
            "target": list(self.target),
            "epoch": self.epoch,
            "xfer_id": self.xfer_id,
            "keys": self.keys,
            "chunks": self.chunks,
            "bytes_sent": self.bytes_sent,
            "retries": self.retries,
            "duration": self.duration,
            "complete": self.complete,
            "unacked": list(self.unacked),
        }


class _AckedSendLoop:
    """Shared send/ack/retry engine for chunks and topology frames.

    One ephemeral UDP socket, a payload table keyed by an opaque token,
    and a timer wheel arming one retransmission deadline per unacked
    payload.  The loop is synchronous — reshard control traffic is rare
    and latency-tolerant, so it needs no event thread of its own.
    """

    def __init__(self, retry_timeout: float, max_retries: int,
                 tick: float, clock=time.monotonic):
        self._retry_timeout = retry_timeout
        self._max_retries = max_retries
        self._clock = clock
        slots = max(64, int(2 * retry_timeout / tick) + 2)
        self._wheel = TimerWheel(tick, slots=slots)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._sock.settimeout(min(tick, retry_timeout) or 0.005)
        self.retries = 0
        self.bytes_sent = 0

    def run(self, payloads: "dict[object, tuple[bytes, tuple[str, int]]]",
            match) -> "set[object]":
        """Send every payload until acked or retries exhaust.

        ``match(ack, source_addr)`` maps a decoded :class:`XferAck` to
        the token it acknowledges (or ``None``).  Returns the set of
        tokens that were never acknowledged.
        """
        attempts = {token: 0 for token in payloads}
        unacked = set(payloads)
        try:
            now = self._clock()
            for token in payloads:
                self._transmit(token, payloads, attempts, now)
            while unacked:
                self._collect_acks(unacked, match)
                now = self._clock()
                for token in self._wheel.advance(now):
                    if token not in unacked:
                        continue
                    if attempts[token] > self._max_retries:
                        return unacked
                    self.retries += 1
                    self._transmit(token, payloads, attempts, now)
            return unacked
        finally:
            self._sock.close()

    def _transmit(self, token, payloads, attempts, now: float) -> None:
        payload, target = payloads[token]
        attempts[token] += 1
        try:
            self._sock.sendto(payload, target)
            self.bytes_sent += len(payload)
        except OSError:
            pass        # retried off the wheel like a lost datagram
        self._wheel.schedule(now + self._retry_timeout, token)

    def _collect_acks(self, unacked: set, match) -> None:
        try:
            data, addr = self._sock.recvfrom(MAX_DATAGRAM_BYTES)
        except socket.timeout:
            return
        except OSError:
            return
        try:
            _, _, messages = decode_any_traced(data)
        except ProtocolError:
            return
        for message in messages:
            if type(message) is not XferAck:
                return      # homogeneous frames: not an ack frame at all
            token = match(message, addr)
            if token is not None:
                unacked.discard(token)


class SnapshotSender:
    """Pushes one transfer's chunks to a new owner with ack + retry."""

    def __init__(self, *, retry_timeout: float = 0.05, max_retries: int = 5,
                 tick: float = 0.005, clock=time.monotonic):
        if retry_timeout <= 0:
            raise ReshardError(
                f"retry_timeout must be > 0, got {retry_timeout}")
        self._retry_timeout = retry_timeout
        self._max_retries = max_retries
        self._tick = tick
        self._clock = clock

    def push(self, target: "tuple[str, int]",
             buckets: "Sequence[BucketSnapshot]", *, epoch: int,
             xfer_id: int) -> XferReport:
        """Transfer ``buckets`` to ``target``; blocks until done.

        Every chunk is retransmitted up to ``max_retries`` times on its
        own wheel deadline; the report's ``complete`` flag is only set
        once *all* chunks are acknowledged.
        """
        target = tuple(target)
        chunks = chunk_snapshots(buckets, xfer_id, epoch)
        report = XferReport(target=target, epoch=epoch, xfer_id=xfer_id,
                            keys=len(buckets), chunks=len(chunks))
        if not chunks:
            report.complete = True
            return report
        start = self._clock()
        payloads = {
            chunk.seq: (encode_snapshot_xfer_frame(chunk), target)
            for chunk in chunks
        }

        def match(ack: XferAck, _addr) -> "Optional[int]":
            if ack.xfer_id == xfer_id and ack.epoch == epoch:
                return ack.seq
            return None

        loop = _AckedSendLoop(self._retry_timeout, self._max_retries,
                              self._tick, self._clock)
        unacked = loop.run(payloads, match)
        report.bytes_sent = loop.bytes_sent
        report.retries = loop.retries
        report.duration = self._clock() - start
        report.unacked = tuple(sorted(unacked))
        report.complete = not unacked
        return report


def broadcast_topology(targets: "Sequence[tuple[str, int]]",
                       update: TopologyUpdate, *,
                       retry_timeout: float = 0.05, max_retries: int = 5,
                       tick: float = 0.005,
                       clock=time.monotonic) -> "set[tuple[str, int]]":
    """Announce ``update`` to every target; returns the unacked set.

    Each target acks with ``XferAck(XFER_ACK_TOPOLOGY, epoch, phase)``;
    unacked targets get the frame retransmitted off the wheel like a
    snapshot chunk.  An empty return set means every backend holds the
    announcement.
    """
    targets = [tuple(t) for t in targets]
    if not targets:
        return set()
    payload = encode_topology_frame(update)
    payloads = {target: (payload, target) for target in targets}

    def match(ack: XferAck, addr) -> "Optional[tuple[str, int]]":
        if (ack.xfer_id == XFER_ACK_TOPOLOGY and ack.epoch == update.epoch
                and ack.seq == update.phase):
            source = tuple(addr)
            return source if source in payloads else None
        return None

    loop = _AckedSendLoop(retry_timeout, max_retries, tick, clock)
    return loop.run(payloads, match)
