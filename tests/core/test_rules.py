"""Tests for QoS rules and the default-rule policy (§II-C/D)."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.core.rules import DENY_ALL, GUEST_ACCESS, DefaultRulePolicy, QoSRule


class TestQoSRule:
    def test_valid_rule(self):
        rule = QoSRule("alice", refill_rate=100.0, capacity=1000.0)
        assert rule.key == "alice"
        assert rule.initial_credit() == 1000.0

    def test_checkpointed_credit_used_as_initial(self):
        rule = QoSRule("alice", refill_rate=100.0, capacity=1000.0, credit=42.0)
        assert rule.initial_credit() == 42.0

    def test_with_credit_returns_copy(self):
        rule = QoSRule("alice", refill_rate=1.0, capacity=10.0)
        other = rule.with_credit(5.0)
        assert other.credit == 5.0
        assert rule.credit is None

    @pytest.mark.parametrize("kwargs", [
        {"key": "", "refill_rate": 1.0, "capacity": 1.0},
        {"key": "k", "refill_rate": -1.0, "capacity": 1.0},
        {"key": "k", "refill_rate": 1.0, "capacity": -1.0},
        {"key": "k", "refill_rate": 1.0, "capacity": 10.0, "credit": 11.0},
        {"key": "k", "refill_rate": 1.0, "capacity": 10.0, "credit": -1.0},
    ])
    def test_invalid_rules_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            QoSRule(**kwargs)

    def test_non_string_key_rejected(self):
        with pytest.raises(ConfigurationError):
            QoSRule(12345, refill_rate=1.0, capacity=1.0)  # type: ignore[arg-type]

    def test_denies_all_detection(self):
        assert QoSRule("k", 0.0, 0.0).denies_all
        assert not QoSRule("k", 0.0, 5.0).denies_all
        assert not QoSRule("k", 5.0, 0.0).denies_all

    def test_rules_are_frozen(self):
        rule = QoSRule("k", 1.0, 1.0)
        with pytest.raises(AttributeError):
            rule.capacity = 2.0  # type: ignore[misc]


class TestDefaultRulePolicy:
    def test_deny_all_constant(self):
        rule = DENY_ALL.rule_for("stranger")
        assert rule.denies_all
        assert rule.key == "stranger"

    def test_guest_access_constant(self):
        # The Fig. 13 default: refill 10 rps, capacity 100.
        rule = GUEST_ACCESS.rule_for("stranger")
        assert rule.refill_rate == 10.0
        assert rule.capacity == 100.0

    def test_negative_rates_rejected(self):
        with pytest.raises(ConfigurationError):
            DefaultRulePolicy(refill_rate=-1.0)

    def test_memorize_flag_default_true(self):
        assert DENY_ALL.memorize_unknown_keys
