"""Ablation: modulo routing vs consistent/rendezvous hashing.

The paper's ``CRC32 mod N`` assumes a *fixed* number of QoS servers: "with
a fixed number of QoS servers in the back end, QoS requests with the same
QoS key are always routed to the same QoS server."  Growing the layer
remaps almost the whole keyspace (every moved key loses its bucket state).
This ablation quantifies the trade against the ring/rendezvous extensions:
remap fraction on resize versus per-lookup cost.
"""

from __future__ import annotations

import pytest

from repro.core.hashing import (
    ConsistentHashRing,
    ModuloRouter,
    RendezvousRouter,
    crc32_router,
)
from repro.metrics.report import format_table
from repro.workload.keygen import uuid_keys

KEYS = uuid_keys(20_000, seed=99)
SERVERS = [f"qos-{i}" for i in range(10)]


def remap_fraction(router_factory) -> float:
    before_router = router_factory(SERVERS)
    before = {k: before_router.route(k) for k in KEYS}
    grown = router_factory(SERVERS + ["qos-10"])
    moved = sum(1 for k in KEYS if grown.route(k) != before[k])
    return moved / len(KEYS)


@pytest.mark.parametrize("name,factory", [
    ("modulo", ModuloRouter),
    ("consistent-hash", lambda servers: ConsistentHashRing(servers)),
    ("rendezvous", RendezvousRouter),
])
def test_lookup_throughput(benchmark, name, factory):
    router = factory(SERVERS)
    sample = KEYS[:2_000]

    def lookups():
        for k in sample:
            router.route(k)

    benchmark(lookups)


def test_hashing_ablation_report(benchmark, report_sink):
    def sweep():
        return [(name, f"{remap_fraction(factory) * 100:.1f}%")
                for name, factory in (("modulo (paper)", ModuloRouter),
                                      ("consistent-hash",
                                       lambda s: ConsistentHashRing(s)),
                                      ("rendezvous", RendezvousRouter))]
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_sink(format_table(
        ("algorithm", "keys remapped on 10->11 servers"), rows,
        title="Ablation: routing algorithm vs elasticity "
              "(ideal remap fraction: 1/11 = 9.1%)"))
    # The paper's scheme remaps ~10/11 of keys; the extensions ~1/11.
    assert remap_fraction(ModuloRouter) > 0.8
    assert remap_fraction(lambda s: ConsistentHashRing(s)) < 0.15
    assert remap_fraction(RendezvousRouter) < 0.15


def test_modulo_is_fastest_lookup(benchmark):
    """Why the paper's choice is right for fixed N: cheapest per lookup."""
    import timeit
    modulo = benchmark.pedantic(
        lambda: timeit.timeit(lambda: crc32_router("some-qos-key", 10),
                              number=20_000),
        rounds=1, iterations=1)
    ring = ConsistentHashRing(SERVERS)
    ring_time = timeit.timeit(lambda: ring.route("some-qos-key"),
                              number=20_000)
    assert modulo < ring_time
