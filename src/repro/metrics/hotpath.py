"""Hot-path micro-harness: admission decisions/second under contention.

The paper attributes the QoS server's CPU under-utilization on large
instances to "the implementation of the locking mechanism" (§V-C) and
names its optimization as future work.  This module measures that work:
it drives the real :class:`~repro.core.admission.AdmissionController`
with real worker threads over a warmed key table and reports raw
decisions/second, for both

- the **fused** path (the current implementation: lookup + consume +
  statistics under exactly one shard lock), and
- the **seed** path (:class:`SeedPathController`, kept runnable here:
  shard lock → nested bucket lock → global stats lock, three
  acquisitions per decision, as the repository originally shipped), and
- the **batch** path (``check_batch``: one shard-lock take and one clock
  read per shard per frame, measured per backend — the slab's columnar
  store is where frame-at-a-time admission pays off),

so the speedups are always computed on the same machine in the same run.
The fused and seed arms pin ``table_backend="object"`` regardless of the
session default: "fused" *is* the PR-1 object-store baseline that the
batch gate is defined against.  :func:`measure_resident_bytes_per_key`
adds the memory half of the story — tracemalloc-attributed resident
bytes per bucket for each backend, keys pre-materialized so only table
state is counted.
``benchmarks/test_hotpath_regression.py`` turns the matrix into a
regression gate and writes ``BENCH_hotpath.json`` for the performance
trajectory; ``make bench-hotpath`` and ``janus bench-hotpath`` run it
from the command line.
"""

from __future__ import annotations

import gc
import json
import os
import platform
import threading
import time
import tracemalloc
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.admission import (
    AdmissionController,
    AdmissionStats,
    InMemoryRuleSource,
)
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule
from repro.workload.keygen import uuid_keys

__all__ = [
    "HotpathPoint",
    "HotpathReport",
    "MemoryPoint",
    "SeedPathController",
    "measure_batch_decisions_per_sec",
    "measure_decisions_per_sec",
    "measure_resident_bytes_per_key",
    "run_hotpath_matrix",
    "write_report",
]

#: Hot buckets that never deny: the measurement isolates synchronization
#: cost, not credit arithmetic.
_HOT_RULE_RATE = 1e9
_HOT_RULE_CAPACITY = 1e12


class SeedPathController(AdmissionController):
    """The seed's three-lock decision path, kept runnable for comparison.

    Reproduces the pre-fusion hot path exactly: the table lookup under the
    shard lock, the bucket's *own* lock nested inside it for the consume,
    and a global stats lock acquired by every worker on every decision.
    Only :meth:`check` differs from the parent; maintenance passes and
    decision semantics are identical, which the regression test asserts.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seed_stats = AdmissionStats()
        self._seed_stats_lock = threading.Lock()

    def check(self, key: str, cost: float = 1.0) -> bool:
        shard = self._shard_of(key)
        table = self._shards[shard]
        with self._locks[shard]:
            bucket = table.get(key)
            if bucket is None:
                hit = False
                bucket, unknown = self._create_bucket_locked(table, key)
            else:
                hit = True
                unknown = False
            allowed = bucket.try_consume(cost)      # nested bucket lock
        with self._seed_stats_lock:                 # global stats lock
            stats = self._seed_stats
            if hit:
                stats.rule_hits += 1
            else:
                stats.rule_misses += 1
                if unknown:
                    stats.unknown_keys += 1
            if allowed:
                stats.admitted += 1
            else:
                stats.denied += 1
        return allowed

    @property
    def stats(self) -> AdmissionStats:
        return self._seed_stats


@dataclass(frozen=True, slots=True)
class HotpathPoint:
    """One measured configuration of the admission hot path."""

    path: str                   # "fused", "seed", or "batch-<backend>"
    lock_shards: int
    workers: int
    decisions: int
    elapsed_s: float
    decisions_per_sec: float
    batch_size: int = 1         # keys per check_batch frame; 1 = per-key


@dataclass(frozen=True, slots=True)
class MemoryPoint:
    """Resident table memory for one backend at one table size.

    ``resident_bytes`` is tracemalloc's attribution of everything the
    warmed controller keeps alive (keys pre-materialized, so strings are
    excluded); ``table_bytes`` is the controller's own
    :meth:`~repro.core.admission.AdmissionController.table_bytes`
    accounting, reported alongside so the estimator can be sanity-checked
    against ground truth.
    """

    backend: str
    n_keys: int
    resident_bytes: int
    bytes_per_key: float
    table_bytes: int


@dataclass(slots=True)
class HotpathReport:
    """A full sweep plus the per-configuration fused/seed speedups."""

    points: list[HotpathPoint] = field(default_factory=list)
    memory: list[MemoryPoint] = field(default_factory=list)
    machine: dict = field(default_factory=dict)

    def point(self, path: str, lock_shards: int,
              workers: int) -> Optional[HotpathPoint]:
        for p in self.points:
            if (p.path, p.lock_shards, p.workers) == (path, lock_shards,
                                                      workers):
                return p
        return None

    def speedup(self, lock_shards: int, workers: int) -> Optional[float]:
        """Fused throughput over seed throughput for one configuration."""
        fused = self.point("fused", lock_shards, workers)
        seed = self.point("seed", lock_shards, workers)
        if fused is None or seed is None or seed.decisions_per_sec <= 0:
            return None
        return fused.decisions_per_sec / seed.decisions_per_sec

    def batch_speedup(self, lock_shards: int, workers: int,
                      backend: str = "slab") -> Optional[float]:
        """Frame-at-a-time throughput over fused per-key throughput."""
        batch = self.point(f"batch-{backend}", lock_shards, workers)
        fused = self.point("fused", lock_shards, workers)
        if batch is None or fused is None or fused.decisions_per_sec <= 0:
            return None
        return batch.decisions_per_sec / fused.decisions_per_sec

    def memory_point(self, backend: str) -> Optional[MemoryPoint]:
        for m in self.memory:
            if m.backend == backend:
                return m
        return None

    def memory_ratio(self) -> Optional[float]:
        """Slab resident bytes/key over object resident bytes/key."""
        slab = self.memory_point("slab")
        obj = self.memory_point("object")
        if slab is None or obj is None or obj.bytes_per_key <= 0:
            return None
        return slab.bytes_per_key / obj.bytes_per_key

    def as_dict(self) -> dict:
        speedups = {}
        batch_speedups = {}
        for p in self.points:
            config = f"shards{p.lock_shards}_workers{p.workers}"
            if p.path == "fused":
                ratio = self.speedup(p.lock_shards, p.workers)
                if ratio is not None:
                    speedups[config] = round(ratio, 3)
            elif p.path.startswith("batch-"):
                ratio = self.batch_speedup(p.lock_shards, p.workers,
                                           p.path[len("batch-"):])
                if ratio is not None:
                    batch_speedups[f"{p.path}_{config}"] = round(ratio, 3)
        out = {
            "machine": self.machine,
            "points": [asdict(p) for p in self.points],
            "speedup_fused_over_seed": speedups,
        }
        if batch_speedups:
            out["speedup_batch_over_fused"] = batch_speedups
        if self.memory:
            out["memory"] = [asdict(m) for m in self.memory]
            ratio = self.memory_ratio()
            if ratio is not None:
                out["memory_slab_over_object"] = round(ratio, 4)
        return out


def _machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # Report stamp ("when did this bench run"), not a duration input.
        "unix_time": time.time(),  # janus-lint: disable=monotonic-time
    }


def measure_decisions_per_sec(
    *,
    lock_shards: int,
    workers: int,
    fused: bool = True,
    n_keys: int = 256,
    checks_per_worker: int = 10_000,
    seed: int = 88,
) -> HotpathPoint:
    """Throughput of ``workers`` threads hammering a warmed controller.

    Every key has an effectively infinite rule so the run measures the
    synchronization cost of the decision, not deny-path differences.  The
    timed region covers only the contended checks (the table is warmed
    first, so the hit path is what is measured).
    """
    keys = uuid_keys(n_keys, seed=seed)
    source = InMemoryRuleSource(
        {k: QoSRule(k, refill_rate=_HOT_RULE_RATE,
                    capacity=_HOT_RULE_CAPACITY) for k in keys})
    cls = AdmissionController if fused else SeedPathController
    # The fused arm is the PR-1 object-store baseline the batch gate
    # compares against; pin the backend so the session default (slab)
    # cannot silently redefine the denominator.
    controller = cls(source, AdmissionConfig(lock_shards=lock_shards,
                                             table_backend="object"))
    for k in keys:                      # materialize outside the timed region
        controller.check(k)

    start = threading.Barrier(workers + 1)
    done = threading.Barrier(workers + 1)

    def run(wid: int) -> None:
        local = keys[wid::workers] or keys
        n = len(local)
        check = controller.check
        start.wait()
        i = 0
        for _ in range(checks_per_worker):
            check(local[i])
            i += 1
            if i == n:
                i = 0
        done.wait()

    threads = [threading.Thread(target=run, args=(w,), daemon=True)
               for w in range(workers)]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - t0
    for t in threads:
        t.join()
    decisions = workers * checks_per_worker
    return HotpathPoint(
        path="fused" if fused else "seed",
        lock_shards=lock_shards,
        workers=workers,
        decisions=decisions,
        elapsed_s=elapsed,
        decisions_per_sec=decisions / elapsed if elapsed > 0 else 0.0,
    )


def measure_batch_decisions_per_sec(
    *,
    lock_shards: int,
    workers: int,
    backend: str = "slab",
    batch_size: int = 64,
    n_keys: int = 256,
    checks_per_worker: int = 10_000,
    seed: int = 88,
) -> HotpathPoint:
    """Throughput of ``workers`` threads driving whole ``check_batch``
    frames against a warmed controller on the chosen backend.

    Each worker pre-builds its frames (``batch_size`` keys apiece, the
    same interleaved key stream the per-key arm walks) outside the timed
    region, then hammers ``check_batch`` — so the measurement is the
    frame-at-a-time decision cost, not list construction.  Decisions are
    counted per key, which makes the number directly comparable to
    :func:`measure_decisions_per_sec`.
    """
    keys = uuid_keys(n_keys, seed=seed)
    source = InMemoryRuleSource(
        {k: QoSRule(k, refill_rate=_HOT_RULE_RATE,
                    capacity=_HOT_RULE_CAPACITY) for k in keys})
    controller = AdmissionController(
        source, AdmissionConfig(lock_shards=lock_shards,
                                table_backend=backend))
    for k in keys:                      # materialize outside the timed region
        controller.check(k)

    n_frames = max(1, checks_per_worker // batch_size)
    frames_per_worker: list[list[list[str]]] = []
    for wid in range(workers):
        local = keys[wid::workers] or keys
        stream = [local[i % len(local)]
                  for i in range(n_frames * batch_size)]
        frames_per_worker.append(
            [stream[f * batch_size:(f + 1) * batch_size]
             for f in range(n_frames)])

    start = threading.Barrier(workers + 1)
    done = threading.Barrier(workers + 1)

    def run(wid: int) -> None:
        frames = frames_per_worker[wid]
        check_batch = controller.check_batch
        start.wait()
        for frame in frames:
            check_batch(frame)
        done.wait()

    threads = [threading.Thread(target=run, args=(w,), daemon=True)
               for w in range(workers)]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - t0
    for t in threads:
        t.join()
    decisions = workers * n_frames * batch_size
    return HotpathPoint(
        path=f"batch-{backend}",
        lock_shards=lock_shards,
        workers=workers,
        decisions=decisions,
        elapsed_s=elapsed,
        decisions_per_sec=decisions / elapsed if elapsed > 0 else 0.0,
        batch_size=batch_size,
    )


def measure_resident_bytes_per_key(
    backend: str,
    *,
    n_keys: int = 20_000,
    lock_shards: int = 8,
    seed: int = 88,
) -> MemoryPoint:
    """Tracemalloc-attributed resident bytes per warmed bucket.

    Key strings, their rules and the rule source are all materialized
    *before* tracing starts, so the snapshot diff charges the controller
    only for what it allocates itself: the table/index structures, plus
    per-key bucket state (``LeakyBucket`` objects on the object backend;
    column elements, the slot int and an index entry on the slab).
    """
    keys = uuid_keys(n_keys, seed=seed)
    source = InMemoryRuleSource(
        {k: QoSRule(k, refill_rate=_HOT_RULE_RATE,
                    capacity=_HOT_RULE_CAPACITY) for k in keys})
    gc.collect()
    was_tracing = tracemalloc.is_tracing()
    if not was_tracing:
        tracemalloc.start()
    try:
        before = tracemalloc.take_snapshot()
        controller = AdmissionController(
            source, AdmissionConfig(lock_shards=lock_shards,
                                    table_backend=backend))
        for k in keys:
            controller.check(k)
        gc.collect()
        after = tracemalloc.take_snapshot()
    finally:
        if not was_tracing:
            tracemalloc.stop()
    resident = sum(stat.size_diff
                   for stat in after.compare_to(before, "filename")
                   if stat.size_diff > 0)
    return MemoryPoint(
        backend=backend,
        n_keys=n_keys,
        resident_bytes=resident,
        bytes_per_key=resident / n_keys if n_keys else 0.0,
        table_bytes=controller.table_bytes(),
    )


def run_hotpath_matrix(
    lock_shards: Sequence[int] = (1, 8, 64),
    workers: Sequence[int] = (1, 4, 8),
    *,
    paths: Iterable[str] = ("seed", "fused", "batch"),
    checks_per_worker: int = 10_000,
    n_keys: int = 256,
    seed: int = 88,
    batch_size: int = 64,
    batch_backends: Sequence[str] = ("slab", "object"),
    memory_keys: int = 20_000,
    reps: int = 1,
) -> HotpathReport:
    """Sweep the full (path × lock_shards × workers) grid.

    Seed, fused and batch runs for the same configuration execute
    back-to-back so their ratios are as same-machine/same-moment as the
    process can make them.  The "batch" path expands to one arm per
    backend in ``batch_backends``.  With ``memory_keys > 0`` the report
    also carries one :class:`MemoryPoint` per backend.

    ``reps > 1`` measures each throughput arm that many times and keeps
    the fastest: on a shared/virtualized box the *best* of a few short
    runs tracks the machine's actual capability, while a single shot can
    land in a noisy-neighbour episode and record garbage.
    """
    def best_of(measure) -> HotpathPoint:
        point = measure()
        for _ in range(reps - 1):
            again = measure()
            if again.decisions_per_sec > point.decisions_per_sec:
                point = again
        return point

    report = HotpathReport(machine=_machine_info())
    for shards in lock_shards:
        for n_workers in workers:
            for path in paths:
                if path == "batch":
                    for backend in batch_backends:
                        report.points.append(best_of(
                            lambda: measure_batch_decisions_per_sec(
                                lock_shards=shards,
                                workers=n_workers,
                                backend=backend,
                                batch_size=batch_size,
                                n_keys=n_keys,
                                checks_per_worker=checks_per_worker,
                                seed=seed,
                            )))
                    continue
                report.points.append(best_of(
                    lambda: measure_decisions_per_sec(
                        lock_shards=shards,
                        workers=n_workers,
                        fused=(path == "fused"),
                        n_keys=n_keys,
                        checks_per_worker=checks_per_worker,
                        seed=seed,
                    )))
    if memory_keys:
        for backend in ("object", "slab"):
            report.memory.append(measure_resident_bytes_per_key(
                backend, n_keys=memory_keys, seed=seed))
    return report


def write_report(path, report: HotpathReport) -> None:
    """Serialize a report as JSON (the ``BENCH_hotpath.json`` artifact)."""
    with open(path, "w") as fh:
        json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
