"""Lock-acquisition discipline of the fused admission hot path.

The ISSUE-1 acceptance criterion: :meth:`AdmissionController.check`
acquires exactly **one** lock per decision on the hit path, and the miss
path no longer nests any lock acquisition inside the shard lock (the seed
nested the bucket lock and a global stats lock there).  These tests
instrument every lock the controller and its buckets can touch and count
real acquisitions.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.admission import AdmissionController
from repro.core.clock import ManualClock
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule

# Captured before any monkeypatching so instrumented locks can build on
# the real primitive.
_REAL_LOCK = threading.Lock


class CountingLock:
    """A ``threading.Lock`` lookalike that records acquire/release events."""

    def __init__(self, events: list, label: str):
        self._inner = _REAL_LOCK()
        self._events = events
        self._label = label

    def acquire(self, *args, **kwargs):
        self._events.append(("acquire", self._label))
        return self._inner.acquire(*args, **kwargs)

    def release(self):
        self._events.append(("release", self._label))
        self._inner.release()

    def locked(self):
        return self._inner.locked()

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False


class UnlockedRuleSource:
    """A rule source with no lock of its own, so every counted acquisition
    in these tests belongs to the controller or a bucket."""

    def __init__(self, rules):
        self._rules = dict(rules)

    def get_rule(self, key):
        return self._rules.get(key)

    def get_rules(self, keys):
        return {k: self._rules[k] for k in keys if k in self._rules}

    def checkpoint(self, credits):
        pass


def instrument(controller: AdmissionController, events: list) -> None:
    """Wrap every lock the controller owns (and its buckets' locks)."""
    controller._locks = [CountingLock(events, f"shard{i}")
                         for i in range(len(controller._locks))]
    for stripe in controller._stripes:
        stripe.lock = CountingLock(events, "stripe")
    controller._control_lock = CountingLock(events, "control")
    n_stripes = len(controller._stripes)
    controller._shard_state = [
        (controller._locks[i], controller._shards[i],
         controller._stripes[i % n_stripes])
        for i in range(len(controller._shards))]
    for table in controller._shards:
        for bucket in table.values():
            bucket._lock = CountingLock(events, "bucket")


def acquires(events: list) -> list:
    return [label for op, label in events if op == "acquire"]


def max_nesting(events: list) -> int:
    depth = peak = 0
    for op, _ in events:
        depth += 1 if op == "acquire" else -1
        peak = max(peak, depth)
    return peak


def make_controller(**config_kwargs) -> AdmissionController:
    source = UnlockedRuleSource(
        {f"k{i}": QoSRule(f"k{i}", refill_rate=100.0, capacity=100.0)
         for i in range(16)})
    return AdmissionController(source, AdmissionConfig(**config_kwargs),
                               clock=ManualClock())


class TestFusedHitPath:
    @pytest.mark.parametrize("lock_shards", [1, 8])
    def test_exactly_one_lock_per_decision(self, lock_shards):
        controller = make_controller(lock_shards=lock_shards)
        for i in range(16):
            controller.check(f"k{i}")       # warm: all keys materialized
        events: list = []
        instrument(controller, events)
        for i in range(16):
            assert controller.check(f"k{i}")
        labels = acquires(events)
        assert len(labels) == 16, (
            f"expected 1 lock acquisition per decision, saw {labels}")
        assert all(label.startswith("shard") for label in labels)
        assert max_nesting(events) == 1

    def test_weighted_cost_also_single_lock(self):
        controller = make_controller(lock_shards=4)
        controller.check("k0")
        events: list = []
        instrument(controller, events)
        controller.check("k0", cost=7.5)
        assert len(acquires(events)) == 1


class TestMissPath:
    def test_miss_path_no_nested_acquisition(self, monkeypatch):
        """The lazy-materialization path holds only the shard lock.

        ``threading.Lock`` is patched globally so even the freshly created
        bucket's internal lock would be counted if the fused path touched
        it; the old code acquired both the bucket lock and a global stats
        lock while holding the shard lock.
        """
        controller = make_controller(lock_shards=4)
        events: list = []
        instrument(controller, events)
        monkeypatch.setattr(threading, "Lock",
                            lambda: CountingLock(events, "fresh"))
        assert controller.check("k7")       # first sighting: miss path
        labels = acquires(events)
        assert labels == ["shard" + labels[0][5:]], (
            f"miss path acquired {labels}, expected only its shard lock")
        assert max_nesting(events) == 1

    def test_unknown_key_miss_path_single_lock(self, monkeypatch):
        controller = make_controller(lock_shards=4)
        events: list = []
        instrument(controller, events)
        monkeypatch.setattr(threading, "Lock",
                            lambda: CountingLock(events, "fresh"))
        controller.check("never-seen")      # default-rule fallback
        assert len(acquires(events)) == 1
        assert max_nesting(events) == 1


class TestSharedStripes:
    def test_striped_mode_two_flat_acquisitions(self):
        """``stats_stripes < lock_shards``: shard lock then stripe lock,
        strictly sequential, never nested."""
        controller = make_controller(lock_shards=8, stats_stripes=2)
        for i in range(16):
            controller.check(f"k{i}")
        events: list = []
        instrument(controller, events)
        controller.check("k3")
        labels = acquires(events)
        assert len(labels) == 2
        assert labels[0].startswith("shard")
        assert labels[1] == "stripe"
        assert max_nesting(events) == 1     # released before the next

    def test_striped_mode_counters_still_exact(self):
        controller = make_controller(lock_shards=8, stats_stripes=2)
        for i in range(16):
            controller.check(f"k{i}")
            controller.check(f"k{i}")
        stats = controller.stats
        assert stats.decisions == 32
        assert stats.rule_misses == 16
        assert stats.rule_hits == 16


class TestSeedPathContrast:
    def test_seed_path_acquired_three_locks(self):
        """The comparison baseline really does pay 3 acquisitions —
        documents what the fusion removed."""
        from repro.metrics.hotpath import SeedPathController

        source = UnlockedRuleSource(
            {"k": QoSRule("k", refill_rate=100.0, capacity=100.0)})
        controller = SeedPathController(
            source, AdmissionConfig(lock_shards=4), clock=ManualClock())
        controller.check("k")
        events: list = []
        instrument(controller, events)
        controller._seed_stats_lock = CountingLock(events, "stats")
        controller.check("k")
        labels = acquires(events)
        assert len(labels) == 3
        assert labels[0].startswith("shard")
        assert labels[1] == "bucket"        # nested inside the shard lock
        assert labels[2] == "stats"
        assert max_nesting(events) == 2
