"""Key-value request/response wire protocol (paper §II, §III-B/C).

Janus adopts "a key-value request-response mechanism for easy integration":
a QoS request carries a string QoS key; the QoS response is a boolean where
TRUE admits and FALSE denies.  This module defines the two message types and
a compact binary codec used on the router↔server UDP path, plus the HTTP
query-string form used on the client→router path.

Version-1 datagram layout (network byte order), one message per datagram::

    offset  size  field
    0       2     magic 0x4A51 ("JQ")
    2       1     version (1)
    3       1     type (1=request, 2=response)
    4       8     request id (u64) — matches responses to retried requests
    request:
    12      2     key length L (u16)
    14      L     key, UTF-8
    14+L    8     cost (f64) — credits to consume, normally 1.0
    response:
    12      1     verdict (0=deny, 1=admit)
    13      1     flags (bit0: default-reply, i.e. produced after retry
                  exhaustion rather than by a QoS server)

Version-2 **batch frames** carry up to :data:`MAX_FRAME_MESSAGES` messages
of one type in a single datagram, so a multiplexed router channel can
amortize the per-datagram syscall and wakeup cost (the router tier's
throughput ceiling)::

    offset  size  field
    0       2     magic 0x4A51 ("JQ")
    2       1     version (2)
    3       1     type byte: low 7 bits 1=request frame, 2=response frame;
                  high bit 0x80 = TRACED flag (reserved by the
                  observability plane — see below)
    4       2     count C (u16, 1 <= C <= MAX_FRAME_MESSAGES)
    [6      8     trace id (u64, non-zero) — present iff the TRACED flag
                  is set; identifies the distributed trace this frame's
                  requests belong to]
    6|14    ...   C length-prefixed entries, packed back to back:
                  request entry:  8  request id (u64)
                                  2  key length L (u16)
                                  L  key, UTF-8
                                  8  cost (f64)
                  response entry: 8  request id (u64)
                                  1  verdict (0=deny, 1=admit)
                                  1  flags (bit0 = default-reply)

A frame must consume its datagram exactly: a declared count that disagrees
with the payload is a protocol error.  Decoding is zero-copy — entries are
unpacked straight out of a ``memoryview`` of the datagram with
``unpack_from``; no per-entry byte-slicing copies are made.  Receivers
dispatch on the version byte (:func:`decode_any`), so v1 single-message
datagrams and v2 frames coexist on one port: a server answers each request
in the version it arrived with.

The TRACED flag bit (0x80 of the type byte) lets a sampled request carry
its 64-bit trace id across the router→server hop at a cost of 8 bytes per
*frame* — only frames carrying a sampled request set it, so v1 peers and
untraced-v2 frames are byte-identical to the pre-tracing protocol.  A
receiver that understands the flag answers a traced request frame with a
traced response frame (same trace id); the id is otherwise opaque.  A
router speaking v1 to a legacy server simply drops the flag (v1 datagrams
have no room for it), which degrades the trace to client/router spans
without affecting the exchange.

The request id lets a router discard a stale response that arrives after it
has already retried: the paper's routers resend "the same request ... until
a response is received" (§III-C), so responses must be idempotently
matchable.

**Credit-lease frames (v2 types 3/4/5).**  A router that sees a hot key may
ask the owning server for a short-TTL *lease* of bucket credit and then
admit that key locally, with zero wire traffic, while the lease is live:

- ``LEASE_REQ`` (type 3, router→server) — ``(request id, key, credits
  wanted, ttl_ms, return_credits, return_lease_id)``.  One frame expresses
  acquisition (*want k*), renewal (*return the unused remainder of lease
  ``return_lease_id`` and want k fresh*) and a pure return (*want 0*).
- ``LEASE_GRANT`` (type 4, server→router) — ``(request id, key, lease_id,
  credits granted, ttl_ms)``.  ``credits == 0`` (with ``lease_id == 0``)
  is a refusal.  The server debits the bucket **at grant time**, so the
  aggregate the system can admit never exceeds the credits the buckets
  issued; see ``docs/PROTOCOL.md`` for the over-admission bound.
- ``LEASE_REVOKE`` (type 5, server→router) — ``(lease_id, key)``.  Sent on
  a rule push so stale leases die before the TTL would expire them; a
  router drops its cached lease on receipt and falls back to wire checks.

Lease frames reuse the v2 batch-frame envelope (same header, count,
TRACED flag), so peers that predate leasing fail them with the same
"unknown frame type" path as any other garbage and the lease-free wire
image is untouched.

**Reshard frames (v2 types 6/7/8).**  The live-resharding plane
(:mod:`repro.runtime.reshard`) moves warm bucket state from an old owner
to a new owner when the cluster grows or shrinks:

- ``SNAPSHOT_XFER`` (type 6, old owner/coordinator→new owner) — one
  *chunk* of a transfer: a ``(xfer id, epoch, seq, total)`` head followed
  by ``count`` serialized :class:`~repro.core.admission.BucketSnapshot`
  entries, **including each bucket's live lease ledger**, so the
  over-admission accounting survives the move.  A transfer too large for
  one datagram is split into ``total`` chunks, each independently
  ack'able and idempotently re-appliable.
- ``XFER_ACK`` (type 7, new owner→sender) — ``(xfer id, epoch, seq)``
  per entry.  The reserved xfer id 0 (:data:`XFER_ACK_TOPOLOGY`) acks a
  TOPOLOGY frame instead, with ``seq`` echoing the phase.
- ``TOPOLOGY`` (type 8, coordinator→server/router) — an epoch-numbered
  two-phase topology announcement: ``(epoch, phase)`` plus the full
  ordered backend address list (``count`` entries).  PREPARE opens the
  transfer window on the old owners (moved keys get degraded default
  replies, never double-spent credit); COMMIT cuts routers over and
  lifts the freeze; ABORT lifts it without cutover.

Like lease frames, all three reuse the v2 envelope; pre-reshard peers
reject them via the "unknown frame type" path, and every frame type
from PR 8 and earlier is byte-identical.
"""

from __future__ import annotations

import itertools
import math
import struct
import threading
from dataclasses import dataclass
from typing import Sequence

from repro.core.admission import BucketSnapshot, LeaseSnapshot
from repro.core.errors import ProtocolError

__all__ = ["QoSRequest", "QoSResponse", "LeaseRequest", "LeaseGrant",
           "LeaseRevoke", "SnapshotChunk", "XferAck", "TopologyUpdate",
           "RequestIdGenerator",
           "LockedRequestIdGenerator", "decode", "decode_any",
           "decode_any_traced", "encode_request_frame",
           "encode_request_frame_parts", "encode_response_frame",
           "encode_response_frame_bits",
           "encode_lease_request_frame", "encode_lease_grant_frame",
           "encode_lease_revoke_frame",
           "encode_snapshot_xfer_frame", "encode_xfer_ack_frame",
           "encode_topology_frame", "snapshot_entry_size",
           "decode_frame", "decode_frame_traced",
           "MAX_KEY_BYTES", "MAX_FRAME_MESSAGES", "MAX_DATAGRAM_BYTES",
           "FRAME_HEADER_BYTES", "FRAME_REQ_ENTRY_OVERHEAD",
           "FLAG_FRAME_TRACED", "TRACE_ID_BYTES", "MAX_LEASE_TTL_MS",
           "MAX_EPOCH", "MAX_XFER_CHUNKS", "MAX_BUCKET_LEASES",
           "TOPOLOGY_PREPARE", "TOPOLOGY_COMMIT", "TOPOLOGY_ABORT",
           "XFER_ACK_TOPOLOGY", "SNAPSHOT_XFER_HEAD_BYTES",
           "MAGIC", "VERSION", "VERSION2"]

MAGIC = 0x4A51
VERSION = 1
VERSION2 = 2
_TYPE_REQUEST = 1
_TYPE_RESPONSE = 2
_TYPE_LEASE_REQ = 3
_TYPE_LEASE_GRANT = 4
_TYPE_LEASE_REVOKE = 5
_TYPE_SNAPSHOT_XFER = 6
_TYPE_XFER_ACK = 7
_TYPE_TOPOLOGY = 8

_HEADER = struct.Struct("!HBBQ")          # magic, version, type, request id
_REQ_KEY_LEN = struct.Struct("!H")
_REQ_COST = struct.Struct("!d")
_RESP_BODY = struct.Struct("!BB")

_FRAME_HEADER = struct.Struct("!HBBH")    # magic, version, type, count
_ENTRY_REQ_HEAD = struct.Struct("!QH")    # request id, key length
_ENTRY_RESP = struct.Struct("!QBB")       # request id, verdict, flags

# Lease entries share the (u64, key-length) head shape of request entries;
# the id means "request id" for REQ/GRANT and "lease id" for REVOKE.
_ENTRY_LEASE_HEAD = struct.Struct("!QH")
_LEASE_REQ_TAIL = struct.Struct("!ddQI")  # credits, return credits,
#                                           return lease id, ttl_ms
_LEASE_GRANT_TAIL = struct.Struct("!QdI")  # lease id, credits, ttl_ms

# Reshard frames (types 6/7/8).  A SNAPSHOT_XFER frame is one chunk of a
# transfer: chunk head, then `count` bucket entries, each carrying its
# live lease-ledger entries.  Holders ride as (host-length, host, port)
# with length 0 meaning "no holder recorded".
_XFER_HEAD = struct.Struct("!QIHH")       # xfer id, epoch, seq, total
_ENTRY_BUCKET_KEY = struct.Struct("!H")   # key length
_ENTRY_BUCKET_TAIL = struct.Struct("!dddH")  # capacity, refill rate,
#                                              credit, lease count
_ENTRY_XFER_LEASE = struct.Struct("!QdIB")   # lease id, granted credits,
#                                              ttl_ms, holder host length
_HOLDER_PORT = struct.Struct("!H")
_ENTRY_ACK = struct.Struct("!QIH")        # xfer id, epoch, seq
_TOPOLOGY_HEAD = struct.Struct("!IB")     # epoch, phase
_ENTRY_ADDR_HOST = struct.Struct("!B")    # host length
_ENTRY_ADDR_PORT = struct.Struct("!H")

#: Maximum encoded key size; u16 length prefix, and a QoS key should always
#: fit one UDP datagram with room to spare.
MAX_KEY_BYTES = 4096

#: Maximum messages per v2 batch frame (u16 count field, but bounded far
#: below it so a worst-case frame of maximum-length keys stays well under
#: the UDP payload limit for typical keys).
MAX_FRAME_MESSAGES = 256

#: Largest UDP payload this codec will emit (IPv4 65535 - 20 IP - 8 UDP).
MAX_DATAGRAM_BYTES = 65507

#: v2 frame header size and fixed per-request-entry overhead (entry head
#: plus cost), for senders budgeting a frame against the datagram limit.
FRAME_HEADER_BYTES = _FRAME_HEADER.size
FRAME_REQ_ENTRY_OVERHEAD = _ENTRY_REQ_HEAD.size + _REQ_COST.size

FLAG_DEFAULT_REPLY = 0x01

#: High bit of the v2 frame type byte: the frame header is followed by a
#: non-zero u64 trace id (see the module docstring).  The low 7 bits stay
#: the frame type, so untraced frames are byte-identical to pre-tracing
#: encodings.
FLAG_FRAME_TRACED = 0x80
_TYPE_MASK = 0x7F
_TRACE_ID = struct.Struct("!Q")
TRACE_ID_BYTES = _TRACE_ID.size

#: Lease TTLs ride the wire as u32 milliseconds; one hour is already far
#: beyond any sane lease and keeps arithmetic clear of u32 overflow.
MAX_LEASE_TTL_MS = 3_600_000

#: Topology epochs ride the wire as u32; epoch 0 means "never resharded"
#: and is a protocol error on the wire (the "bad epoch" fuzz case).
MAX_EPOCH = 2**32 - 1

#: Chunk sequence numbers are u16; a transfer may span up to this many
#: SNAPSHOT_XFER frames.
MAX_XFER_CHUNKS = 2**16 - 1

#: Per-bucket lease-ledger bound inside a SNAPSHOT_XFER entry: one live
#: lease per router is the natural ceiling, and a u16 count field caps
#: the decode loop against forged frames.
MAX_BUCKET_LEASES = 1024

#: Topology phases (TOPOLOGY frame phase byte).
TOPOLOGY_PREPARE = 0
TOPOLOGY_COMMIT = 1
TOPOLOGY_ABORT = 2

#: Reserved xfer id: an XFER_ACK with this id acks a TOPOLOGY frame
#: (``seq`` echoes the phase byte), not a snapshot chunk.
XFER_ACK_TOPOLOGY = 0

#: Fixed chunk-head size of a SNAPSHOT_XFER frame past the v2 header,
#: for senders budgeting chunks against the datagram limit.
SNAPSHOT_XFER_HEAD_BYTES = _XFER_HEAD.size


@dataclass(frozen=True, slots=True)
class QoSRequest:
    """A QoS admission request: ``(request_id, key, cost)``."""

    request_id: int
    key: str
    cost: float = 1.0

    def _validated_key_bytes(self) -> bytes:
        key_bytes = self.key.encode("utf-8")
        if not key_bytes:
            raise ProtocolError("QoS key must be non-empty")
        if len(key_bytes) > MAX_KEY_BYTES:
            raise ProtocolError(f"QoS key exceeds {MAX_KEY_BYTES} bytes")
        if not (0 <= self.request_id < 2**64):
            raise ProtocolError(f"request_id out of u64 range: {self.request_id}")
        if not (math.isfinite(self.cost) and self.cost > 0):
            raise ProtocolError(f"cost must be finite and > 0, got {self.cost}")
        return key_bytes

    def encode(self) -> bytes:
        key_bytes = self._validated_key_bytes()
        key_len = len(key_bytes)
        buf = bytearray(_HEADER.size + _REQ_KEY_LEN.size + key_len
                        + _REQ_COST.size)
        _HEADER.pack_into(buf, 0, MAGIC, VERSION, _TYPE_REQUEST,
                          self.request_id)
        _REQ_KEY_LEN.pack_into(buf, _HEADER.size, key_len)
        offset = _HEADER.size + _REQ_KEY_LEN.size
        buf[offset:offset + key_len] = key_bytes
        _REQ_COST.pack_into(buf, offset + key_len, self.cost)
        return bytes(buf)

    @property
    def frame_entry_size(self) -> int:
        """Encoded size of this request as one v2 frame entry."""
        return (_ENTRY_REQ_HEAD.size + len(self.key.encode("utf-8"))
                + _REQ_COST.size)


@dataclass(frozen=True, slots=True)
class QoSResponse:
    """A QoS admission response: ``(request_id, allowed, is_default_reply)``.

    ``is_default_reply`` marks the router-synthesized reply returned when
    all UDP retries to the QoS server failed (§III-B) — it never comes from
    an actual leaky-bucket decision.
    """

    request_id: int
    allowed: bool
    is_default_reply: bool = False

    def encode(self) -> bytes:
        flags = FLAG_DEFAULT_REPLY if self.is_default_reply else 0
        return (_HEADER.pack(MAGIC, VERSION, _TYPE_RESPONSE, self.request_id)
                + _RESP_BODY.pack(1 if self.allowed else 0, flags))


def _validated_lease_key(key: str) -> bytes:
    key_bytes = key.encode("utf-8")
    if not key_bytes:
        raise ProtocolError("QoS key must be non-empty")
    if len(key_bytes) > MAX_KEY_BYTES:
        raise ProtocolError(f"QoS key exceeds {MAX_KEY_BYTES} bytes")
    return key_bytes


def _check_u64(value: int, what: str) -> None:
    if not (0 <= value < 2**64):
        raise ProtocolError(f"{what} out of u64 range: {value}")


def _check_credits(value: float, what: str) -> None:
    if not (math.isfinite(value) and value >= 0):
        raise ProtocolError(f"{what} must be finite and >= 0, got {value}")


def _check_ttl(ttl_ms: int) -> None:
    if not (0 <= ttl_ms <= MAX_LEASE_TTL_MS):
        raise ProtocolError(f"ttl_ms out of range 0..{MAX_LEASE_TTL_MS}: "
                            f"{ttl_ms}")


@dataclass(frozen=True, slots=True)
class LeaseRequest:
    """A credit-lease request (v2 LEASE_REQ, router→server).

    ``credits`` is the fresh grant the router wants (0 = pure return);
    ``return_credits``/``return_lease_id`` hand back the unspent
    remainder of an expiring lease, so a renewal is one frame.
    """

    request_id: int
    key: str
    credits: float
    ttl_ms: int
    return_credits: float = 0.0
    return_lease_id: int = 0

    def validate(self) -> bytes:
        key_bytes = _validated_lease_key(self.key)
        _check_u64(self.request_id, "request_id")
        _check_u64(self.return_lease_id, "return_lease_id")
        _check_credits(self.credits, "credits")
        _check_credits(self.return_credits, "return_credits")
        _check_ttl(self.ttl_ms)
        if self.return_credits > 0 and self.return_lease_id == 0:
            raise ProtocolError("return_credits without a return_lease_id")
        return key_bytes


@dataclass(frozen=True, slots=True)
class LeaseGrant:
    """A credit-lease grant (v2 LEASE_GRANT, server→router).

    ``credits == 0`` with ``lease_id == 0`` is a refusal — the router
    keeps using the wire path for that key.
    """

    request_id: int
    key: str
    lease_id: int
    credits: float
    ttl_ms: int

    def validate(self) -> bytes:
        key_bytes = _validated_lease_key(self.key)
        _check_u64(self.request_id, "request_id")
        _check_u64(self.lease_id, "lease_id")
        _check_credits(self.credits, "credits")
        _check_ttl(self.ttl_ms)
        if (self.credits > 0) != (self.lease_id != 0):
            raise ProtocolError("grant must carry both a nonzero lease_id "
                                "and credits > 0, or neither (refusal)")
        return key_bytes


@dataclass(frozen=True, slots=True)
class LeaseRevoke:
    """A credit-lease revocation (v2 LEASE_REVOKE, server→router)."""

    lease_id: int
    key: str

    def validate(self) -> bytes:
        key_bytes = _validated_lease_key(self.key)
        _check_u64(self.lease_id, "lease_id")
        if self.lease_id == 0:
            raise ProtocolError("revoke must name a nonzero lease_id")
        return key_bytes


def _check_epoch(epoch: int) -> None:
    if not (1 <= epoch <= MAX_EPOCH):
        raise ProtocolError(f"epoch out of range 1..{MAX_EPOCH}: {epoch}")


def _validated_holder(holder: "tuple | None") -> "tuple[bytes, int]":
    """Validate a lease holder as ``(host_bytes, port)`` for the wire."""
    if holder is None:
        return b"", 0
    try:
        host, port = holder
        host_bytes = host.encode("utf-8")
    except (TypeError, ValueError, AttributeError, UnicodeEncodeError) as exc:
        raise ProtocolError(f"holder must be a (host, port) pair: {exc}")
    if not (0 < len(host_bytes) <= 255):
        raise ProtocolError(f"holder host must encode to 1..255 bytes")
    if not (0 < port < 65536):
        raise ProtocolError(f"holder port out of range 1..65535: {port}")
    return host_bytes, port


def _validated_bucket(snap: BucketSnapshot) -> bytes:
    """Validate one bucket snapshot for the wire; returns its key bytes."""
    key_bytes = _validated_lease_key(snap.key)
    if not (math.isfinite(snap.capacity) and snap.capacity > 0):
        raise ProtocolError(
            f"bucket capacity must be finite and > 0, got {snap.capacity}")
    _check_credits(snap.refill_rate, "bucket refill_rate")
    _check_credits(snap.credit, "bucket credit")
    if len(snap.leases) > MAX_BUCKET_LEASES:
        raise ProtocolError(f"bucket carries {len(snap.leases)} leases, "
                            f"over the {MAX_BUCKET_LEASES} wire bound")
    for lease in snap.leases:
        _check_u64(lease.lease_id, "lease_id")
        if lease.lease_id == 0:
            raise ProtocolError("snapshot lease must name a nonzero lease_id")
        _check_credits(lease.granted, "lease granted credits")
        _validated_holder(lease.holder)
    return key_bytes


def _lease_ttl_ms(ttl_remaining: float) -> int:
    """Relative lease TTL (seconds) as wire milliseconds, clamped sane."""
    if not math.isfinite(ttl_remaining):
        raise ProtocolError(
            f"lease ttl_remaining must be finite, got {ttl_remaining}")
    return max(0, min(MAX_LEASE_TTL_MS, int(ttl_remaining * 1000.0)))


def snapshot_entry_size(snap: BucketSnapshot) -> int:
    """Encoded size of one bucket snapshot as a SNAPSHOT_XFER entry.

    Senders use this to pack chunks up to the datagram budget without
    trial-encoding.
    """
    size = (_ENTRY_BUCKET_KEY.size + len(snap.key.encode("utf-8"))
            + _ENTRY_BUCKET_TAIL.size)
    for lease in snap.leases:
        host_bytes, _ = _validated_holder(lease.holder)
        size += _ENTRY_XFER_LEASE.size + len(host_bytes) + _HOLDER_PORT.size
    return size


@dataclass(frozen=True, slots=True)
class SnapshotChunk:
    """One SNAPSHOT_XFER chunk (v2 type 6, old owner→new owner).

    ``seq``/``total`` order the chunks of one transfer ``xfer_id``; every
    chunk is independently ack'able (:class:`XferAck`) and idempotently
    re-appliable — the receiver deduplicates ``(xfer_id, seq)`` so a
    retransmit after a lost ack never double-restores credit.
    """

    xfer_id: int
    epoch: int
    seq: int
    total: int
    buckets: "tuple[BucketSnapshot, ...]"

    def validate(self) -> "list[bytes]":
        _check_u64(self.xfer_id, "xfer_id")
        if self.xfer_id == XFER_ACK_TOPOLOGY:
            raise ProtocolError(
                "xfer_id 0 is reserved for topology acks")
        _check_epoch(self.epoch)
        if not (1 <= self.total <= MAX_XFER_CHUNKS):
            raise ProtocolError(
                f"chunk total out of range 1..{MAX_XFER_CHUNKS}: {self.total}")
        if not (0 <= self.seq < self.total):
            raise ProtocolError(
                f"chunk seq {self.seq} outside 0..{self.total - 1}")
        if not (1 <= len(self.buckets) <= MAX_FRAME_MESSAGES):
            raise ProtocolError(
                f"chunk must carry 1..{MAX_FRAME_MESSAGES} buckets, "
                f"got {len(self.buckets)}")
        return [_validated_bucket(snap) for snap in self.buckets]


@dataclass(frozen=True, slots=True)
class XferAck:
    """A chunk acknowledgement (v2 type 7, new owner→sender).

    ``xfer_id == XFER_ACK_TOPOLOGY`` (0) acks a TOPOLOGY frame instead;
    ``seq`` then echoes the acknowledged phase byte.
    """

    xfer_id: int
    epoch: int
    seq: int

    def validate(self) -> None:
        _check_u64(self.xfer_id, "xfer_id")
        _check_epoch(self.epoch)
        limit = (TOPOLOGY_ABORT if self.xfer_id == XFER_ACK_TOPOLOGY
                 else MAX_XFER_CHUNKS - 1)
        if not (0 <= self.seq <= limit):
            raise ProtocolError(f"ack seq out of range 0..{limit}: {self.seq}")


@dataclass(frozen=True, slots=True)
class TopologyUpdate:
    """An epoch-numbered topology announcement (v2 type 8).

    ``backends`` is the full ordered backend address list of the *new*
    map — position is the partition index, so a receiver re-derives key
    ownership as ``crc32(key) % len(backends)`` exactly like the router.
    """

    epoch: int
    phase: int
    backends: "tuple[tuple[str, int], ...]"

    def validate(self) -> "list[tuple[bytes, int]]":
        _check_epoch(self.epoch)
        if self.phase not in (TOPOLOGY_PREPARE, TOPOLOGY_COMMIT,
                              TOPOLOGY_ABORT):
            raise ProtocolError(f"unknown topology phase {self.phase}")
        if not (1 <= len(self.backends) <= MAX_FRAME_MESSAGES):
            raise ProtocolError(
                f"topology must carry 1..{MAX_FRAME_MESSAGES} backends, "
                f"got {len(self.backends)}")
        parts: "list[tuple[bytes, int]]" = []
        for backend in self.backends:
            host_bytes, port = _validated_holder(backend)
            if not host_bytes:
                raise ProtocolError("topology backend must name a host")
            parts.append((host_bytes, port))
        return parts


def decode(datagram: bytes) -> "QoSRequest | QoSResponse":
    """Decode a datagram into a request or response.

    Raises :class:`~repro.core.errors.ProtocolError` on malformed input —
    a real deployment must survive stray packets on its UDP port.
    """
    if len(datagram) < _HEADER.size:
        raise ProtocolError(f"datagram too short ({len(datagram)} bytes)")
    magic, version, mtype, request_id = _HEADER.unpack_from(datagram)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04X}")
    if version != VERSION:
        raise ProtocolError(f"unsupported protocol version {version}")
    body = datagram[_HEADER.size:]
    if mtype == _TYPE_REQUEST:
        if len(body) < _REQ_KEY_LEN.size:
            raise ProtocolError("request truncated before key length")
        (key_len,) = _REQ_KEY_LEN.unpack_from(body)
        expected = _REQ_KEY_LEN.size + key_len + _REQ_COST.size
        if len(body) != expected:
            raise ProtocolError(f"request body length {len(body)} != {expected}")
        key_bytes = body[_REQ_KEY_LEN.size:_REQ_KEY_LEN.size + key_len]
        try:
            key = key_bytes.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"key is not valid UTF-8: {exc}") from exc
        if not key:
            raise ProtocolError("QoS key must be non-empty")
        (cost,) = _REQ_COST.unpack_from(body, _REQ_KEY_LEN.size + key_len)
        if not (math.isfinite(cost) and cost > 0):
            raise ProtocolError(f"cost must be finite and > 0, got {cost}")
        return QoSRequest(request_id=request_id, key=key, cost=cost)
    if mtype == _TYPE_RESPONSE:
        if len(body) != _RESP_BODY.size:
            raise ProtocolError(f"response body length {len(body)} != {_RESP_BODY.size}")
        verdict, flags = _RESP_BODY.unpack_from(body)
        if verdict not in (0, 1):
            raise ProtocolError(f"bad verdict byte {verdict}")
        return QoSResponse(request_id=request_id, allowed=bool(verdict),
                           is_default_reply=bool(flags & FLAG_DEFAULT_REPLY))
    raise ProtocolError(f"unknown message type {mtype}")


# --------------------------------------------------------------------- #
# version-2 batch frames
# --------------------------------------------------------------------- #

def encode_request_frame(requests: Sequence[QoSRequest],
                         trace_id: int = 0) -> bytes:
    """Encode up to :data:`MAX_FRAME_MESSAGES` requests as one v2 frame.

    Packs into a single preallocated buffer with ``pack_into`` — one
    allocation for the whole datagram, no per-message fragments.  A
    non-zero ``trace_id`` sets the TRACED flag and prepends the id.
    """
    return encode_request_frame_parts(
        [(r.request_id, r._validated_key_bytes(), r.cost) for r in requests],
        trace_id=trace_id)


def encode_request_frame_parts(
    parts: Sequence[tuple[int, bytes, float]],
    trace_id: int = 0,
) -> bytes:
    """Encode pre-validated ``(request_id, key_bytes, cost)`` triples.

    The hot-path form of :func:`encode_request_frame`: callers that
    already hold the encoded key bytes (the channel caches them per
    in-flight exchange) skip re-encoding every key on every send and
    retry.
    """
    count = len(parts)
    if not (1 <= count <= MAX_FRAME_MESSAGES):
        raise ProtocolError(
            f"frame must carry 1..{MAX_FRAME_MESSAGES} messages, got {count}")
    if not (0 <= trace_id < 2**64):
        raise ProtocolError(f"trace_id out of u64 range: {trace_id}")
    traced = trace_id != 0
    size = (_FRAME_HEADER.size + (TRACE_ID_BYTES if traced else 0)
            + sum(_ENTRY_REQ_HEAD.size + len(kb) + _REQ_COST.size
                  for _, kb, _ in parts))
    if size > MAX_DATAGRAM_BYTES:
        raise ProtocolError(f"frame of {count} requests is {size} bytes, "
                            f"over the {MAX_DATAGRAM_BYTES}-byte datagram limit")
    buf = bytearray(size)
    mtype = _TYPE_REQUEST | (FLAG_FRAME_TRACED if traced else 0)
    _FRAME_HEADER.pack_into(buf, 0, MAGIC, VERSION2, mtype, count)
    offset = _FRAME_HEADER.size
    if traced:
        _TRACE_ID.pack_into(buf, offset, trace_id)
        offset += TRACE_ID_BYTES
    for request_id, key_bytes, cost in parts:
        key_len = len(key_bytes)
        _ENTRY_REQ_HEAD.pack_into(buf, offset, request_id, key_len)
        offset += _ENTRY_REQ_HEAD.size
        buf[offset:offset + key_len] = key_bytes
        offset += key_len
        _REQ_COST.pack_into(buf, offset, cost)
        offset += _REQ_COST.size
    return bytes(buf)


def encode_response_frame(responses: Sequence[QoSResponse],
                          trace_id: int = 0) -> bytes:
    """Encode up to :data:`MAX_FRAME_MESSAGES` responses as one v2 frame.

    A non-zero ``trace_id`` echoes the request frame's trace id back
    (servers mirror the TRACED flag so the propagation is observable on
    both directions of the wire).
    """
    count = len(responses)
    if not (1 <= count <= MAX_FRAME_MESSAGES):
        raise ProtocolError(
            f"frame must carry 1..{MAX_FRAME_MESSAGES} messages, got {count}")
    if not (0 <= trace_id < 2**64):
        raise ProtocolError(f"trace_id out of u64 range: {trace_id}")
    traced = trace_id != 0
    buf = bytearray(_FRAME_HEADER.size + (TRACE_ID_BYTES if traced else 0)
                    + count * _ENTRY_RESP.size)
    mtype = _TYPE_RESPONSE | (FLAG_FRAME_TRACED if traced else 0)
    _FRAME_HEADER.pack_into(buf, 0, MAGIC, VERSION2, mtype, count)
    offset = _FRAME_HEADER.size
    if traced:
        _TRACE_ID.pack_into(buf, offset, trace_id)
        offset += TRACE_ID_BYTES
    for response in responses:
        if not (0 <= response.request_id < 2**64):
            raise ProtocolError(
                f"request_id out of u64 range: {response.request_id}")
        flags = FLAG_DEFAULT_REPLY if response.is_default_reply else 0
        _ENTRY_RESP.pack_into(buf, offset, response.request_id,
                              1 if response.allowed else 0, flags)
        offset += _ENTRY_RESP.size
    return bytes(buf)


def encode_response_frame_bits(request_ids: Sequence[int], verdicts: int,
                               trace_id: int = 0) -> bytes:
    """Encode a response frame straight from a packed verdict bitmap.

    The server-side hot-path form of :func:`encode_response_frame`: bit
    ``i`` of ``verdicts`` is the admission verdict for ``request_ids[i]``
    (set = admitted), exactly as ``AdmissionController.check_batch``
    returns it, so a whole frame's replies are packed without building a
    ``QoSResponse`` object per entry.  The encoding is byte-identical to
    :func:`encode_response_frame` over the equivalent response list (no
    entry carries the default-reply flag — servers never default-reply).
    """
    count = len(request_ids)
    if not (1 <= count <= MAX_FRAME_MESSAGES):
        raise ProtocolError(
            f"frame must carry 1..{MAX_FRAME_MESSAGES} messages, got {count}")
    if not (0 <= trace_id < 2**64):
        raise ProtocolError(f"trace_id out of u64 range: {trace_id}")
    traced = trace_id != 0
    buf = bytearray(_FRAME_HEADER.size + (TRACE_ID_BYTES if traced else 0)
                    + count * _ENTRY_RESP.size)
    mtype = _TYPE_RESPONSE | (FLAG_FRAME_TRACED if traced else 0)
    _FRAME_HEADER.pack_into(buf, 0, MAGIC, VERSION2, mtype, count)
    offset = _FRAME_HEADER.size
    if traced:
        _TRACE_ID.pack_into(buf, offset, trace_id)
        offset += TRACE_ID_BYTES
    pack_entry = _ENTRY_RESP.pack_into
    entry_size = _ENTRY_RESP.size
    for pos, request_id in enumerate(request_ids):
        if not (0 <= request_id < 2**64):
            raise ProtocolError(
                f"request_id out of u64 range: {request_id}")
        pack_entry(buf, offset, request_id, (verdicts >> pos) & 1, 0)
        offset += entry_size
    return bytes(buf)


def _lease_frame_prologue(count: int, trace_id: int, body_size: int,
                          mtype: int) -> tuple[bytearray, int]:
    """Validate the shared frame bounds and pack the v2 header.

    Returns ``(buffer, offset)`` with ``offset`` past the header (and
    trace id, when non-zero).
    """
    if not (1 <= count <= MAX_FRAME_MESSAGES):
        raise ProtocolError(
            f"frame must carry 1..{MAX_FRAME_MESSAGES} messages, got {count}")
    if not (0 <= trace_id < 2**64):
        raise ProtocolError(f"trace_id out of u64 range: {trace_id}")
    traced = trace_id != 0
    size = (_FRAME_HEADER.size + (TRACE_ID_BYTES if traced else 0)
            + body_size)
    if size > MAX_DATAGRAM_BYTES:
        raise ProtocolError(f"frame of {count} entries is {size} "
                            f"bytes, over the {MAX_DATAGRAM_BYTES}-byte "
                            f"datagram limit")
    buf = bytearray(size)
    _FRAME_HEADER.pack_into(buf, 0, MAGIC, VERSION2,
                            mtype | (FLAG_FRAME_TRACED if traced else 0),
                            count)
    offset = _FRAME_HEADER.size
    if traced:
        _TRACE_ID.pack_into(buf, offset, trace_id)
        offset += TRACE_ID_BYTES
    return buf, offset


def encode_lease_request_frame(requests: Sequence[LeaseRequest],
                               trace_id: int = 0) -> bytes:
    """Encode LEASE_REQ messages as one v2 type-3 frame."""
    parts = [(r, r.validate()) for r in requests]
    body = sum(_ENTRY_LEASE_HEAD.size + len(kb) + _LEASE_REQ_TAIL.size
               for _, kb in parts)
    buf, offset = _lease_frame_prologue(len(parts), trace_id, body,
                                        _TYPE_LEASE_REQ)
    for req, key_bytes in parts:
        key_len = len(key_bytes)
        _ENTRY_LEASE_HEAD.pack_into(buf, offset, req.request_id, key_len)
        offset += _ENTRY_LEASE_HEAD.size
        buf[offset:offset + key_len] = key_bytes
        offset += key_len
        _LEASE_REQ_TAIL.pack_into(buf, offset, req.credits,
                                  req.return_credits, req.return_lease_id,
                                  req.ttl_ms)
        offset += _LEASE_REQ_TAIL.size
    return bytes(buf)


def encode_lease_grant_frame(grants: Sequence[LeaseGrant],
                             trace_id: int = 0) -> bytes:
    """Encode LEASE_GRANT messages as one v2 type-4 frame."""
    parts = [(g, g.validate()) for g in grants]
    body = sum(_ENTRY_LEASE_HEAD.size + len(kb) + _LEASE_GRANT_TAIL.size
               for _, kb in parts)
    buf, offset = _lease_frame_prologue(len(parts), trace_id, body,
                                        _TYPE_LEASE_GRANT)
    for grant, key_bytes in parts:
        key_len = len(key_bytes)
        _ENTRY_LEASE_HEAD.pack_into(buf, offset, grant.request_id, key_len)
        offset += _ENTRY_LEASE_HEAD.size
        buf[offset:offset + key_len] = key_bytes
        offset += key_len
        _LEASE_GRANT_TAIL.pack_into(buf, offset, grant.lease_id,
                                    grant.credits, grant.ttl_ms)
        offset += _LEASE_GRANT_TAIL.size
    return bytes(buf)


def encode_lease_revoke_frame(revokes: Sequence[LeaseRevoke],
                              trace_id: int = 0) -> bytes:
    """Encode LEASE_REVOKE messages as one v2 type-5 frame."""
    parts = [(r, r.validate()) for r in revokes]
    body = sum(_ENTRY_LEASE_HEAD.size + len(kb) for _, kb in parts)
    buf, offset = _lease_frame_prologue(len(parts), trace_id, body,
                                        _TYPE_LEASE_REVOKE)
    for revoke, key_bytes in parts:
        key_len = len(key_bytes)
        _ENTRY_LEASE_HEAD.pack_into(buf, offset, revoke.lease_id, key_len)
        offset += _ENTRY_LEASE_HEAD.size
        buf[offset:offset + key_len] = key_bytes
        offset += key_len
    return bytes(buf)


def encode_snapshot_xfer_frame(chunk: SnapshotChunk,
                               trace_id: int = 0) -> bytes:
    """Encode one SNAPSHOT_XFER chunk as a v2 type-6 frame.

    The frame ``count`` is the number of bucket entries; the chunk head
    ``(xfer_id, epoch, seq, total)`` sits between the v2 header and the
    entries.  Raises :class:`ProtocolError` when the chunk would exceed
    :data:`MAX_DATAGRAM_BYTES` — senders size chunks with
    :func:`snapshot_entry_size` before encoding.
    """
    key_parts = chunk.validate()
    body = _XFER_HEAD.size + sum(
        snapshot_entry_size(snap) for snap in chunk.buckets)
    buf, offset = _lease_frame_prologue(len(chunk.buckets), trace_id, body,
                                        _TYPE_SNAPSHOT_XFER)
    _XFER_HEAD.pack_into(buf, offset, chunk.xfer_id, chunk.epoch,
                         chunk.seq, chunk.total)
    offset += _XFER_HEAD.size
    for snap, key_bytes in zip(chunk.buckets, key_parts):
        key_len = len(key_bytes)
        _ENTRY_BUCKET_KEY.pack_into(buf, offset, key_len)
        offset += _ENTRY_BUCKET_KEY.size
        buf[offset:offset + key_len] = key_bytes
        offset += key_len
        _ENTRY_BUCKET_TAIL.pack_into(buf, offset, snap.capacity,
                                     snap.refill_rate, snap.credit,
                                     len(snap.leases))
        offset += _ENTRY_BUCKET_TAIL.size
        for lease in snap.leases:
            host_bytes, port = _validated_holder(lease.holder)
            _ENTRY_XFER_LEASE.pack_into(buf, offset, lease.lease_id,
                                        lease.granted,
                                        _lease_ttl_ms(lease.ttl_remaining),
                                        len(host_bytes))
            offset += _ENTRY_XFER_LEASE.size
            buf[offset:offset + len(host_bytes)] = host_bytes
            offset += len(host_bytes)
            _HOLDER_PORT.pack_into(buf, offset, port)
            offset += _HOLDER_PORT.size
    return bytes(buf)


def encode_xfer_ack_frame(acks: "Sequence[XferAck]",
                          trace_id: int = 0) -> bytes:
    """Encode XFER_ACK messages as one v2 type-7 frame."""
    for ack in acks:
        ack.validate()
    body = len(acks) * _ENTRY_ACK.size
    buf, offset = _lease_frame_prologue(len(acks), trace_id, body,
                                        _TYPE_XFER_ACK)
    for ack in acks:
        _ENTRY_ACK.pack_into(buf, offset, ack.xfer_id, ack.epoch, ack.seq)
        offset += _ENTRY_ACK.size
    return bytes(buf)


def encode_topology_frame(update: TopologyUpdate,
                          trace_id: int = 0) -> bytes:
    """Encode one TOPOLOGY announcement as a v2 type-8 frame.

    The frame ``count`` is the number of backend address entries.
    """
    parts = update.validate()
    body = _TOPOLOGY_HEAD.size + sum(
        _ENTRY_ADDR_HOST.size + len(host_bytes) + _ENTRY_ADDR_PORT.size
        for host_bytes, _ in parts)
    buf, offset = _lease_frame_prologue(len(parts), trace_id, body,
                                        _TYPE_TOPOLOGY)
    _TOPOLOGY_HEAD.pack_into(buf, offset, update.epoch, update.phase)
    offset += _TOPOLOGY_HEAD.size
    for host_bytes, port in parts:
        _ENTRY_ADDR_HOST.pack_into(buf, offset, len(host_bytes))
        offset += _ENTRY_ADDR_HOST.size
        buf[offset:offset + len(host_bytes)] = host_bytes
        offset += len(host_bytes)
        _ENTRY_ADDR_PORT.pack_into(buf, offset, port)
        offset += _ENTRY_ADDR_PORT.size
    return bytes(buf)


def decode_frame(datagram: bytes) -> "list[QoSRequest] | list[QoSResponse]":
    """Decode a v2 batch frame into its message list (trace id dropped)."""
    return decode_frame_traced(datagram)[1]


def decode_frame_traced(
    datagram: bytes,
) -> "tuple[int, list[QoSRequest] | list[QoSResponse]]":
    """Decode a v2 batch frame into ``(trace_id, messages)``.

    ``trace_id`` is 0 for untraced frames.  Zero-copy: entries are
    unpacked from a ``memoryview`` with ``unpack_from``; the only
    per-entry allocation is the decoded key string itself.  Raises
    :class:`ProtocolError` on any malformation, including a declared
    count that disagrees with the payload length and a TRACED flag with
    a missing or zero trace id.
    """
    view = memoryview(datagram)
    total = len(view)
    if total < _FRAME_HEADER.size:
        raise ProtocolError(f"frame too short ({total} bytes)")
    magic, version, mtype, count = _FRAME_HEADER.unpack_from(view)
    if magic != MAGIC:
        raise ProtocolError(f"bad magic 0x{magic:04X}")
    if version != VERSION2:
        raise ProtocolError(f"not a v2 frame (version {version})")
    if not (1 <= count <= MAX_FRAME_MESSAGES):
        raise ProtocolError(f"frame count {count} out of range "
                            f"1..{MAX_FRAME_MESSAGES}")
    traced = bool(mtype & FLAG_FRAME_TRACED)
    mtype &= _TYPE_MASK
    offset = _FRAME_HEADER.size
    trace_id = 0
    if traced:
        if total < offset + TRACE_ID_BYTES:
            raise ProtocolError("traced frame truncated before trace id")
        (trace_id,) = _TRACE_ID.unpack_from(view, offset)
        if trace_id == 0:
            raise ProtocolError("traced frame carries a zero trace id")
        offset += TRACE_ID_BYTES
    if mtype == _TYPE_REQUEST:
        requests: list[QoSRequest] = []
        for _ in range(count):
            if offset + _ENTRY_REQ_HEAD.size > total:
                raise ProtocolError("request frame truncated in entry header")
            request_id, key_len = _ENTRY_REQ_HEAD.unpack_from(view, offset)
            offset += _ENTRY_REQ_HEAD.size
            if not (0 < key_len <= MAX_KEY_BYTES):
                raise ProtocolError(f"bad key length {key_len}")
            if offset + key_len + _REQ_COST.size > total:
                raise ProtocolError("request frame truncated in entry body")
            try:
                key = str(view[offset:offset + key_len], "utf-8")
            except UnicodeDecodeError as exc:
                raise ProtocolError(f"key is not valid UTF-8: {exc}") from exc
            offset += key_len
            (cost,) = _REQ_COST.unpack_from(view, offset)
            offset += _REQ_COST.size
            if not (math.isfinite(cost) and cost > 0):
                raise ProtocolError(f"cost must be finite and > 0, got {cost}")
            requests.append(QoSRequest(request_id, key, cost))
        if offset != total:
            raise ProtocolError(
                f"frame count {count} disagrees with payload: "
                f"{total - offset} trailing bytes")
        return trace_id, requests
    if mtype == _TYPE_RESPONSE:
        if total != offset + count * _ENTRY_RESP.size:
            raise ProtocolError(
                f"response frame length {total} disagrees with count {count}")
        responses: list[QoSResponse] = []
        for _ in range(count):
            request_id, verdict, flags = _ENTRY_RESP.unpack_from(view, offset)
            offset += _ENTRY_RESP.size
            if verdict not in (0, 1):
                raise ProtocolError(f"bad verdict byte {verdict}")
            responses.append(QoSResponse(
                request_id, bool(verdict),
                is_default_reply=bool(flags & FLAG_DEFAULT_REPLY)))
        return trace_id, responses
    if mtype in (_TYPE_LEASE_REQ, _TYPE_LEASE_GRANT, _TYPE_LEASE_REVOKE):
        return trace_id, _decode_lease_entries(view, offset, total, count,
                                               mtype)
    if mtype == _TYPE_SNAPSHOT_XFER:
        return trace_id, [_decode_snapshot_chunk(view, offset, total, count)]
    if mtype == _TYPE_XFER_ACK:
        return trace_id, _decode_xfer_acks(view, offset, total, count)
    if mtype == _TYPE_TOPOLOGY:
        return trace_id, [_decode_topology(view, offset, total, count)]
    raise ProtocolError(f"unknown frame type {mtype}")


def _decode_lease_entries(view: memoryview, offset: int, total: int,
                          count: int, mtype: int) -> list:
    """Decode the entries of a lease frame (types 3/4/5)."""
    tail = (_LEASE_REQ_TAIL if mtype == _TYPE_LEASE_REQ
            else _LEASE_GRANT_TAIL if mtype == _TYPE_LEASE_GRANT
            else None)
    tail_size = tail.size if tail is not None else 0
    messages: list = []
    for _ in range(count):
        if offset + _ENTRY_LEASE_HEAD.size > total:
            raise ProtocolError("lease frame truncated in entry header")
        head_id, key_len = _ENTRY_LEASE_HEAD.unpack_from(view, offset)
        offset += _ENTRY_LEASE_HEAD.size
        if not (0 < key_len <= MAX_KEY_BYTES):
            raise ProtocolError(f"bad key length {key_len}")
        if offset + key_len + tail_size > total:
            raise ProtocolError("lease frame truncated in entry body")
        try:
            key = str(view[offset:offset + key_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"key is not valid UTF-8: {exc}") from exc
        offset += key_len
        message: "LeaseRequest | LeaseGrant | LeaseRevoke"
        if mtype == _TYPE_LEASE_REQ:
            credits, returned, return_lease_id, ttl_ms = \
                _LEASE_REQ_TAIL.unpack_from(view, offset)
            message = LeaseRequest(head_id, key, credits, ttl_ms,
                                   return_credits=returned,
                                   return_lease_id=return_lease_id)
        elif mtype == _TYPE_LEASE_GRANT:
            lease_id, credits, ttl_ms = \
                _LEASE_GRANT_TAIL.unpack_from(view, offset)
            message = LeaseGrant(head_id, key, lease_id, credits, ttl_ms)
        else:
            message = LeaseRevoke(head_id, key)
        offset += tail_size
        message.validate()
        messages.append(message)
    if offset != total:
        raise ProtocolError(
            f"lease frame count {count} disagrees with payload: "
            f"{total - offset} trailing bytes")
    return messages


def _decode_snapshot_chunk(view: memoryview, offset: int, total: int,
                           count: int) -> SnapshotChunk:
    """Decode a SNAPSHOT_XFER body; ``count`` is the bucket-entry count."""
    if offset + _XFER_HEAD.size > total:
        raise ProtocolError("snapshot frame truncated in chunk head")
    xfer_id, epoch, seq, chunk_total = _XFER_HEAD.unpack_from(view, offset)
    offset += _XFER_HEAD.size
    buckets: "list[BucketSnapshot]" = []
    for _ in range(count):
        if offset + _ENTRY_BUCKET_KEY.size > total:
            raise ProtocolError("snapshot frame truncated in bucket header")
        (key_len,) = _ENTRY_BUCKET_KEY.unpack_from(view, offset)
        offset += _ENTRY_BUCKET_KEY.size
        if not (0 < key_len <= MAX_KEY_BYTES):
            raise ProtocolError(f"bad key length {key_len}")
        if offset + key_len + _ENTRY_BUCKET_TAIL.size > total:
            raise ProtocolError("snapshot frame truncated in bucket body")
        try:
            key = str(view[offset:offset + key_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"key is not valid UTF-8: {exc}") from exc
        offset += key_len
        capacity, refill_rate, credit, n_leases = \
            _ENTRY_BUCKET_TAIL.unpack_from(view, offset)
        offset += _ENTRY_BUCKET_TAIL.size
        if n_leases > MAX_BUCKET_LEASES:
            raise ProtocolError(f"bucket carries {n_leases} leases, over "
                                f"the {MAX_BUCKET_LEASES} wire bound")
        leases: "list[LeaseSnapshot]" = []
        for _ in range(n_leases):
            if offset + _ENTRY_XFER_LEASE.size > total:
                raise ProtocolError("snapshot frame truncated in lease entry")
            lease_id, granted, ttl_ms, host_len = \
                _ENTRY_XFER_LEASE.unpack_from(view, offset)
            offset += _ENTRY_XFER_LEASE.size
            if offset + host_len + _HOLDER_PORT.size > total:
                raise ProtocolError("snapshot frame truncated in lease holder")
            holder: "tuple | None" = None
            host = ""
            if host_len:
                try:
                    host = str(view[offset:offset + host_len], "utf-8")
                except UnicodeDecodeError as exc:
                    raise ProtocolError(
                        f"holder host is not valid UTF-8: {exc}") from exc
            offset += host_len
            (port,) = _HOLDER_PORT.unpack_from(view, offset)
            offset += _HOLDER_PORT.size
            if host_len:
                if not (0 < port < 65536):
                    raise ProtocolError(
                        f"holder port out of range 1..65535: {port}")
                holder = (host, port)
            elif port:
                raise ProtocolError("holder port without a holder host")
            _check_ttl(ttl_ms)
            leases.append(LeaseSnapshot(lease_id, granted, ttl_ms / 1000.0,
                                        holder=holder))
        buckets.append(BucketSnapshot(key, capacity, refill_rate, credit,
                                      leases=tuple(leases)))
    if offset != total:
        raise ProtocolError(
            f"snapshot frame count {count} disagrees with payload: "
            f"{total - offset} trailing bytes")
    chunk = SnapshotChunk(xfer_id, epoch, seq, chunk_total, tuple(buckets))
    chunk.validate()
    return chunk


def _decode_xfer_acks(view: memoryview, offset: int, total: int,
                      count: int) -> "list[XferAck]":
    """Decode an XFER_ACK body (fixed-size entries)."""
    if total != offset + count * _ENTRY_ACK.size:
        raise ProtocolError(
            f"ack frame length {total} disagrees with count {count}")
    acks: "list[XferAck]" = []
    for _ in range(count):
        xfer_id, epoch, seq = _ENTRY_ACK.unpack_from(view, offset)
        offset += _ENTRY_ACK.size
        ack = XferAck(xfer_id, epoch, seq)
        ack.validate()
        acks.append(ack)
    return acks


def _decode_topology(view: memoryview, offset: int, total: int,
                     count: int) -> TopologyUpdate:
    """Decode a TOPOLOGY body; ``count`` is the backend-address count."""
    if offset + _TOPOLOGY_HEAD.size > total:
        raise ProtocolError("topology frame truncated in head")
    epoch, phase = _TOPOLOGY_HEAD.unpack_from(view, offset)
    offset += _TOPOLOGY_HEAD.size
    backends: "list[tuple[str, int]]" = []
    for _ in range(count):
        if offset + _ENTRY_ADDR_HOST.size > total:
            raise ProtocolError("topology frame truncated in address header")
        (host_len,) = _ENTRY_ADDR_HOST.unpack_from(view, offset)
        offset += _ENTRY_ADDR_HOST.size
        if host_len == 0:
            raise ProtocolError("topology backend must name a host")
        if offset + host_len + _ENTRY_ADDR_PORT.size > total:
            raise ProtocolError("topology frame truncated in address body")
        try:
            host = str(view[offset:offset + host_len], "utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"backend host is not valid UTF-8: {exc}") \
                from exc
        offset += host_len
        (port,) = _ENTRY_ADDR_PORT.unpack_from(view, offset)
        offset += _ENTRY_ADDR_PORT.size
        backends.append((host, port))
    if offset != total:
        raise ProtocolError(
            f"topology frame count {count} disagrees with payload: "
            f"{total - offset} trailing bytes")
    update = TopologyUpdate(epoch, phase, tuple(backends))
    update.validate()
    return update


def decode_any(datagram: bytes) -> "tuple[int, list]":
    """Decode a datagram of either protocol version.

    Returns ``(version, messages)`` — a one-element list for a v1
    datagram, the full message list for a v2 frame.  The version lets a
    server mirror the sender: v1 requests get v1 responses, v2 frames get
    one v2 response frame.
    """
    version, _, messages = decode_any_traced(datagram)
    return version, messages


def decode_any_traced(datagram: bytes) -> "tuple[int, int, list]":
    """Decode a datagram of either version into
    ``(version, trace_id, messages)``.

    ``trace_id`` is 0 for v1 datagrams (the v1 layout has no room for
    it) and for untraced v2 frames.  Receivers that propagate traces use
    this form; :func:`decode_any` keeps the pre-tracing surface.
    """
    if len(datagram) < 4:
        raise ProtocolError(f"datagram too short ({len(datagram)} bytes)")
    version = datagram[2]
    if version == VERSION:
        return VERSION, 0, [decode(datagram)]
    if version == VERSION2:
        trace_id, messages = decode_frame_traced(datagram)
        return VERSION2, trace_id, messages
    raise ProtocolError(f"unsupported protocol version {version}")


class RequestIdGenerator:
    """Thread-safe monotonically increasing request ids.

    Each router node owns one generator; ids are node-local because a
    response only ever returns to the socket that sent the request.

    ``next(itertools.count())`` is a single C-level call that never
    releases the GIL mid-increment on CPython, so no lock is needed on
    the id hot path.  On runtimes without that atomicity guarantee use
    :class:`LockedRequestIdGenerator` instead.
    """

    __slots__ = ("_counter",)

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)

    def next_id(self) -> int:
        return next(self._counter) % 2**64


class LockedRequestIdGenerator:
    __slots__ = ("_counter", "_lock")

    def __init__(self, start: int = 1):
        self._counter = itertools.count(start)
        self._lock = threading.Lock()

    def next_id(self) -> int:
        with self._lock:
            return next(self._counter) % 2**64
