"""Hot-path micro-harness: admission decisions/second under contention.

The paper attributes the QoS server's CPU under-utilization on large
instances to "the implementation of the locking mechanism" (§V-C) and
names its optimization as future work.  This module measures that work:
it drives the real :class:`~repro.core.admission.AdmissionController`
with real worker threads over a warmed key table and reports raw
decisions/second, for both

- the **fused** path (the current implementation: lookup + consume +
  statistics under exactly one shard lock), and
- the **seed** path (:class:`SeedPathController`, kept runnable here:
  shard lock → nested bucket lock → global stats lock, three
  acquisitions per decision, as the repository originally shipped),

so the speedup is always computed on the same machine in the same run.
``benchmarks/test_hotpath_regression.py`` turns the matrix into a
regression gate and writes ``BENCH_hotpath.json`` for the performance
trajectory; ``make bench-hotpath`` and ``janus bench-hotpath`` run it
from the command line.
"""

from __future__ import annotations

import json
import os
import platform
import threading
import time
from dataclasses import asdict, dataclass, field
from typing import Iterable, Optional, Sequence

from repro.core.admission import (
    AdmissionController,
    AdmissionStats,
    InMemoryRuleSource,
)
from repro.core.config import AdmissionConfig
from repro.core.rules import QoSRule
from repro.workload.keygen import uuid_keys

__all__ = [
    "HotpathPoint",
    "HotpathReport",
    "SeedPathController",
    "measure_decisions_per_sec",
    "run_hotpath_matrix",
    "write_report",
]

#: Hot buckets that never deny: the measurement isolates synchronization
#: cost, not credit arithmetic.
_HOT_RULE_RATE = 1e9
_HOT_RULE_CAPACITY = 1e12


class SeedPathController(AdmissionController):
    """The seed's three-lock decision path, kept runnable for comparison.

    Reproduces the pre-fusion hot path exactly: the table lookup under the
    shard lock, the bucket's *own* lock nested inside it for the consume,
    and a global stats lock acquired by every worker on every decision.
    Only :meth:`check` differs from the parent; maintenance passes and
    decision semantics are identical, which the regression test asserts.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._seed_stats = AdmissionStats()
        self._seed_stats_lock = threading.Lock()

    def check(self, key: str, cost: float = 1.0) -> bool:
        shard = self._shard_of(key)
        table = self._shards[shard]
        with self._locks[shard]:
            bucket = table.get(key)
            if bucket is None:
                hit = False
                bucket, unknown = self._create_bucket_locked(table, key)
            else:
                hit = True
                unknown = False
            allowed = bucket.try_consume(cost)      # nested bucket lock
        with self._seed_stats_lock:                 # global stats lock
            stats = self._seed_stats
            if hit:
                stats.rule_hits += 1
            else:
                stats.rule_misses += 1
                if unknown:
                    stats.unknown_keys += 1
            if allowed:
                stats.admitted += 1
            else:
                stats.denied += 1
        return allowed

    @property
    def stats(self) -> AdmissionStats:
        return self._seed_stats


@dataclass(frozen=True, slots=True)
class HotpathPoint:
    """One measured configuration of the admission hot path."""

    path: str                   # "fused" or "seed"
    lock_shards: int
    workers: int
    decisions: int
    elapsed_s: float
    decisions_per_sec: float


@dataclass(slots=True)
class HotpathReport:
    """A full sweep plus the per-configuration fused/seed speedups."""

    points: list[HotpathPoint] = field(default_factory=list)
    machine: dict = field(default_factory=dict)

    def point(self, path: str, lock_shards: int,
              workers: int) -> Optional[HotpathPoint]:
        for p in self.points:
            if (p.path, p.lock_shards, p.workers) == (path, lock_shards,
                                                      workers):
                return p
        return None

    def speedup(self, lock_shards: int, workers: int) -> Optional[float]:
        """Fused throughput over seed throughput for one configuration."""
        fused = self.point("fused", lock_shards, workers)
        seed = self.point("seed", lock_shards, workers)
        if fused is None or seed is None or seed.decisions_per_sec <= 0:
            return None
        return fused.decisions_per_sec / seed.decisions_per_sec

    def as_dict(self) -> dict:
        speedups = {}
        for p in self.points:
            if p.path != "fused":
                continue
            ratio = self.speedup(p.lock_shards, p.workers)
            if ratio is not None:
                speedups[f"shards{p.lock_shards}_workers{p.workers}"] = round(
                    ratio, 3)
        return {
            "machine": self.machine,
            "points": [asdict(p) for p in self.points],
            "speedup_fused_over_seed": speedups,
        }


def _machine_info() -> dict:
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        # Report stamp ("when did this bench run"), not a duration input.
        "unix_time": time.time(),  # janus-lint: disable=monotonic-time
    }


def measure_decisions_per_sec(
    *,
    lock_shards: int,
    workers: int,
    fused: bool = True,
    n_keys: int = 256,
    checks_per_worker: int = 10_000,
    seed: int = 88,
) -> HotpathPoint:
    """Throughput of ``workers`` threads hammering a warmed controller.

    Every key has an effectively infinite rule so the run measures the
    synchronization cost of the decision, not deny-path differences.  The
    timed region covers only the contended checks (the table is warmed
    first, so the hit path is what is measured).
    """
    keys = uuid_keys(n_keys, seed=seed)
    source = InMemoryRuleSource(
        {k: QoSRule(k, refill_rate=_HOT_RULE_RATE,
                    capacity=_HOT_RULE_CAPACITY) for k in keys})
    cls = AdmissionController if fused else SeedPathController
    controller = cls(source, AdmissionConfig(lock_shards=lock_shards))
    for k in keys:                      # materialize outside the timed region
        controller.check(k)

    start = threading.Barrier(workers + 1)
    done = threading.Barrier(workers + 1)

    def run(wid: int) -> None:
        local = keys[wid::workers] or keys
        n = len(local)
        check = controller.check
        start.wait()
        i = 0
        for _ in range(checks_per_worker):
            check(local[i])
            i += 1
            if i == n:
                i = 0
        done.wait()

    threads = [threading.Thread(target=run, args=(w,), daemon=True)
               for w in range(workers)]
    for t in threads:
        t.start()
    start.wait()
    t0 = time.perf_counter()
    done.wait()
    elapsed = time.perf_counter() - t0
    for t in threads:
        t.join()
    decisions = workers * checks_per_worker
    return HotpathPoint(
        path="fused" if fused else "seed",
        lock_shards=lock_shards,
        workers=workers,
        decisions=decisions,
        elapsed_s=elapsed,
        decisions_per_sec=decisions / elapsed if elapsed > 0 else 0.0,
    )


def run_hotpath_matrix(
    lock_shards: Sequence[int] = (1, 8, 64),
    workers: Sequence[int] = (1, 4, 8),
    *,
    paths: Iterable[str] = ("seed", "fused"),
    checks_per_worker: int = 10_000,
    n_keys: int = 256,
    seed: int = 88,
) -> HotpathReport:
    """Sweep the full (path × lock_shards × workers) grid.

    Seed and fused runs for the same configuration execute back-to-back so
    their ratio is as same-machine/same-moment as the process can make it.
    """
    report = HotpathReport(machine=_machine_info())
    for shards in lock_shards:
        for n_workers in workers:
            for path in paths:
                report.points.append(measure_decisions_per_sec(
                    lock_shards=shards,
                    workers=n_workers,
                    fused=(path == "fused"),
                    n_keys=n_keys,
                    checks_per_worker=checks_per_worker,
                    seed=seed,
                ))
    return report


def write_report(path, report: HotpathReport) -> None:
    """Serialize a report as JSON (the ``BENCH_hotpath.json`` artifact)."""
    with open(path, "w") as fh:
        json.dump(report.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
