"""Shared DES measurement harness for the evaluation experiments.

Encapsulates the paper's benchmarking procedure: build a deployment, load
the rule table, warm it, drive it with a closed-loop client fleet sized to
the configuration's capacity (the tuned ``ab -c`` of §V), and measure
throughput and per-layer CPU over a steady-state window.

Heavy-load runs use a 10 ms UDP timeout instead of the paper's 100 µs.  At
saturation the QoS-server queue holds roughly ``headroom x base-latency``
(~2 ms) of work, so a timeout below that triggers duplicate-decision retry
storms that collapse one partition — the paper's testbed evidently ran its
saturation sweeps without tripping this (their queues were shallower than
their timeout); since these figures measure *throughput*, the timeout is
not the object under test and is widened to keep the retry path out of the
measurement.  Light-load latency experiments (Figs. 5 and 13) keep the
faithful 100 µs, where first-attempt completion dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.config import ClusterTopology, JanusConfig, RouterConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.perfmodel.capacity import CapacityModel
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient

__all__ = ["ThroughputPoint", "measure_throughput",
           "measure_throughput_many", "build_cluster", "HEAVY_LOAD_ROUTER"]

#: Router config for saturation runs (see module docstring).
HEAVY_LOAD_ROUTER = RouterConfig(udp_timeout=10e-3, max_retries=5)


@dataclass(frozen=True, slots=True)
class ThroughputPoint:
    """One measured operating point of a deployment."""

    topology: ClusterTopology
    throughput: float            # client-completed requests/second
    qos_decisions_per_s: float   # server-side decisions (retries inflate)
    router_cpu: float            # mean router-node CPU (0..1)
    qos_cpu: float               # mean QoS-node CPU (0..1)
    clients: int
    default_replies: int
    retries: int


def build_cluster(
    topology: ClusterTopology,
    *,
    n_rules: int = 2_000,
    router_config: Optional[RouterConfig] = None,
    server_config: Optional[ServerConfig] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 1,
    prewarm: bool = True,
) -> tuple[SimJanusCluster, list[str]]:
    """A deployment pre-loaded with ``n_rules`` effectively-unlimited rules.

    Throughput experiments must measure the framework, not the rules, so
    every key gets a rate far above the offered load (the paper's sweeps
    likewise draw keys whose quotas are not the binding constraint).
    """
    config = JanusConfig(
        topology=topology,
        router=router_config or RouterConfig(),
        server=server_config or ServerConfig(workers=4),
    )
    cluster = SimJanusCluster(config, calibration=calibration, seed=seed)
    keys = uuid_keys(n_rules, seed=seed)
    for key in keys:
        cluster.rules.put_rule(QoSRule(key, refill_rate=1e9, capacity=1e9))
    if prewarm:
        cluster.prewarm()
    return cluster, keys


def measure_throughput(
    topology: ClusterTopology,
    *,
    window: float = 0.35,
    warmup: float = 0.2,
    n_rules: int = 2_000,
    clients: Optional[int] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    seed: int = 1,
) -> ThroughputPoint:
    """Measure one deployment's sustained throughput in the simulator."""
    cluster, keys = build_cluster(
        topology, n_rules=n_rules, router_config=HEAVY_LOAD_ROUTER,
        calibration=calibration, seed=seed)
    if clients is None:
        clients = CapacityModel(calibration).size_fleet(topology)
    # Each client thread works its own shuffled key subset so the fleet's
    # instantaneous load is decorrelated across QoS partitions (a shared
    # cycle lets one slow partition convoy every client onto itself).
    import random as _random
    fleet = []
    per_client = min(len(keys), 512)
    for i in range(clients):
        rng = _random.Random(seed * 7919 + i)
        sample = rng.sample(keys, per_client)
        fleet.append(ClosedLoopClient(cluster, f"ab-{i}", KeyCycle(sample),
                                      mode="gateway"))
    cluster.sim.run(until=warmup)
    cluster.begin_window()
    handled0 = [c.log for c in fleet]
    n0 = sum(len(log) for log in handled0)
    cluster.sim.run(until=warmup + window)
    n1 = sum(len(c.log) for c in fleet)
    return ThroughputPoint(
        topology=topology,
        throughput=(n1 - n0) / window,
        qos_decisions_per_s=cluster.qos_throughput(),
        router_cpu=cluster.router_cpu(),
        qos_cpu=cluster.qos_cpu(),
        clients=clients,
        default_replies=sum(r.default_replies for r in cluster.routers),
        retries=sum(r.retries for r in cluster.routers),
    )


def _throughput_task(spec: tuple) -> ThroughputPoint:
    """Worker entry point for one sweep point (top level: picklable)."""
    _label, topology, kwargs = spec
    return measure_throughput(topology, **kwargs)


def measure_throughput_many(
    specs: list[tuple],
    *,
    jobs: Optional[int] = None,
) -> list[ThroughputPoint]:
    """Measure many deployments, optionally fanned across processes.

    ``specs`` is a list of ``(label, topology, kwargs)`` tuples, where
    ``kwargs`` are keyword arguments for :func:`measure_throughput`.
    Results come back in spec order; each point simulates from its own
    seed, so ``jobs`` does not change any measured value (only
    wall-clock).  ``jobs=None`` defers to the runner's ``--jobs`` /
    ``REPRO_JOBS`` default.
    """
    from repro.experiments.parallel import run_tasks

    return run_tasks(_throughput_task, specs, jobs=jobs,
                     labels=[spec[0] for spec in specs])
