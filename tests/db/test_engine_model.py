"""Model-based property test: the SQL engine vs a dict reference model.

Hypothesis drives random CRUD command sequences against both the real
:class:`~repro.db.engine.Engine` and a trivially-correct in-memory dict
model, asserting they agree at every step — the classic stateful-testing
pattern for storage engines.
"""

from __future__ import annotations

from typing import Dict, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import SQLError
from repro.db.engine import Engine

KEYS = [f"k{i}" for i in range(8)]

commands = st.lists(
    st.one_of(
        st.tuples(st.just("put"), st.sampled_from(KEYS),
                  st.integers(-1000, 1000)),
        st.tuples(st.just("delete"), st.sampled_from(KEYS), st.none()),
        st.tuples(st.just("get"), st.sampled_from(KEYS), st.none()),
        st.tuples(st.just("bump"), st.sampled_from(KEYS),
                  st.integers(-50, 50)),
        st.tuples(st.just("count"), st.none(), st.none()),
    ),
    max_size=60,
)


class DictModel:
    """The obviously-correct reference."""

    def __init__(self):
        self.data: Dict[str, int] = {}

    def put(self, key: str, value: int) -> None:
        self.data[key] = value

    def delete(self, key: str) -> bool:
        return self.data.pop(key, None) is not None

    def get(self, key: str) -> Optional[int]:
        return self.data.get(key)

    def bump(self, key: str, delta: int) -> None:
        if key in self.data:
            self.data[key] += delta

    def count(self) -> int:
        return len(self.data)


class EngineAdapter:
    """The system under test, driven through SQL."""

    def __init__(self):
        self.engine = Engine()
        self.engine.execute("CREATE TABLE kv (k TEXT PRIMARY KEY, v INTEGER)")

    def put(self, key: str, value: int) -> None:
        updated = self.engine.execute(
            "UPDATE kv SET v = ? WHERE k = ?", (value, key))
        if updated.rowcount == 0:
            self.engine.execute(
                "INSERT INTO kv (k, v) VALUES (?, ?)", (key, value))

    def delete(self, key: str) -> bool:
        return self.engine.execute(
            "DELETE FROM kv WHERE k = ?", (key,)).rowcount > 0

    def get(self, key: str) -> Optional[int]:
        return self.engine.execute(
            "SELECT v FROM kv WHERE k = ?", (key,)).scalar()

    def bump(self, key: str, delta: int) -> None:
        self.engine.execute(
            "UPDATE kv SET v = v WHERE k = ? AND v = v", (key,))
        row = self.get(key)
        if row is not None:
            self.engine.execute(
                "UPDATE kv SET v = ? WHERE k = ?", (row + delta, key))

    def count(self) -> int:
        return int(self.engine.execute("SELECT COUNT(*) FROM kv").scalar())


@given(commands)
@settings(max_examples=120, deadline=None)
def test_engine_agrees_with_dict_model(script):
    model = DictModel()
    engine = EngineAdapter()
    for op, key, arg in script:
        if op == "put":
            model.put(key, arg)
            engine.put(key, arg)
        elif op == "delete":
            assert model.delete(key) == engine.delete(key)
        elif op == "get":
            assert model.get(key) == engine.get(key)
        elif op == "bump":
            model.bump(key, arg)
            engine.bump(key, arg)
        elif op == "count":
            assert model.count() == engine.count()
    # Full-state agreement at the end.
    rows = dict(engine.engine.execute("SELECT k, v FROM kv").rows)
    assert rows == model.data


@given(st.lists(st.sampled_from(KEYS), min_size=1, max_size=20))
@settings(max_examples=60, deadline=None)
def test_duplicate_inserts_always_rejected(keys):
    engine = Engine()
    engine.execute("CREATE TABLE t (k TEXT PRIMARY KEY)")
    seen = set()
    for key in keys:
        if key in seen:
            with pytest.raises(SQLError):
                engine.execute("INSERT INTO t (k) VALUES (?)", (key,))
        else:
            engine.execute("INSERT INTO t (k) VALUES (?)", (key,))
            seen.add(key)
    assert engine.execute("SELECT COUNT(*) FROM t").scalar() == len(seen)
