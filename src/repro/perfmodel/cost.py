"""Cost-efficiency analysis over the Table I catalog (extension).

The paper reports prices (Table I) but never folds them into the
evaluation.  This module answers the operator questions its data enables:
dollars per million admission decisions for each deployment shape, the
cheapest configuration for a target rate, and the cost angle on the
vertical-vs-horizontal trade of Figs. 9/12.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.config import ClusterTopology
from repro.core.errors import ConfigurationError
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.capacity import CapacityModel
from repro.simnet.instances import C3_FAMILY, get_instance

__all__ = ["DeploymentCost", "CostModel"]


@dataclass(frozen=True, slots=True)
class DeploymentCost:
    """Price/performance of one deployment at capacity."""

    topology: ClusterTopology
    capacity_rps: float
    usd_per_hour: float

    @property
    def usd_per_million_decisions(self) -> float:
        """Dollars per 10^6 admissions at full utilization."""
        decisions_per_hour = self.capacity_rps * 3600.0
        return self.usd_per_hour / decisions_per_hour * 1e6

    @property
    def headroom(self) -> float:
        return self.capacity_rps


class CostModel:
    """Price-aware wrapper around :class:`CapacityModel`."""

    def __init__(self, calibration: Calibration = DEFAULT_CALIBRATION):
        self.capacity = CapacityModel(calibration)

    def hourly_cost(self, topology: ClusterTopology) -> float:
        """USD/hour for the router + QoS layers (LB/DB are managed/fixed)."""
        return (topology.n_routers
                * get_instance(topology.router_instance).price_usd_hr
                + topology.n_qos_servers
                * get_instance(topology.qos_instance).price_usd_hr)

    def evaluate(self, topology: ClusterTopology) -> DeploymentCost:
        estimate = self.capacity.estimate(topology)
        return DeploymentCost(
            topology=topology,
            capacity_rps=estimate.capacity,
            usd_per_hour=self.hourly_cost(topology))

    # ------------------------------------------------------------------ #

    def qos_marginal_cost(self, instance: str) -> float:
        """USD per million decisions of one QoS node at saturation.

        Since c3 pricing is linear in vCPUs while capacity is slightly
        super-linear (the per-node background tax amortizes), bigger
        instances are mildly cheaper per decision — the cost expression of
        Fig. 12's 'vertical slightly higher'.
        """
        node_capacity, _ = self.capacity.qos_node_capacity(instance)
        price = get_instance(instance).price_usd_hr
        return price / (node_capacity * 3600.0) * 1e6

    def cheapest_for(self, target_rps: float, *,
                     router_instance: str = "c3.xlarge",
                     qos_instances: Sequence[str] = C3_FAMILY,
                     max_nodes: int = 32) -> Optional[DeploymentCost]:
        """Cheapest deployment meeting ``target_rps``, or None."""
        if target_rps <= 0:
            raise ConfigurationError(f"target_rps must be > 0, got {target_rps}")
        rr_capacity, _ = self.capacity.rr_node_capacity(router_instance)
        n_routers = max(2, int(target_rps / rr_capacity) + 1)
        best: Optional[DeploymentCost] = None
        for qos_instance in qos_instances:
            node_capacity, _ = self.capacity.qos_node_capacity(qos_instance)
            n_nodes = int(target_rps // node_capacity) + 1
            if n_nodes > max_nodes:
                continue
            topology = ClusterTopology(
                n_routers=n_routers, n_qos_servers=n_nodes,
                router_instance=router_instance, qos_instance=qos_instance)
            cost = self.evaluate(topology)
            if cost.capacity_rps < target_rps:
                continue
            if best is None or cost.usd_per_hour < best.usd_per_hour:
                best = cost
        return best

    def efficiency_table(self, instances: Sequence[str] = C3_FAMILY
                         ) -> List[tuple[str, float, float]]:
        """(instance, capacity rps, USD per million decisions) rows."""
        return [(name, self.capacity.qos_node_capacity(name)[0],
                 self.qos_marginal_cost(name))
                for name in instances]
