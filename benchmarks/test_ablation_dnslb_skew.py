"""Ablation: DNS load-balancer skew when routers outnumber clients (§V-A).

"If there are M request router nodes and N client nodes (M > N), during a
TTL cycle there are only N request router nodes receive QoS requests, while
the other request router nodes are idling.  Such skewness in workload
distribution significantly out-weights the 500 microsecond gain in round
trip latency."  This ablation reproduces that measurement: router-load
imbalance under DNS vs gateway load balancing at several client counts.
"""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig
from repro.core.rules import QoSRule
from repro.metrics.report import format_table
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient

M_ROUTERS = 6


def run_skew(mode: str, n_clients: int, horizon: float = 1.5):
    """Returns (idle_routers, max/mean load ratio) within one TTL cycle."""
    config = JanusConfig(topology=ClusterTopology(
        n_routers=M_ROUTERS, n_qos_servers=2, load_balancer=mode))
    cluster = SimJanusCluster(config, seed=71)
    keys = uuid_keys(200, seed=71)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
    cluster.prewarm()
    for i in range(n_clients):
        ClosedLoopClient(cluster, f"client-{i}", KeyCycle(keys, i * 31),
                         mode=mode)
    cluster.sim.run(until=horizon)      # well inside the 30 s TTL
    loads = [r.requests_handled for r in cluster.routers]
    idle = sum(1 for load in loads if load == 0)
    mean = sum(loads) / len(loads)
    ratio = max(loads) / mean if mean else float("inf")
    return idle, ratio


def test_dns_skew_simulation(benchmark):
    benchmark.pedantic(run_skew, args=("dns", 2), rounds=1, iterations=1)


def test_dnslb_skew_report(benchmark, report_sink):
    def sweep():
        out = []
        for n_clients in (2, 4, 12):
            dns_idle, dns_ratio = run_skew("dns", n_clients)
            gw_idle, gw_ratio = run_skew("gateway", n_clients)
            out.append((n_clients,
                        f"{dns_idle}/{M_ROUTERS}", f"{dns_ratio:.2f}",
                        f"{gw_idle}/{M_ROUTERS}", f"{gw_ratio:.2f}"))
        return out
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_sink(format_table(
        ("clients", "DNS idle routers", "DNS max/mean",
         "GW idle routers", "GW max/mean"), rows,
        title=f"Ablation: load skew across {M_ROUTERS} routers within one "
              "DNS TTL window (paper §V-A)"))


def test_paper_claim_m_greater_than_n(benchmark):
    """M=6 routers, N=2 clients: DNS leaves >= M-N routers idle; the
    gateway LB leaves none."""
    dns_idle, dns_ratio = benchmark.pedantic(
        run_skew, args=("dns", 2), rounds=1, iterations=1)
    gw_idle, gw_ratio = run_skew("gateway", 2)
    assert dns_idle >= M_ROUTERS - 2
    assert gw_idle == 0
    assert gw_ratio == pytest.approx(1.0, abs=0.05)
    assert dns_ratio > 2.0
