"""Versioned topology map: epoch-numbered ``mod N -> mod M`` ownership.

The map is the single source of truth for key ownership: position in
the ordered backend list is the partition index, and a key's owner is
``backends[crc32(key) % len(backends)]`` — the same function the
routers (:func:`repro.core.hashing.crc32_router`) and the procplane's
interleaved shard space use, so one map covers both single-process
nodes (one address each) and multi-process nodes (one address per
worker, in global shard order).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.errors import ConfigurationError
from repro.core.hashing import crc32_of

__all__ = ["Address", "TopologyMap"]

Address = "tuple[str, int]"


@dataclass(frozen=True, slots=True)
class TopologyMap:
    """One immutable epoch of the cluster's partition map.

    Epoch 0 is the boot map (never resharded); every topology change
    produces a successor map with ``epoch + 1``.  Maps are compared by
    epoch only — a receiver holding epoch ``e`` ignores announcements
    with epoch ``<= e`` (idempotent re-delivery).
    """

    epoch: int
    backends: "tuple[tuple[str, int], ...]"

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise ConfigurationError(f"epoch must be >= 0, got {self.epoch}")
        if not self.backends:
            raise ConfigurationError("topology map needs at least one backend")
        if len(set(self.backends)) != len(self.backends):
            raise ConfigurationError(
                f"topology map has duplicate backends: {self.backends}")

    def __len__(self) -> int:
        return len(self.backends)

    # ------------------------------------------------------------------ #

    def owner_index(self, key: str) -> int:
        """Partition index of ``key`` under this map (paper Fig. 2)."""
        return crc32_of(key) % len(self.backends)

    def owner(self, key: str) -> "tuple[str, int]":
        """Owning backend address of ``key`` under this map."""
        return self.backends[crc32_of(key) % len(self.backends)]

    def moved_to(self, successor: "TopologyMap", key: str) \
            -> "tuple[str, int] | None":
        """Where ``key`` moves under ``successor``; ``None`` if it stays."""
        target = successor.owner(key)
        return None if target == self.owner(key) else target

    # ------------------------------------------------------------------ #

    def grown(self, addresses: "Iterable[tuple[str, int]]") -> "TopologyMap":
        """The successor map with ``addresses`` appended (node join)."""
        added = tuple(tuple(a) for a in addresses)
        return TopologyMap(self.epoch + 1, self.backends + added)

    def shrunk(self, addresses: "Iterable[tuple[str, int]]") -> "TopologyMap":
        """The successor map with ``addresses`` removed (node leave)."""
        gone = {tuple(a) for a in addresses}
        missing = gone - set(self.backends)
        if missing:
            raise ConfigurationError(
                f"cannot remove addresses not in the map: {sorted(missing)}")
        kept = tuple(b for b in self.backends if b not in gone)
        return TopologyMap(self.epoch + 1, kept)
