"""Real HTTP request router (paper §III-B, over actual sockets).

A stateless threaded HTTP server.  ``GET /qos?key=<k>[&cost=<c>]`` selects
the backend QoS server with ``CRC32(key) mod N`` and exchanges UDP
messages with it under the configured timeout-and-retry policy, answering
the client with a small JSON body:

    {"allow": true, "default": false, "attempts": 1}

``POST /qos/batch`` accepts ``{"items": [{"key": ..., "cost": ...}, ...]}``
(or the ``{"keys": [...]}`` shorthand), resolves every item concurrently —
items routed to the same backend share one protocol-v2 frame — and answers
``{"results": [...]}`` in item order, so applications can amortize the
HTTP hop across many QoS keys.

``GET /healthz`` answers 200 (load-balancer health checks).

The wire path behind both endpoints is selected by
``RouterConfig.wire_mode``:

- ``"channel"`` (default) — one shared non-blocking UDP channel per
  backend, driven by a selectors event thread that batches concurrent
  requests into protocol-v2 frames and runs retries off a timer wheel
  (:mod:`repro.runtime.udp_channel`);
- ``"thread"`` — the seed path: each handler thread keeps a private
  blocking UDP socket (``threading.local``) and exchanges one datagram
  per check, with stale responses discarded by request-id matching.
"""

from __future__ import annotations

import json
import math
import socket
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Sequence
from urllib.parse import parse_qs, urlparse

from repro.core.config import RouterConfig
from repro.core.errors import ProtocolError
from repro.core.hashing import crc32_router
from repro.core.protocol import QoSRequest, QoSResponse, RequestIdGenerator, decode
from repro.runtime.udp_channel import ChannelSet

__all__ = ["RequestRouterDaemon"]

#: Upper bound on items per ``POST /qos/batch`` request.
MAX_BATCH_ITEMS = 1024


class _HandlerCounters:
    """Per-handler-thread counter block (no lock on the request path).

    Each HTTP handler thread owns one block and increments it without any
    synchronization; :meth:`RequestRouterDaemon.stats` merges the blocks
    lazily.  Blocks outlive their threads so totals never go backwards.
    """

    __slots__ = ("requests_handled", "default_replies", "retries")

    def __init__(self) -> None:
        self.requests_handled = 0
        self.default_replies = 0
        self.retries = 0


class RequestRouterDaemon:
    """One request-router node bound to a local HTTP port."""

    def __init__(
        self,
        qos_servers: Sequence[tuple[str, int]],
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: Optional[RouterConfig] = None,
        name: str = "router",
    ):
        if not qos_servers:
            raise ValueError("router needs at least one QoS server address")
        self.qos_servers = list(qos_servers)
        # With one backend the CRC32 partition is constant; skip hashing.
        self._sole_backend = (tuple(self.qos_servers[0])
                              if len(self.qos_servers) == 1 else None)
        self.config = config or RouterConfig(udp_timeout=0.05)
        self.name = name
        self._ids = RequestIdGenerator()
        self._local = threading.local()
        self._counter_blocks: list[_HandlerCounters] = []
        self._blocks_lock = threading.Lock()    # registration only, not per request
        self._channels: Optional[ChannelSet] = None
        if self.config.wire_mode == "channel":
            self._channels = ChannelSet(self.qos_servers, self.config)
        router = self

        class Handler(BaseHTTPRequestHandler):
            protocol_version = "HTTP/1.1"
            # Loopback HTTP with Nagle + delayed ACK costs ~40 ms per
            # request; admission control cannot afford that.
            disable_nagle_algorithm = True

            def log_message(self, fmt, *args):    # silence default stderr log
                pass

            def do_GET(self):                      # noqa: N802 (stdlib API)
                parsed = urlparse(self.path)
                if parsed.path == "/healthz":
                    self._reply(200, {"status": "ok"})
                    return
                if parsed.path == "/stats":
                    self._reply(200, router.stats())
                    return
                if parsed.path == "/metrics":
                    payload = router.prometheus_metrics().encode()
                    self.send_response(200)
                    self.send_header("Content-Type",
                                     "text/plain; version=0.0.4")
                    self.send_header("Content-Length", str(len(payload)))
                    self.end_headers()
                    self.wfile.write(payload)
                    return
                if parsed.path != "/qos":
                    self._reply(404, {"error": "not found"})
                    return
                params = parse_qs(parsed.query)
                key = params.get("key", [""])[0]
                if not key:
                    self._reply(400, {"error": "missing key"})
                    return
                try:
                    cost = float(params.get("cost", ["1.0"])[0])
                except ValueError:
                    self._reply(400, {"error": "bad cost"})
                    return
                if not (math.isfinite(cost) and cost > 0):
                    self._reply(400, {"error": "bad cost"})
                    return
                response, attempts = router.qos_exchange(key, cost)
                self._reply(200, {
                    "allow": response.allowed,
                    "default": response.is_default_reply,
                    "attempts": attempts,
                })

            def do_POST(self):                     # noqa: N802 (stdlib API)
                if urlparse(self.path).path != "/qos/batch":
                    self._reply(404, {"error": "not found"})
                    return
                try:
                    length = int(self.headers.get("Content-Length", "0"))
                    payload = json.loads(self.rfile.read(length))
                except (ValueError, json.JSONDecodeError):
                    self._reply(400, {"error": "bad JSON body"})
                    return
                items = self._batch_items(payload)
                if items is None:
                    self._reply(400, {"error": "bad batch: need items "
                                      f"(1..{MAX_BATCH_ITEMS}) with "
                                      "non-empty keys and finite costs > 0"})
                    return
                results = [
                    {"allow": response.allowed,
                     "default": response.is_default_reply,
                     "attempts": attempts}
                    for response, attempts in router.qos_exchange_many(items)
                ]
                self._reply(200, {"results": results})

            @staticmethod
            def _batch_items(payload) -> "Optional[list[tuple[str, float]]]":
                """Validate a batch body into ``[(key, cost), ...]``."""
                if not isinstance(payload, dict):
                    return None
                raw = payload.get("items")
                if raw is None and isinstance(payload.get("keys"), list):
                    raw = [{"key": k} for k in payload["keys"]]
                if not isinstance(raw, list) or \
                        not (1 <= len(raw) <= MAX_BATCH_ITEMS):
                    return None
                items: list[tuple[str, float]] = []
                for entry in raw:
                    if not isinstance(entry, dict):
                        return None
                    key = entry.get("key")
                    try:
                        cost = float(entry.get("cost", 1.0))
                    except (TypeError, ValueError):
                        return None
                    if (not isinstance(key, str) or not key
                            or not math.isfinite(cost) or cost <= 0):
                        return None
                    items.append((key, cost))
                return items

            def _reply(self, status: int, body: dict) -> None:
                payload = json.dumps(body).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._server = ThreadingHTTPServer((host, port), Handler)
        self._server.daemon_threads = True
        self.address: tuple[str, int] = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #

    @property
    def url(self) -> str:
        return f"http://{self.address[0]}:{self.address[1]}"

    def start(self) -> "RequestRouterDaemon":
        if self._thread is None:
            if self._channels is not None:
                self._channels.start()
            self._thread = threading.Thread(
                target=self._server.serve_forever, name=self.name, daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._server.server_close()
            self._thread.join(timeout=2.0)
            self._thread = None
            if self._channels is not None:
                self._channels.stop()

    def __enter__(self) -> "RequestRouterDaemon":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    def prometheus_metrics(self) -> str:
        """Prometheus text exposition (served on ``GET /metrics``)."""
        stats = self.stats()
        lines = []
        for metric, key in (
                ("janus_router_requests_total", "requests_handled"),
                ("janus_router_default_replies_total", "default_replies"),
                ("janus_router_udp_retries_total", "retries"),
                ("janus_router_backends", "backends")):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f'{metric}{{router="{self.name}"}} {stats[key]}')
        return "\n".join(lines) + "\n"

    def _counters(self) -> _HandlerCounters:
        """This thread's counter block (registered once per thread)."""
        block = getattr(self._local, "counters", None)
        if block is None:
            block = _HandlerCounters()
            with self._blocks_lock:
                self._counter_blocks.append(block)
            self._local.counters = block
        return block

    @property
    def requests_handled(self) -> int:
        return sum(b.requests_handled for b in self._counter_blocks)

    @property
    def default_replies(self) -> int:
        return sum(b.default_replies for b in self._counter_blocks)

    @property
    def retries(self) -> int:
        # Channel-mode retries happen on the event thread, not in any
        # handler block.
        channel_retries = (self._channels.stats.retries
                           if self._channels is not None else 0)
        return sum(b.retries for b in self._counter_blocks) + channel_retries

    def stats(self) -> dict:
        """Operational counters (served on ``GET /stats``)."""
        stats = {
            "name": self.name,
            "requests_handled": self.requests_handled,
            "default_replies": self.default_replies,
            "retries": self.retries,
            "backends": len(self.qos_servers),
            "wire_mode": self.config.wire_mode,
        }
        if self._channels is not None:
            stats["channel"] = self._channels.stats.as_dict()
        return stats

    def route(self, key: str) -> tuple[str, int]:
        """The paper's routing function (Fig. 2)."""
        if self._sole_backend is not None:
            return self._sole_backend
        return self.qos_servers[crc32_router(key, len(self.qos_servers))]

    def qos_exchange(self, key: str, cost: float = 1.0) -> tuple[QoSResponse, int]:
        """One admission check over the configured wire path."""
        if self._channels is not None:
            response, attempts = self._channels.exchange(
                self.route(key), key, cost)
            counters = self._counters()
            counters.requests_handled += 1
            if response.is_default_reply:
                counters.default_replies += 1
            return response, attempts
        return self._qos_exchange_blocking(key, cost)

    def qos_exchange_many(
        self, items: Sequence[tuple[str, float]],
    ) -> list[tuple[QoSResponse, int]]:
        """Resolve many checks at once (the ``POST /qos/batch`` core).

        In channel mode all items are submitted in one pass, so items
        hashing to the same backend share a single v2 frame; in thread
        mode they degrade to sequential single exchanges.
        """
        if self._channels is not None:
            checks = [(self.route(key), key, cost) for key, cost in items]
            results = self._channels.exchange_many(checks)
            counters = self._counters()
            counters.requests_handled += len(results)
            counters.default_replies += sum(
                1 for response, _ in results if response.is_default_reply)
            return results
        return [self._qos_exchange_blocking(key, cost)
                for key, cost in items]

    # ------------------------------------------------------------------ #
    # seed wire path ("thread" mode): per-thread blocking sockets
    # ------------------------------------------------------------------ #

    def _socket(self) -> socket.socket:
        sock = getattr(self._local, "sock", None)
        if sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            self._local.sock = sock
        return sock

    def _qos_exchange_blocking(self, key: str,
                               cost: float = 1.0) -> tuple[QoSResponse, int]:
        """The §III-B UDP loop; returns (response, attempts)."""
        request = QoSRequest(self._ids.next_id(), key, cost)
        datagram = request.encode()
        target = self.route(key)
        sock = self._socket()
        sock.settimeout(self.config.udp_timeout)
        counters = self._counters()
        for attempt in range(1, self.config.max_retries + 1):
            if attempt > 1:
                counters.retries += 1
            sock.sendto(datagram, target)
            try:
                while True:
                    data, _ = sock.recvfrom(8192)
                    try:
                        message = decode(data)
                    except ProtocolError:
                        continue
                    if (isinstance(message, QoSResponse)
                            and message.request_id == request.request_id):
                        counters.requests_handled += 1
                        return message, attempt
                    # Stale response from a previous request on this
                    # thread's socket: keep waiting within the timeout.
            except socket.timeout:
                continue
        counters.requests_handled += 1
        counters.default_replies += 1
        return QoSResponse(request.request_id, self.config.default_reply,
                           is_default_reply=True), self.config.max_retries
