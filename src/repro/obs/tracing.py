"""Distributed tracing: trace ids, spans, head-based sampling, the store.

A *trace* is the set of spans recorded for one sampled request as it
crosses layers: client → router HTTP handler → router exchange → UDP
channel round trip → QoS-server decision.  The design keeps the unsampled
path at a single integer comparison per layer:

- the **head** of the path (the client, or the router for requests that
  arrive untraced) decides once, via :class:`HeadSampler`, whether a
  request is traced; a traced request carries a non-zero 64-bit trace id
  downstream (HTTP query param / JSON field on the client→router hop,
  the protocol-v2 frame trace flag on the router→server hop);
- every layer then only asks ``if trace_id:`` — untraced requests never
  allocate a span, never read a clock, never touch a lock;
- completed spans land in a process-wide :class:`TraceBuffer` (bounded,
  oldest-trace eviction), which is what ``GET /trace/<id>`` serves.  In
  a LocalCluster every daemon shares the process, so one buffer holds
  the full multi-layer trace; in a multi-process deployment each process
  buffers its own spans and a scraper joins them by trace id.

Sampling is deterministic: :class:`HeadSampler` admits the ``n``-th
request iff ``floor(n*rate)`` increments, so ``rate=0.5`` traces exactly
every second request and two runs sample identically — which is what the
tracing-overhead A/B benchmark and the determinism tests rely on.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from math import floor
from typing import Optional

from repro.core.errors import ConfigurationError

__all__ = ["Span", "TraceBuffer", "HeadSampler", "Tracer",
           "default_tracer", "global_trace_buffer", "DEFAULT_SAMPLE_RATE",
           "format_trace_id", "parse_trace_id"]

#: The documented default head-sampling rate: 1 request in 64.  Cheap
#: enough to leave on (the overhead gate in ``BENCH_obs.json`` holds it
#: under 5%), frequent enough that a loaded service produces a steady
#: stream of traces.
DEFAULT_SAMPLE_RATE = 1.0 / 64.0

_U64 = 2**64


def format_trace_id(trace_id: int) -> str:
    """Canonical wire/text form: 16 lowercase hex digits."""
    return f"{trace_id & (_U64 - 1):016x}"


def parse_trace_id(text: str) -> int:
    """Parse a hex trace id; returns 0 for anything malformed or zero."""
    try:
        value = int(text, 16)
    except (TypeError, ValueError):
        return 0
    if not (0 < value < _U64):
        return 0
    return value


class Span:
    """One timed operation inside a trace (monotonic-clock based)."""

    __slots__ = ("trace_id", "name", "layer", "start_ns", "duration_ns",
                 "attrs")

    def __init__(self, trace_id: int, name: str, layer: str,
                 start_ns: int, attrs: Optional[dict] = None):
        self.trace_id = trace_id
        self.name = name
        self.layer = layer
        self.start_ns = start_ns
        self.duration_ns = -1           # -1 = still open
        self.attrs = attrs

    @property
    def duration_us(self) -> float:
        return self.duration_ns / 1e3 if self.duration_ns >= 0 else -1.0

    def as_dict(self) -> dict:
        return {
            "trace_id": format_trace_id(self.trace_id),
            "name": self.name,
            "layer": self.layer,
            "start_ns": self.start_ns,
            "duration_us": round(self.duration_us, 3),
            "attrs": dict(self.attrs) if self.attrs else {},
        }

    def __repr__(self) -> str:        # debugging aid only
        return (f"Span({format_trace_id(self.trace_id)}, {self.name!r}, "
                f"layer={self.layer!r}, {self.duration_us:.1f}us)")


class TraceBuffer:
    """Bounded store of recent traces: ``trace_id -> [Span, ...]``.

    Only sampled requests ever reach it, so a plain lock is fine; at the
    default 1-in-64 rate the lock is touched a few hundred times per
    second at full router throughput.  When a *new* trace id arrives with
    the buffer full, the oldest trace is evicted whole.
    """

    def __init__(self, capacity: int = 512):
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: dict[int, list[Span]] = {}
        self._order: deque[int] = deque()
        self._lock = threading.Lock()

    def add(self, span: Span) -> None:
        if not span.trace_id:
            return
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                while len(self._order) >= self.capacity:
                    self._traces.pop(self._order.popleft(), None)
                spans = self._traces[span.trace_id] = []
                self._order.append(span.trace_id)
            spans.append(span)

    def get(self, trace_id: int) -> "list[Span]":
        """Spans of one trace, ordered by start time (empty if unknown)."""
        with self._lock:
            spans = list(self._traces.get(trace_id, ()))
        spans.sort(key=lambda s: s.start_ns)
        return spans

    def ids(self) -> "list[int]":
        """Known trace ids, oldest first."""
        with self._lock:
            return list(self._order)

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)


class HeadSampler:
    """Deterministic head-based sampler: 1-in-N by accumulated rate.

    The ``n``-th call samples iff ``floor(n*rate) > floor((n-1)*rate)``,
    which spreads sampled requests evenly (rate 0.5 → every 2nd request,
    rate 0.01 → every 100th) and makes the decision sequence a pure
    function of the call count.  The counter is ``itertools.count`` —
    atomic on CPython — so the unsampled hot path stays lock-free.
    """

    __slots__ = ("rate", "_count")

    def __init__(self, rate: float):
        if not (0.0 <= rate <= 1.0):
            raise ConfigurationError(
                f"sample rate must be in [0, 1], got {rate}")
        self.rate = rate
        self._count = itertools.count(1)

    def sample(self) -> bool:
        rate = self.rate
        if rate <= 0.0:
            return False
        if rate >= 1.0:
            return True
        n = next(self._count)
        return floor(n * rate) > floor((n - 1) * rate)


class Tracer:
    """Creates trace ids and records spans into a buffer (+ recorder).

    One tracer per process is the normal deployment (see
    :func:`default_tracer`); components that own a sampling *decision*
    pair it with their own :class:`HeadSampler` so rates stay a
    per-component config knob while all spans land in one place.
    """

    def __init__(self, buffer: Optional[TraceBuffer] = None,
                 recorder=None):
        self.buffer = buffer if buffer is not None else global_trace_buffer()
        self.recorder = recorder
        # Per-process id space: high bits from the pid and a coarse boot
        # timestamp so ids from different processes (or restarts) sharing
        # one scrape pipeline almost never collide.
        salt = ((os.getpid() & 0xFFFF) << 16) ^ (time.time_ns() & 0xFFFF_FFFF)
        self._ids = itertools.count(1)
        self._salt = (salt & 0xFFFF_FFFF) << 32

    def new_trace_id(self) -> int:
        return (self._salt | (next(self._ids) & 0xFFFF_FFFF)) or 1

    def start(self, trace_id: int, name: str, layer: str = "",
              attrs: Optional[dict] = None) -> Span:
        return Span(trace_id, name, layer, time.perf_counter_ns(), attrs)

    def finish(self, span: Span, **attrs) -> Span:
        span.duration_ns = time.perf_counter_ns() - span.start_ns
        if attrs:
            if span.attrs is None:
                span.attrs = attrs
            else:
                span.attrs.update(attrs)
        self.buffer.add(span)
        recorder = self.recorder
        if recorder is not None:
            recorder.record_span(span)
        return span


_default_tracer: Optional[Tracer] = None
_default_lock = threading.Lock()
_GLOBAL_BUFFER = TraceBuffer(512)


def global_trace_buffer() -> TraceBuffer:
    """The process-wide trace store ``GET /trace/<id>`` reads."""
    return _GLOBAL_BUFFER


def default_tracer() -> Tracer:
    """The process-wide tracer (lazily wired to the flight recorder)."""
    global _default_tracer
    if _default_tracer is None:
        with _default_lock:
            if _default_tracer is None:
                from repro.obs.recorder import global_flight_recorder
                _default_tracer = Tracer(
                    buffer=_GLOBAL_BUFFER,
                    recorder=global_flight_recorder())
    return _default_tracer
