"""Regression gate for the multiplexed wire path (PR 3).

Runs the seed-vs-channel matrix of :mod:`repro.metrics.wirepath` over
real loopback sockets and writes ``BENCH_wirepath.json`` at the
repository root for the performance trajectory:

- **batched throughput** — 8 closed-loop clients, ``keys_per_call``
  keys per call: ``wire_mode="channel"`` (one protocol-v2 frame per
  call) versus ``wire_mode="thread"`` (the seed per-thread blocking
  socket, one v1 datagram per key); gate: ≥ 2× seed.
- **idle added latency** — the interleaved single-client ``GET /qos``
  pair at channel ``batch_size=1``; gate: channel p99 ≤ 10% over seed.

Both gates are statements about scheduling more than arithmetic, so on
hosts exposing a single CPU the measurement is still taken and recorded
but the assertions are skipped (one core cannot run the client, router,
server, and event threads concurrently enough for the numbers to mean
anything — the simkernel gate treats core count the same way).

``WIREPATH_CHECKS`` (env) scales the per-client check count down for
smoke runs.  Run directly with ``make bench-wirepath``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.metrics.wirepath import run_wirepath_matrix, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The ISSUE-3 acceptance bars.
TARGET_SPEEDUP = 2.0
MAX_IDLE_P99_OVERHEAD = 0.10
GATE_CLIENTS = 8
#: Cores needed for the wall-clock assertions to be meaningful.
MIN_CPUS_FOR_GATE = 2

CHECKS_PER_CLIENT = int(os.environ.get("WIREPATH_CHECKS", "2000"))


@pytest.fixture(scope="module")
def wirepath_report():
    report = run_wirepath_matrix(
        client_counts=(1, GATE_CLIENTS),
        checks_per_client=CHECKS_PER_CLIENT)
    write_report(REPO_ROOT / "BENCH_wirepath.json", report)
    return report


def test_wirepath_report_written(wirepath_report, report_sink):
    r = wirepath_report
    lines = ["Wire path: seed thread-sockets vs multiplexed channel"]
    for p in r.points:
        lines.append(
            f"  {p.mode:>7s}/{p.surface:<4s} clients={p.clients} "
            f"batch={p.batch_size:<3d} keys/call={p.keys_per_call:<3d} "
            f"{p.checks_per_sec:>9,.0f} checks/s  "
            f"p50={p.p50_ms:.3f}ms p99={p.p99_ms:.3f}ms")
    overhead = r.idle_p99_overhead()
    lines.append(
        f"  speedup @{GATE_CLIENTS} clients: "
        f"{r.speedup(GATE_CLIENTS):.2f}x (target {TARGET_SPEEDUP}x); "
        f"idle p99 overhead: {overhead * 100.0:+.1f}% "
        f"(limit +{MAX_IDLE_P99_OVERHEAD * 100.0:.0f}%)")
    report_sink("\n".join(lines))
    assert (REPO_ROOT / "BENCH_wirepath.json").exists()
    # Every configured point ran to completion with real responses.
    assert all(p.checks > 0 and p.checks_per_sec > 0 for p in r.points)
    assert r.speedup(GATE_CLIENTS) is not None
    assert overhead is not None


def test_channel_throughput_gate(wirepath_report):
    """Headline: channel ≥ 2× seed throughput at 8 concurrent clients."""
    cpus = os.cpu_count() or 1
    speedup = wirepath_report.speedup(GATE_CLIENTS)
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; "
            f"throughput recorded ({speedup:.2f}x) but the "
            f"{TARGET_SPEEDUP}x gate needs real concurrency")
    assert speedup >= TARGET_SPEEDUP, (
        f"channel only {speedup:.2f}x the seed wire path at "
        f"{GATE_CLIENTS} clients (target {TARGET_SPEEDUP}x)")


def test_idle_latency_gate(wirepath_report):
    """The channel must not tax a lone request: p99 ≤ 10% over seed."""
    cpus = os.cpu_count() or 1
    overhead = wirepath_report.idle_p99_overhead()
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; idle "
            f"overhead recorded ({overhead * 100.0:+.1f}%) but "
            f"sub-millisecond p99s on one core are scheduler noise")
    assert overhead <= MAX_IDLE_P99_OVERHEAD, (
        f"idle channel p99 is {overhead * 100.0:+.1f}% over seed "
        f"(limit +{MAX_IDLE_P99_OVERHEAD * 100.0:.0f}%)")
