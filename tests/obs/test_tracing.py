"""Tests for trace ids, sampling determinism, the buffer, the recorder."""

from __future__ import annotations

import io
import json
import os
import signal

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.recorder import FlightRecorder, install_dump_signal
from repro.obs.tracing import (
    HeadSampler,
    Span,
    TraceBuffer,
    Tracer,
    format_trace_id,
    parse_trace_id,
)


class TestTraceIds:
    def test_format_parse_round_trip(self):
        for value in (1, 0xDEADBEEF, 2**64 - 1):
            assert parse_trace_id(format_trace_id(value)) == value

    def test_format_is_16_hex_digits(self):
        assert format_trace_id(1) == "0" * 15 + "1"
        assert len(format_trace_id(2**64 - 1)) == 16

    @pytest.mark.parametrize("bad", ["", "zz", "0", "-1", None, "1 2",
                                     "1" * 17 + "0"])
    def test_malformed_parses_to_zero(self, bad):
        assert parse_trace_id(bad) == 0

    def test_tracer_ids_unique_and_nonzero(self):
        tracer = Tracer(buffer=TraceBuffer())
        ids = [tracer.new_trace_id() for _ in range(1000)]
        assert 0 not in ids
        assert len(set(ids)) == len(ids)


class TestHeadSampler:
    def test_rate_zero_never_samples(self):
        s = HeadSampler(0.0)
        assert not any(s.sample() for _ in range(1000))

    def test_rate_one_always_samples(self):
        s = HeadSampler(1.0)
        assert all(s.sample() for _ in range(1000))

    def test_rate_half_samples_every_second_request(self):
        s = HeadSampler(0.5)
        decisions = [s.sample() for _ in range(10)]
        assert decisions == [False, True] * 5

    def test_deterministic_across_instances(self):
        a, b = HeadSampler(0.3), HeadSampler(0.3)
        assert [a.sample() for _ in range(500)] == \
            [b.sample() for _ in range(500)]

    @pytest.mark.parametrize("rate,n,expected", [
        (0.5, 1000, 500), (0.25, 1000, 250), (1 / 64, 6400, 100)])
    def test_long_run_frequency_is_exact(self, rate, n, expected):
        s = HeadSampler(rate)
        assert sum(s.sample() for _ in range(n)) == expected

    @pytest.mark.parametrize("rate", [-0.1, 1.1, 2.0])
    def test_out_of_range_rate_rejected(self, rate):
        with pytest.raises(ConfigurationError):
            HeadSampler(rate)


class TestTraceBuffer:
    def _span(self, trace_id, start_ns=0):
        span = Span(trace_id, "n", "layer", start_ns)
        span.duration_ns = 10
        return span

    def test_get_orders_by_start_time(self):
        buf = TraceBuffer()
        buf.add(self._span(7, start_ns=300))
        buf.add(self._span(7, start_ns=100))
        buf.add(self._span(7, start_ns=200))
        assert [s.start_ns for s in buf.get(7)] == [100, 200, 300]

    def test_unknown_trace_is_empty(self):
        assert TraceBuffer().get(123) == []

    def test_zero_trace_id_ignored(self):
        buf = TraceBuffer()
        buf.add(self._span(0))
        assert len(buf) == 0

    def test_evicts_oldest_trace_whole(self):
        buf = TraceBuffer(capacity=2)
        buf.add(self._span(1))
        buf.add(self._span(1))          # two spans, one trace
        buf.add(self._span(2))
        buf.add(self._span(3))          # evicts trace 1 entirely
        assert buf.get(1) == []
        assert len(buf.get(2)) == 1
        assert len(buf.get(3)) == 1
        assert buf.ids() == [2, 3]

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            TraceBuffer(capacity=0)


class TestTracer:
    def test_finish_sets_duration_and_stores(self):
        buf = TraceBuffer()
        tracer = Tracer(buffer=buf)
        span = tracer.start(9, "op", "router", {"key": "k"})
        assert span.duration_ns == -1
        tracer.finish(span, allow=True)
        assert span.duration_ns >= 0
        stored = buf.get(9)
        assert len(stored) == 1
        assert stored[0].attrs == {"key": "k", "allow": True}

    def test_finish_feeds_recorder(self):
        recorder = FlightRecorder(capacity=4)
        tracer = Tracer(buffer=TraceBuffer(), recorder=recorder)
        tracer.finish(tracer.start(9, "op", "router"))
        assert recorder.recorded == 1
        assert recorder.dump()[0]["name"] == "op"

    def test_span_as_dict_shape(self):
        tracer = Tracer(buffer=TraceBuffer())
        span = tracer.finish(tracer.start(9, "op", "router", {"n": 2}))
        d = span.as_dict()
        assert d["trace_id"] == format_trace_id(9)
        assert d["name"] == "op"
        assert d["layer"] == "router"
        assert d["duration_us"] >= 0
        assert d["attrs"] == {"n": 2}


class TestFlightRecorder:
    def _span(self, trace_id=5):
        span = Span(trace_id, "op", "router", 0)
        span.duration_ns = 1000
        return span

    def test_ring_wraparound_keeps_newest(self):
        rec = FlightRecorder(capacity=3)
        for i in range(7):
            rec.note("evt", seq=i)
        assert len(rec) == 3
        assert rec.recorded == 7            # total survives the wrap
        assert [row["seq"] for row in rec.dump()] == [4, 5, 6]

    def test_mixed_spans_and_notes(self):
        rec = FlightRecorder(capacity=8)
        rec.record_span(self._span())
        rec.note("default_reply", backend="b", key="k")
        rows = rec.dump()
        assert rows[0]["type"] == "span" and rows[0]["name"] == "op"
        assert rows[1]["type"] == "note" and rows[1]["kind"] == "default_reply"
        assert rows[1]["key"] == "k"

    def test_dump_text_is_json_lines(self):
        rec = FlightRecorder(capacity=4)
        rec.note("evt", n=1)
        rec.record_span(self._span())
        lines = rec.dump_text().splitlines()
        assert len(lines) == 2
        for line in lines:
            json.loads(line)

    def test_capacity_validated(self):
        with pytest.raises(ConfigurationError):
            FlightRecorder(capacity=0)

    @pytest.mark.skipif(not hasattr(signal, "SIGUSR1"),
                        reason="platform lacks SIGUSR1")
    def test_sigusr1_dumps_to_stream(self):
        rec = FlightRecorder(capacity=4)
        rec.note("evt", n=1)
        out = io.StringIO()
        previous = signal.getsignal(signal.SIGUSR1)
        try:
            assert install_dump_signal(rec, stream=out)
            os.kill(os.getpid(), signal.SIGUSR1)
            text = out.getvalue()
            assert "flight recorder dump (1 of 1 recorded)" in text
            assert '"kind": "evt"' in text
        finally:
            signal.signal(signal.SIGUSR1, previous)
