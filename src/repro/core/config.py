"""Typed configuration for Janus deployments (real runtime and simulator).

Defaults follow the paper's implementation choices: a 100-microsecond UDP
communication timeout with at most 5 retries on the router (§III-B), worker
threads equal to the number of vCPUs on the QoS server (§III-C), and
configurable database sync / check-pointing intervals (§II-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.bucket import RefillMode
from repro.core.errors import ConfigurationError
from repro.core.rules import DefaultRulePolicy, DENY_ALL

__all__ = [
    "AdmissionConfig",
    "ProcPlaneConfig",
    "RouterConfig",
    "ServerConfig",
    "ClusterTopology",
    "JanusConfig",
]


@dataclass(frozen=True, slots=True)
class AdmissionConfig:
    """Configuration of one QoS server's admission controller."""

    #: Policy for keys absent from the database (§II-D).
    default_rule: DefaultRulePolicy = DENY_ALL
    #: Bucket refill behaviour; INTERVAL matches the paper's housekeeping
    #: thread, CONTINUOUS is the exact lazy variant.
    refill_mode: RefillMode = RefillMode.CONTINUOUS
    #: Housekeeping refill period (seconds); only used in INTERVAL mode.
    refill_interval: float = 0.1
    #: "configurable update interval" for pulling rule changes from the DB.
    sync_interval: float = 30.0
    #: "configurable update interval" for check-pointing credits to the DB.
    checkpoint_interval: float = 30.0
    #: Number of lock shards protecting the local QoS table.  1 reproduces
    #: the paper's single synchronized map (its acknowledged bottleneck);
    #: larger values implement the paper's "can be further optimized"
    #: future work and are measured by the locking ablation.
    lock_shards: int = 1
    #: Number of striped decision-counter blocks.  0 (default) allocates
    #: one stripe per lock shard; counter updates then piggyback on the
    #: shard lock the decision already holds, keeping the hot path at
    #: exactly one lock acquisition.  An explicit value below
    #: ``lock_shards`` shares stripes across shards (cheaper to merge when
    #: stats are scraped aggressively) at the cost of one extra
    #: low-contention lock acquisition per decision.
    stats_stripes: int = 0
    #: Maximum buckets kept across the table shards; 0 = unbounded.  When
    #: the table exceeds the cap, the housekeeping refill pass force-evicts
    #: idle buckets (full-and-idle buckets are already evicted lazily —
    #: they are exactly reconstructible from their rule, so eviction is
    #: lossless).  Keys with an outstanding credit lease are never evicted.
    max_table_entries: int = 0
    #: Server-wide default for the fraction of a bucket's capacity that
    #: may be out on credit leases at once; a rule's own
    #: ``max_lease_fraction`` overrides it.  0 disables granting.
    max_lease_fraction: float = 0.5
    #: Ceiling on the lease TTL the server will grant (seconds); requests
    #: asking for more are clamped, so a misconfigured or hostile router
    #: cannot park credit beyond the server's revocation horizon.
    max_lease_ttl: float = 5.0
    #: Storage backing the local QoS table.  ``"slab"`` (default) packs
    #: bucket state into columnar arrays (~60 bytes/key, batch-friendly —
    #: see ``repro.core.slabstore``); ``"object"`` keeps the seed
    #: dict-of-LeakyBucket layout for A/B comparison and fallback.  Both
    #: backends produce bit-identical admit/deny streams.
    table_backend: str = "slab"

    def __post_init__(self) -> None:
        if self.refill_interval <= 0:
            raise ConfigurationError(f"refill_interval must be > 0, got {self.refill_interval}")
        if self.sync_interval <= 0 or self.checkpoint_interval <= 0:
            raise ConfigurationError("sync and checkpoint intervals must be > 0")
        if self.lock_shards < 1:
            raise ConfigurationError(f"lock_shards must be >= 1, got {self.lock_shards}")
        if self.stats_stripes < 0:
            raise ConfigurationError(
                f"stats_stripes must be >= 0 (0 = one per lock shard), "
                f"got {self.stats_stripes}")
        if self.max_table_entries < 0:
            raise ConfigurationError(
                f"max_table_entries must be >= 0 (0 = unbounded), "
                f"got {self.max_table_entries}")
        if not (0.0 <= self.max_lease_fraction <= 1.0):
            raise ConfigurationError(
                f"max_lease_fraction must lie in [0, 1], "
                f"got {self.max_lease_fraction}")
        if self.max_lease_ttl <= 0:
            raise ConfigurationError(
                f"max_lease_ttl must be > 0, got {self.max_lease_ttl}")
        if self.table_backend not in ("slab", "object"):
            raise ConfigurationError(
                f"table_backend must be 'slab' or 'object', "
                f"got {self.table_backend!r}")


@dataclass(frozen=True, slots=True)
class RouterConfig:
    """Configuration of a request-router node (§III-B)."""

    #: Per-attempt UDP timeout.  The paper uses 100 microseconds on AWS's
    #: intra-AZ network; the real-socket LocalCluster raises this because a
    #: GIL-scheduled Python server cannot guarantee 100 us turnarounds.
    udp_timeout: float = 100e-6
    #: Maximum number of attempts (the paper's "maximum number of 5 retries"
    #: yields a worst case of 5 x timeout before the default reply).
    max_retries: int = 5
    #: Verdict returned to the client when all retries fail.  Fail-open
    #: (True) preserves availability; fail-closed (False) preserves quota.
    default_reply: bool = True
    #: Router↔server wire path.  ``"channel"`` multiplexes every handler
    #: thread over one shared non-blocking UDP channel per backend
    #: (protocol-v2 batch frames, selectors event thread, timer-wheel
    #: retries); ``"thread"`` reproduces the seed per-thread blocking
    #: socket with one datagram per admission check (kept selectable for
    #: A/B measurement — see ``repro.metrics.wirepath``); ``"auto"``
    #: picks per request: the blocking thread path while concurrency and
    #: batch size sit below ``auto_channel_threshold`` (where
    #: BENCH_wirepath shows the channel's event-loop indirection costs
    #: more than it amortizes), the channel otherwise.
    wire_mode: str = "channel"
    #: Maximum requests the channel coalesces into one v2 frame per send.
    #: 1 disables batching (every request is its own frame/datagram);
    #: larger values amortize syscall and wakeup cost under load without
    #: adding latency when idle (a lone pending request is sent
    #: immediately, never held back to fill a batch).
    batch_size: int = 64
    #: Datagram version the channel emits: 2 (batch frames) or 1
    #: (single-message datagrams, for v1-only QoS servers).  Servers
    #: answer in the version the request arrived with, so either value
    #: interoperates with a v2 server.
    wire_protocol: int = 2
    #: Timer-wheel granularity (seconds) for channel-mode timeouts and
    #: retries.  An expiry fires within one tick after its deadline, so
    #: the effective retry timeout is ``udp_timeout`` rounded up to the
    #: next tick; ticks far below ``udp_timeout`` buy precision at the
    #: cost of more event-loop wakeups.
    timer_tick: float = 0.005
    #: Head-based trace sampling rate for requests that arrive *without*
    #: a trace id: 0 disables router-initiated tracing (requests already
    #: traced by the client are always honoured), 1 traces everything,
    #: and fractional rates trace deterministically 1-in-N (see
    #: :class:`repro.obs.tracing.HeadSampler`).  The tracing-overhead
    #: benchmark (``BENCH_obs.json``) gates the default-rate cost at
    #: ≤ 5% throughput and idle-p99.
    trace_sample_rate: float = 0.0
    #: ``wire_mode="auto"`` decision point: a single check rides the
    #: thread path while fewer than this many exchanges are in flight on
    #: the router, and a batch rides the channel once it carries at
    #: least this many items.  2 means "one lone sequential client stays
    #: on the seed path; any real concurrency or batching multiplexes".
    auto_channel_threshold: int = 2
    #: Enable the credit-lease plane: hot keys are admitted router-locally
    #: from a leased credit balance with zero wire traffic (see
    #: :mod:`repro.runtime.lease`).  Off by default — when off, the
    #: router's wire image is byte-identical to the lease-free protocol
    #: and the hot path carries no tracker overhead.  Leasing requires
    #: the channel wire path (``wire_mode`` "channel" or "auto" with
    #: ``wire_protocol=2``): grants and revokes arrive on the channel's
    #: event loop.
    lease_enabled: bool = False
    #: A key becomes lease-worthy once it accrues this many wire checks
    #: within one decay window of the router's hotness tracker.
    lease_hot_threshold: int = 32
    #: Hotness-tracker decay window (seconds): counts halve every window,
    #: so a key that goes cold stops renewing within a few windows.
    lease_window: float = 1.0
    #: Credits requested per lease grant.  Sized against the hot key's
    #: observed rate: one grant should cover roughly a TTL's worth of
    #: checks.  The server may grant less (bucket low, or the rule's
    #: ``max_lease_fraction`` cap binding).
    lease_credits: float = 64.0
    #: Lease TTL requested (seconds); the server clamps it to its own
    #: ``AdmissionConfig.max_lease_ttl``.  On expiry the router returns
    #: the unspent remainder and renews if the key is still hot.
    lease_ttl: float = 0.5
    #: Maximum keys tracked/leased per router (memory bound on the
    #: tracker and lease cache; least-hot keys are dropped first).
    lease_max_keys: int = 1024

    def __post_init__(self) -> None:
        if self.udp_timeout <= 0:
            raise ConfigurationError(f"udp_timeout must be > 0, got {self.udp_timeout}")
        if self.max_retries < 1:
            raise ConfigurationError(f"max_retries must be >= 1, got {self.max_retries}")
        if self.wire_mode not in ("channel", "thread", "auto"):
            raise ConfigurationError(
                f"wire_mode must be 'channel', 'thread' or 'auto', "
                f"got {self.wire_mode!r}")
        if self.auto_channel_threshold < 1:
            raise ConfigurationError(
                f"auto_channel_threshold must be >= 1, "
                f"got {self.auto_channel_threshold}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.wire_protocol not in (1, 2):
            raise ConfigurationError(
                f"wire_protocol must be 1 or 2, got {self.wire_protocol}")
        if self.timer_tick <= 0:
            raise ConfigurationError(
                f"timer_tick must be > 0, got {self.timer_tick}")
        if not (0.0 <= self.trace_sample_rate <= 1.0):
            raise ConfigurationError(
                f"trace_sample_rate must be in [0, 1], "
                f"got {self.trace_sample_rate}")
        if self.lease_hot_threshold < 1:
            raise ConfigurationError(
                f"lease_hot_threshold must be >= 1, "
                f"got {self.lease_hot_threshold}")
        if self.lease_window <= 0 or self.lease_ttl <= 0:
            raise ConfigurationError(
                "lease_window and lease_ttl must be > 0")
        if self.lease_credits <= 0:
            raise ConfigurationError(
                f"lease_credits must be > 0, got {self.lease_credits}")
        if self.lease_max_keys < 1:
            raise ConfigurationError(
                f"lease_max_keys must be >= 1, got {self.lease_max_keys}")
        if self.lease_enabled and self.wire_mode == "thread":
            raise ConfigurationError(
                "lease_enabled requires wire_mode 'channel' or 'auto' "
                "(grants arrive on the channel event loop)")
        if self.lease_enabled and self.wire_protocol != 2:
            raise ConfigurationError(
                "lease_enabled requires wire_protocol 2 (lease frames "
                "are v2-only)")

    @property
    def worst_case_wait(self) -> float:
        """Upper bound on time spent before the default reply (§III-B)."""
        return self.udp_timeout * self.max_retries


@dataclass(frozen=True, slots=True)
class ServerConfig:
    """Configuration of a QoS server node (§III-C)."""

    #: Worker threads polling the FIFO; "N equals the number of vCPUs".
    workers: int = 4
    #: Maximum datagrams the UDP listener drains per socket wakeup and
    #: hands to a worker as one FIFO item.  1 reproduces the paper's
    #: packet-at-a-time listener; larger values amortize the queue and
    #: syscall overhead under load without adding latency when idle (the
    #: first receive still blocks, only already-queued packets are drained).
    batch_size: int = 32
    #: Blocking-receive timeout on the listener socket (seconds).  Bounds
    #: how long shutdown can lag behind ``stop()``: the listener only
    #: notices the stop flag between receives.  Lower values shut down
    #: faster at the cost of more idle wakeups.
    recv_timeout: float = 0.2
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: Replication pull period for an optional HA slave (§III-C).
    ha_replication_interval: float = 1.0
    #: Duplicate-suppression window in seconds (extension; see
    #: :mod:`repro.core.dedup`).  ``None`` reproduces the paper's stateless
    #: server, where a router retry crossing a delayed response consumes a
    #: duplicate credit.
    dedup_window: "float | None" = None
    #: Shared-nothing worker *processes* per QoS node (the multi-core
    #: plane; see :mod:`repro.runtime.procplane`).  1 reproduces the
    #: paper's single-process node (worker *threads* only, GIL-bound in
    #: this Python reproduction).  ``P > 1`` splits the node into P
    #: processes, each owning the CRC32 shard range
    #: ``crc32(key) % P == i`` with its own admission controller,
    #: decode loop and metrics registry; the simulator models the same
    #: topology as P disjoint controller/lock partitions.
    processes: int = 1

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {self.workers}")
        if self.processes < 1:
            raise ConfigurationError(
                f"processes must be >= 1, got {self.processes}")
        if self.batch_size < 1:
            raise ConfigurationError(
                f"batch_size must be >= 1, got {self.batch_size}")
        if self.recv_timeout <= 0:
            raise ConfigurationError(
                f"recv_timeout must be > 0, got {self.recv_timeout}")
        if self.ha_replication_interval <= 0:
            raise ConfigurationError("ha_replication_interval must be > 0")
        if self.dedup_window is not None and self.dedup_window <= 0:
            raise ConfigurationError("dedup_window must be > 0 when set")


@dataclass(frozen=True, slots=True)
class ProcPlaneConfig:
    """Supervisor knobs for a multi-process QoS node.

    Governs :class:`repro.runtime.procplane.ProcPlaneNode`: how UDP
    traffic fans in across the worker processes, and how the supervisor
    supervises (heartbeats, crash restarts, graceful drain).
    """

    #: Fan-in mode.  ``"portmap"`` (default) gives every worker its own
    #: private port and publishes the ordered per-shard port map to the
    #: router, whose ``CRC32(key) mod N`` then lands each frame directly
    #: on the owning process — zero cross-process hops on the hot path.
    #: ``"reuseport"`` binds every worker to one shared port with
    #: ``SO_REUSEPORT``; the kernel spreads frames, and a worker forwards
    #: out-of-range keys to the owning sibling via a local envelope (one
    #: extra hop for roughly ``(P-1)/P`` of traffic).
    fanin: str = "portmap"
    #: How often each worker writes a heartbeat up its control pipe.
    heartbeat_interval: float = 0.2
    #: Silence longer than this (with the process still notionally alive)
    #: is treated as a hang and triggers a restart.
    heartbeat_timeout: float = 3.0
    #: How often each worker ships a bucket-table snapshot up the pipe —
    #: the re-seed source when the supervisor restarts it after a crash.
    snapshot_interval: float = 0.5
    #: Pause before respawning a dead worker (crash-loop damping).
    restart_backoff: float = 0.05
    #: Restarts allowed per worker slot before the supervisor gives up
    #: on it (the router's default replies then cover its shard range).
    max_restarts: int = 16
    #: How long the supervisor waits for a spawned worker to report ready.
    spawn_timeout: float = 30.0
    #: How long ``stop()`` waits for a worker to drain before terminating it.
    drain_timeout: float = 5.0

    def __post_init__(self) -> None:
        if self.fanin not in ("portmap", "reuseport"):
            raise ConfigurationError(
                f"fanin must be 'portmap' or 'reuseport', got {self.fanin!r}")
        for name in ("heartbeat_interval", "heartbeat_timeout",
                     "snapshot_interval", "restart_backoff",
                     "spawn_timeout", "drain_timeout"):
            if getattr(self, name) <= 0:
                raise ConfigurationError(
                    f"{name} must be > 0, got {getattr(self, name)}")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ConfigurationError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"({self.heartbeat_timeout} <= {self.heartbeat_interval})")
        if self.max_restarts < 0:
            raise ConfigurationError(
                f"max_restarts must be >= 0, got {self.max_restarts}")


@dataclass(frozen=True, slots=True)
class ClusterTopology:
    """Shape of a Janus deployment: node counts and instance types."""

    n_routers: int = 2
    n_qos_servers: int = 2
    router_instance: str = "c3.xlarge"
    qos_instance: str = "c3.xlarge"
    #: "gateway" (ELB-style, Fig. 1a) or "dns" (Route53-style, Fig. 1b).
    load_balancer: str = "gateway"
    #: Optional hot-standby slave per QoS server (§III-C).
    qos_ha: bool = False
    #: Multi-AZ master/standby database (§III-D).
    db_ha: bool = True

    def __post_init__(self) -> None:
        if self.n_routers < 1 or self.n_qos_servers < 1:
            raise ConfigurationError("topology needs at least one router and one QoS server")
        if self.load_balancer not in ("gateway", "dns"):
            raise ConfigurationError(
                f"load_balancer must be 'gateway' or 'dns', got {self.load_balancer!r}")


@dataclass(frozen=True, slots=True)
class JanusConfig:
    """Aggregate configuration for a whole deployment."""

    topology: ClusterTopology = field(default_factory=ClusterTopology)
    router: RouterConfig = field(default_factory=RouterConfig)
    server: ServerConfig = field(default_factory=ServerConfig)
    #: DNS record TTL; §V-A uses 30 seconds and discusses the resulting
    #: client-pinning skew of the DNS load balancer.
    dns_ttl: float = 30.0

    def __post_init__(self) -> None:
        if self.dns_ttl <= 0:
            raise ConfigurationError(f"dns_ttl must be > 0, got {self.dns_ttl}")
