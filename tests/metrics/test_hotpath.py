"""Tests for the hot-path micro-harness (repro.metrics.hotpath)."""

from __future__ import annotations

import json

import pytest

from repro.metrics.hotpath import (
    HotpathPoint,
    HotpathReport,
    measure_decisions_per_sec,
    run_hotpath_matrix,
    write_report,
)


def small_matrix() -> HotpathReport:
    return run_hotpath_matrix(
        lock_shards=(1, 2), workers=(1, 2),
        checks_per_worker=200, n_keys=16)


class TestMeasure:
    def test_single_point_shape(self):
        point = measure_decisions_per_sec(
            lock_shards=4, workers=2, checks_per_worker=500, n_keys=16)
        assert point.path == "fused"
        assert point.lock_shards == 4
        assert point.workers == 2
        assert point.decisions == 1_000
        assert point.elapsed_s > 0
        assert point.decisions_per_sec == pytest.approx(
            point.decisions / point.elapsed_s)

    def test_seed_path_point(self):
        point = measure_decisions_per_sec(
            lock_shards=1, workers=1, fused=False,
            checks_per_worker=200, n_keys=8)
        assert point.path == "seed"
        assert point.decisions_per_sec > 0


class TestReport:
    def test_matrix_covers_full_grid(self):
        report = small_matrix()
        # seed + fused + one batch arm per backend, per (shards, workers).
        assert len(report.points) == 4 * 2 * 2    # paths × shards × workers
        for shards in (1, 2):
            for workers in (1, 2):
                assert report.point("seed", shards, workers) is not None
                assert report.point("fused", shards, workers) is not None
                assert report.point("batch-slab", shards, workers) is not None
                assert report.point("batch-object", shards,
                                    workers) is not None
        assert report.point("fused", 99, 1) is None

    def test_speedup_is_fused_over_seed(self):
        report = HotpathReport(points=[
            HotpathPoint("seed", 8, 8, 100, 1.0, 100.0),
            HotpathPoint("fused", 8, 8, 100, 0.5, 200.0),
        ])
        assert report.speedup(8, 8) == pytest.approx(2.0)
        assert report.speedup(1, 1) is None

    def test_as_dict_includes_speedups(self):
        report = small_matrix()
        d = report.as_dict()
        assert set(d) == {"machine", "points", "speedup_fused_over_seed",
                          "speedup_batch_over_fused", "memory",
                          "memory_slab_over_object"}
        assert "shards1_workers1" in d["speedup_fused_over_seed"]
        assert "batch-slab_shards1_workers1" in d["speedup_batch_over_fused"]
        assert d["machine"]["cpu_count"] >= 1
        assert len(d["points"]) == len(report.points)


class TestWriteReport:
    def test_round_trips_as_json(self, tmp_path):
        report = small_matrix()
        out = tmp_path / "bench.json"
        write_report(out, report)
        loaded = json.loads(out.read_text())
        assert loaded == report.as_dict()
        assert loaded["points"][0]["decisions_per_sec"] > 0
