"""Transitive blocking-under-lock: the whole-program half of PR 5's rule.

``blocking-under-lock`` sees one lexical scope: ``with self._lock:
self.sock.send(...)`` is flagged, but ``with self._lock:
self._flush()`` is invisible to it even when ``_flush`` — or something
three hops below it — sleeps on a socket.  After the lease ledger,
procplane supervisor and reshard coordinator, most lock-holding code
calls helpers, so the per-scope rule only guards the leaves.

This checker walks the :mod:`repro.analysis.callgraph` graph instead:
for every call made while a lock is held (lexically inside a ``with
<lock>:`` block, or anywhere in a ``*_locked``/``*_unlocked`` method),
it BFS-searches the callee's transitive closure (depth-bounded, cycle
safe) for a function containing a *direct* blocking operation — the
same sink model the per-scope rule uses: socket send/recv, ``time.
sleep``, ``open()``/``print()``, logging.  A hit reports the full call
path and the sink, e.g.::

    with self._lock: self._drain() — transitively blocks:
    _drain -> _flush_frames -> _send_frame: socket .sendto() at
    runtime/udp_channel.py:312

Two deliberate exclusions keep the rule precise:

- a call that *is itself* a blocking op is the per-scope rule's finding,
  not ours — one bug, one finding;
- a sink line suppressed with ``# janus-lint: disable=blocking-under-
  lock`` (e.g. the channel's group-commit send on a non-blocking socket)
  is a *reviewed* non-blocking operation, so chains ending there are not
  re-flagged transitively.  Suppressing a call site suppresses only that
  site, as usual.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.callgraph import (
    MAX_CALL_DEPTH,
    CallGraph,
    FunctionInfo,
    get_call_graph,
)
from repro.analysis.framework import Checker, Finding, Project
from repro.analysis.locking import (
    GUARDED_SUFFIXES,
    blocking_reason,
    with_holds_lock,
)

__all__ = ["TransitiveBlockingChecker"]

#: Rules whose pragma on a sink line marks it as reviewed-non-blocking.
_SINK_RULES = ("blocking-under-lock", "transitive-blocking-under-lock")


def _direct_sink(info: FunctionInfo) -> "Optional[tuple[str, int]]":
    """The first unsuppressed blocking op lexically in ``info``.

    Nested ``def``/``lambda``/``class`` bodies are skipped (deferred
    work) and pragma'd lines are honoured, so a justified non-blocking
    send does not poison every chain through its function.
    """
    stack: "list[ast.AST]" = list(ast.iter_child_nodes(info.node))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            reason = blocking_reason(node)
            if reason is not None and not any(
                    info.module.suppressed(rule, node.lineno)
                    for rule in _SINK_RULES):
                return reason, node.lineno
        stack.extend(ast.iter_child_nodes(node))
    return None


class TransitiveBlockingChecker(Checker):
    """Calls under a lock must not *transitively* reach blocking ops."""

    rule = "transitive-blocking-under-lock"
    description = ("calls made while a lock is held must not reach "
                   "socket/sleep/file-I/O/logging through any chain of "
                   "project calls (call graph BFS, depth-bounded); the "
                   "finding prints the offending path")
    scope = ("core", "runtime", "obs", "procplane", "reshard",
             "lease.py", "leasepath.py", "reshardpath.py")
    project_wide = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        graph = get_call_graph(project)
        sink_cache: "dict[str, Optional[tuple[str, int]]]" = {}

        def sink_of(qname: str) -> "Optional[tuple[str, int]]":
            if qname not in sink_cache:
                info = graph.functions.get(qname)
                sink_cache[qname] = _direct_sink(info) if info else None
            return sink_cache[qname]

        for info in graph.functions.values():
            if not self.path_in_scope(info.module.path):
                continue
            yield from self._check_function(graph, info, sink_of)

    def _check_function(self, graph: CallGraph, info: FunctionInfo,
                        sink_of) -> Iterator[Finding]:
        calls_by_pos = {(c.lineno, c.col): c
                        for c in graph.calls_from(info.qname)}
        whole_body = info.name.endswith(GUARDED_SUFFIXES)
        for call_node, under_lock in _walk_calls(info.node, whole_body):
            if not under_lock:
                continue
            site = calls_by_pos.get((call_node.lineno,
                                     call_node.col_offset))
            if site is None:
                continue                      # unresolved receiver
            if blocking_reason(call_node) is not None:
                continue                      # the per-scope rule's finding
            path = graph.find_path(
                site.callee,
                lambda f: sink_of(f.qname) is not None,
                max_depth=MAX_CALL_DEPTH)
            if path is None:
                continue
            reason, sink_line = sink_of(path[-1])
            sink_fn = graph.functions[path[-1]]
            chain = " -> ".join(
                graph.functions[q].display for q in path)
            held = (f"inside {info.display}() which runs with its "
                    f"caller's lock held"
                    if whole_body and not _in_lock_block(
                        info.node, call_node)
                    else "while a lock is held")
            yield info.module.finding(
                self.rule, call_node,
                f"call chain {chain} reaches {reason} at "
                f"{sink_fn.module.path}:{sink_line} {held} — move the "
                f"blocking work outside the critical section or break "
                f"the chain")


def _walk_calls(func: "ast.FunctionDef | ast.AsyncFunctionDef",
                start_locked: bool,
                ) -> "Iterator[tuple[ast.Call, bool]]":
    """Yield ``(call, under_lock)`` for calls lexically in ``func``."""

    def walk(node: ast.AST, under_lock: bool) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.Lambda, ast.ClassDef)):
                continue
            child_locked = under_lock
            if isinstance(child, ast.With) and with_holds_lock(child):
                child_locked = True
            if isinstance(child, ast.Call):
                yield child, child_locked
            yield from walk(child, child_locked)

    yield from walk(func, start_locked)


def _in_lock_block(func: "ast.FunctionDef | ast.AsyncFunctionDef",
                   target: ast.Call) -> bool:
    """Is ``target`` inside a ``with <lock>:`` block of ``func`` itself?"""
    for call, under in _walk_calls(func, False):
        if call is target:
            return under
    return False
