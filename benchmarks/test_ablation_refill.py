"""Ablation: continuous (lazy) vs interval (housekeeping) refill.

The paper refills buckets from a housekeeping thread "with predefined
intervals" (§III-C); the continuous variant recomputes credit from elapsed
time on every access.  This ablation measures (a) the admission-accuracy
difference — how far realized admitted rate deviates from the purchased
rate under a steady overload — and (b) the hot-path cost of each mode.
"""

from __future__ import annotations

import pytest

from repro.core.bucket import LeakyBucket, RefillMode
from repro.core.clock import ManualClock
from repro.metrics.report import format_table

RATE = 100.0            # purchased rps
OFFERED = 400.0         # offered rps (4x overload)
DURATION = 60.0


def realized_rate(mode: RefillMode, refill_interval: float = 0.1) -> float:
    clock = ManualClock()
    bucket = LeakyBucket(10 * RATE, RATE, initial_credit=0.0,
                         mode=mode, clock=clock)
    dt = 1.0 / OFFERED
    next_refill = refill_interval
    admitted = 0
    steps = int(DURATION * OFFERED)
    for step in range(steps):
        clock.advance(dt)
        if mode is RefillMode.INTERVAL and clock() >= next_refill:
            bucket.refill()
            next_refill += refill_interval
        admitted += bucket.try_consume()
    return admitted / DURATION


@pytest.mark.parametrize("mode", [RefillMode.CONTINUOUS, RefillMode.INTERVAL])
def test_refill_mode_hot_path(benchmark, mode):
    clock = ManualClock()
    bucket = LeakyBucket(1e9, 1e9, mode=mode, clock=clock)

    def consume_batch():
        clock.advance(1e-4)
        for _ in range(100):
            bucket.try_consume()

    benchmark(consume_batch)


def test_refill_accuracy_report(benchmark, report_sink):
    def sweep():
        out = []
        for label, mode, interval in (
                ("continuous (lazy)", RefillMode.CONTINUOUS, 0.0),
                ("interval 10 ms", RefillMode.INTERVAL, 0.01),
                ("interval 100 ms (paper-style)", RefillMode.INTERVAL, 0.1),
                ("interval 1 s", RefillMode.INTERVAL, 1.0)):
            rate = realized_rate(mode, interval or 0.1)
            out.append((label, round(rate, 2),
                        f"{(rate - RATE) / RATE * 100:+.2f}%"))
        return out
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_sink(format_table(
        ("refill mode", "admitted rps (purchased 100)", "error"), rows,
        title="Ablation: refill mode vs admission accuracy at 4x overload"))
    # Both modes must enforce the purchased rate within a few percent.
    for _, rate, _ in rows:
        assert rate == pytest.approx(RATE, rel=0.05)


def test_interval_mode_burst_granularity(benchmark):
    """Interval mode admits in quanta of rate x interval; with a coarse
    interval the admissions bunch up, which the continuous mode avoids."""
    def run():
        clock = ManualClock()
        bucket = LeakyBucket(1000.0, RATE, initial_credit=0.0,
                             mode=RefillMode.INTERVAL, clock=clock)
        clock.advance(1.0)
        bucket.refill()                 # one coarse quantum: 100 credits
        return sum(bucket.try_consume() for _ in range(200))
    burst = benchmark(run)
    assert burst == 100                 # the whole quantum at once
