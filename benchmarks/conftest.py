"""Shared configuration for the benchmark harness.

Every ``test_figN_*``/``test_tableN_*`` benchmark regenerates one table or
figure of the paper (at the ``REPRO_SCALE`` profile) and prints the same
rows/series the paper reports; the ``test_ablation_*`` benchmarks measure
the design choices DESIGN.md calls out; ``test_core_micro`` tracks the hot
admission path.

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    # Benchmarks print their figure reports; -s is implied for readability
    # when run through the documented command, but keep output useful
    # either way by flushing through the capture.
    pass


@pytest.fixture
def report_sink(capsys):
    """Print a report so it lands in the benchmark output."""
    def emit(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)
    return emit
