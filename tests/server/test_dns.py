"""Tests for the Route53-model DNS and resolver cache (§II-A, §V-A)."""

from __future__ import annotations

import pytest

from repro.core.clock import ManualClock
from repro.core.errors import ConfigurationError, RoutingError
from repro.server.dns import DnsService, Resolver


@pytest.fixture
def dns(rng) -> DnsService:
    return DnsService(rng, default_ttl=30.0)


class TestARecords:
    def test_query_returns_all_addresses(self, dns):
        dns.register("janus.example", ["a", "b", "c"])
        addresses, ttl = dns.query("janus.example")
        assert sorted(addresses) == ["a", "b", "c"]
        assert ttl == 30.0

    def test_permutation_varies(self, dns):
        """'With each DNS response, the IP address sequence ... is
        permuted' — over many queries every address leads sometimes."""
        dns.register("janus.example", [f"rr-{i}" for i in range(4)])
        firsts = {dns.query("janus.example")[0][0] for _ in range(200)}
        assert len(firsts) == 4

    def test_nxdomain(self, dns):
        with pytest.raises(RoutingError):
            dns.query("nope.example")

    def test_set_addresses_updates(self, dns):
        dns.register("janus.example", ["a"])
        dns.set_addresses("janus.example", ["x", "y"])
        assert sorted(dns.query("janus.example")[0]) == ["x", "y"]

    def test_set_addresses_unknown_name(self, dns):
        with pytest.raises(RoutingError):
            dns.set_addresses("nope", ["x"])

    def test_empty_record_rejected(self, dns):
        with pytest.raises(ConfigurationError):
            dns.register("janus.example", [])

    def test_custom_ttl(self, dns):
        dns.register("fast.example", ["a"], ttl=1.0)
        assert dns.query("fast.example")[1] == 1.0

    def test_invalid_default_ttl(self, rng):
        with pytest.raises(ConfigurationError):
            DnsService(rng, default_ttl=0.0)


class TestFailoverRecords:
    def test_resolves_to_primary_when_healthy(self, dns):
        dns.register_failover("qos-0.janus", "master", "slave")
        assert dns.query("qos-0.janus")[0] == ["master"]

    def test_failover_flips_to_secondary(self, dns):
        dns.register_failover("qos-0.janus", "master", "slave")
        active = dns.mark_unhealthy("qos-0.janus")
        assert active == "slave"
        assert dns.query("qos-0.janus")[0] == ["slave"]

    def test_failover_without_secondary_raises(self, dns):
        dns.register_failover("qos-0.janus", "master")
        dns.mark_unhealthy("qos-0.janus")
        with pytest.raises(RoutingError):
            dns.query("qos-0.janus")

    def test_promote_installs_new_pair(self, dns):
        dns.register_failover("qos-0.janus", "m1", "s1")
        dns.mark_unhealthy("qos-0.janus")
        dns.promote("qos-0.janus", "s1", "s2")
        assert dns.query("qos-0.janus")[0] == ["s1"]

    def test_mark_unhealthy_unknown_name(self, dns):
        with pytest.raises(RoutingError):
            dns.mark_unhealthy("nope")


class TestResolverCache:
    def test_caches_within_ttl(self, dns):
        """'QoS requests from the same client node always hit the same
        request router node within the TTL cycle' (§V-A)."""
        dns.register("janus.example", ["a", "b", "c", "d"])
        clock = ManualClock()
        resolver = Resolver(dns, clock)
        first = resolver.resolve_one("janus.example")
        for _ in range(50):
            clock.advance(0.5)
            assert resolver.resolve_one("janus.example") == first
        assert resolver.cache_misses == 1
        assert resolver.cache_hits == 50

    def test_expires_after_ttl(self, dns):
        dns.register("janus.example", ["a", "b", "c", "d"], ttl=30.0)
        clock = ManualClock()
        resolver = Resolver(dns, clock)
        resolver.resolve_one("janus.example")
        clock.advance(30.1)
        resolver.resolve_one("janus.example")
        assert resolver.cache_misses == 2

    def test_flush_clears_cache(self, dns):
        dns.register("janus.example", ["a"])
        resolver = Resolver(dns, ManualClock())
        resolver.resolve_one("janus.example")
        resolver.flush()
        resolver.resolve_one("janus.example")
        assert resolver.cache_misses == 2

    def test_failover_visible_after_ttl(self, dns):
        dns.register_failover("qos-0.janus", "master", "slave", ttl=5.0)
        clock = ManualClock()
        resolver = Resolver(dns, clock)
        assert resolver.resolve_one("qos-0.janus") == "master"
        dns.mark_unhealthy("qos-0.janus")
        assert resolver.resolve_one("qos-0.janus") == "master"  # cached
        clock.advance(5.1)
        assert resolver.resolve_one("qos-0.janus") == "slave"
