# Janus reproduction — common entry points.

PYTHON ?= python

.PHONY: install test bench experiments experiments-paper examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

experiments:
	$(PYTHON) -m repro.experiments.runner

experiments-paper:
	REPRO_SCALE=paper $(PYTHON) -m repro.experiments.runner

examples:
	@for script in examples/*.py; do \
		echo "=== $$script"; \
		$(PYTHON) $$script || exit 1; \
	done

clean:
	rm -rf build src/*.egg-info .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
