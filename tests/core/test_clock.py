"""Tests for the clock abstraction."""

from __future__ import annotations

import time

import pytest

from repro.core.clock import MONOTONIC, ManualClock


class TestManualClock:
    def test_starts_at_zero(self):
        assert ManualClock()() == 0.0

    def test_custom_start(self):
        assert ManualClock(5.0)() == 5.0

    def test_advance(self):
        clk = ManualClock()
        clk.advance(1.5)
        clk.advance(0.5)
        assert clk() == 2.0

    def test_set(self):
        clk = ManualClock()
        clk.set(10.0)
        assert clk() == 10.0

    def test_no_time_travel(self):
        clk = ManualClock(5.0)
        with pytest.raises(ValueError):
            clk.advance(-1.0)
        with pytest.raises(ValueError):
            clk.set(1.0)


def test_monotonic_is_wall_clock():
    assert MONOTONIC is time.monotonic
    a = MONOTONIC()
    b = MONOTONIC()
    assert b >= a
