"""Regression gate for the multi-process QoS plane (PR 6).

Runs the worker-count sweep of :mod:`repro.metrics.multicore` over real
loopback sockets — a :class:`~repro.runtime.procplane.ProcPlaneNode` at
1 worker process (the single-process baseline) and at 2 — and writes
``BENCH_multicore.json`` at the repository root for the performance
trajectory.

Gate: **aggregate decisions/s at 2 workers ≥ 1.5× single-process**, in
port-map fan-in mode (every check routed straight to the owning worker's
port, zero cross-process hops).  The gate is a statement about CPU
scaling, so on hosts exposing a single CPU the sweep still runs and is
recorded — proving the plane *works* there — but the assertion is
skipped: two processes time-slicing one core cannot beat one process,
by construction.

``MULTICORE_CHECKS`` (env) scales the per-client check count down for
smoke runs.  Run directly with ``make bench-multicore``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.metrics.multicore import run_multicore_bench, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The ISSUE-6 acceptance bar.
TARGET_SPEEDUP = 1.5
GATE_WORKERS = 2
#: Cores needed for a multi-process speedup to be physically possible.
MIN_CPUS_FOR_GATE = 2

CHECKS_PER_CLIENT = int(os.environ.get("MULTICORE_CHECKS", "2000"))


@pytest.fixture(scope="module")
def multicore_report():
    report = run_multicore_bench(
        worker_counts=(1, GATE_WORKERS),
        checks_per_client=CHECKS_PER_CLIENT)
    write_report(REPO_ROOT / "BENCH_multicore.json", report)
    return report


def test_multicore_report_written(multicore_report, report_sink):
    r = multicore_report
    lines = ["Multi-process plane: aggregate decisions/s vs worker count"]
    for p in r.points:
        split = "/".join(f"{d:,}" for d in p.worker_decisions)
        lines.append(
            f"  workers={p.n_workers} fanin={p.fanin} "
            f"clients={p.clients} keys/call={p.keys_per_call:<3d} "
            f"{p.checks_per_sec:>9,.0f} checks/s  "
            f"defaults={p.default_replies}  shard split: {split}")
    speedup = r.speedup(GATE_WORKERS)
    lines.append(
        f"  speedup @{GATE_WORKERS} workers: {speedup:.2f}x "
        f"(target {TARGET_SPEEDUP}x, gated on >= {MIN_CPUS_FOR_GATE} CPUs)")
    report_sink("\n".join(lines))
    assert (REPO_ROOT / "BENCH_multicore.json").exists()
    # Every configured point ran to completion with real responses.
    assert all(p.checks > 0 and p.checks_per_sec > 0 for p in r.points)
    assert speedup is not None


def test_multicore_no_default_replies(multicore_report):
    """Port-map routing must not manufacture default replies.

    Every check goes straight to the worker owning its shard; a default
    reply here would mean a lost or misrouted frame, not load shedding.
    """
    for p in multicore_report.points:
        assert p.default_replies == 0, (
            f"{p.default_replies} default replies at "
            f"n_workers={p.n_workers} — frames lost or misrouted")


def test_multicore_shard_split(multicore_report):
    """At 2 workers, both processes decided a real share of the load.

    CRC32 over uuid keys lands close to even; a worker with zero
    decisions means the port map routed everything to one process and
    the 'aggregate' number is really a single-process number.
    """
    point = multicore_report.point(GATE_WORKERS)
    assert point is not None
    assert len(point.worker_decisions) == GATE_WORKERS
    total = sum(point.worker_decisions)
    assert total > 0
    for shard, decisions in enumerate(point.worker_decisions):
        assert decisions > total * 0.2, (
            f"worker {shard} made {decisions}/{total} decisions — "
            f"shard routing is not spreading load")


def test_multicore_throughput_gate(multicore_report):
    """Headline: 2 worker processes ≥ 1.5× one process, aggregate."""
    cpus = os.cpu_count() or 1
    speedup = multicore_report.speedup(GATE_WORKERS)
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; "
            f"throughput recorded ({speedup:.2f}x) but {GATE_WORKERS} "
            f"processes on one core cannot beat one process")
    assert speedup >= TARGET_SPEEDUP, (
        f"{GATE_WORKERS} workers only {speedup:.2f}x single-process "
        f"aggregate decisions/s (target {TARGET_SPEEDUP}x)")
