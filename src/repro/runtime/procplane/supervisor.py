"""ProcPlaneNode: supervisor for shared-nothing shard worker processes.

The supervisor spawns ``N`` :func:`~repro.runtime.procplane.worker.worker_main`
processes (``spawn`` start method — fork after the parent has started
threads is not safe), tracks their health over duplex pipes, and
presents the node as one unit: an ordered per-shard port map (or the
single shared ``SO_REUSEPORT`` address), merged ``/metrics`` text,
aggregated ``/stats``, ``/flight`` and trace views, and a drain-first
``stop()``.

Concurrency discipline: the monitor thread is the *sole* pipe user once
the node is started.  Other threads never touch a pipe — they append
control messages to per-worker lock-free outbox deques (GIL-atomic
append/popleft) which the monitor drains, and RPC callers park on an
event the monitor sets when the reply arrives.  This keeps every
``send``/``recv`` out of lock scopes (see ``janus lint``
blocking-under-lock) and serializes pipe access without a pipe lock.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass, field, replace
from multiprocessing import get_context
from multiprocessing.connection import wait as _wait_connections
from typing import Callable, Iterable, Optional

from repro.core.admission import BucketSnapshot
from repro.core.config import ProcPlaneConfig, ServerConfig
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.obs.metrics import MetricsRegistry, merge_renderings
from repro.obs.recorder import global_flight_recorder
from repro.runtime.procplane.worker import WorkerSpec, worker_main

__all__ = ["ProcPlaneNode"]

#: Monitor wakeup bound — caps outbox flush latency and restart
#: detection latency between pipe events.
_MONITOR_TICK = 0.05

_RPC_TIMEOUT = 5.0


@dataclass
class _WorkerHandle:
    """Supervisor-side state for one worker process (monitor-owned)."""

    local_index: int
    spec: WorkerSpec
    process: object = None
    conn: object = None
    port: int = 0
    fanin_port: int = 0
    pid: int = 0
    last_heartbeat: float = 0.0
    last_decisions: int = 0
    restarts: int = 0
    last_snapshot: "tuple[BucketSnapshot, ...]" = ()
    #: Control messages queued for the monitor thread to send.
    outbox: deque = field(default_factory=deque)
    exited: bool = False
    failed: bool = False        # gave up restarting


class ProcPlaneNode:
    """A QoS node as a supervisor plus N shard worker processes.

    ``shard_base``/``shard_total`` place this node's workers inside a
    *global* shard space so several multi-process nodes can share one
    router CRC32 partitioner: node ``i`` of a cluster with ``P``
    processes each uses ``shard_base = i * P`` and
    ``shard_total = n_nodes * P``.  ``"reuseport"`` fan-in requires the
    node to own the whole space (single-node), because kernel spreading
    cannot respect a partial range.

    ``on_remap(shard_index, old_addr, new_addr)`` fires when a restarted
    worker could not rebind its previous port and came back elsewhere —
    the router uses it to patch its backend list in place.
    """

    def __init__(
        self,
        rules: "Iterable[QoSRule]",
        *,
        config: Optional[ServerConfig] = None,
        plane: Optional[ProcPlaneConfig] = None,
        n_workers: Optional[int] = None,
        host: str = "127.0.0.1",
        name: str = "qos-node",
        shard_base: int = 0,
        shard_total: Optional[int] = None,
        on_remap: "Optional[Callable[[int, tuple, tuple], None]]" = None,
    ):
        self.config = config or ServerConfig(workers=2)
        self.plane = plane or ProcPlaneConfig()
        self.n_workers = (self.config.processes
                          if n_workers is None else n_workers)
        if self.n_workers < 1:
            raise ConfigurationError(
                f"n_workers must be >= 1, got {self.n_workers}")
        self.shard_base = shard_base
        self.shard_total = (self.n_workers
                            if shard_total is None else shard_total)
        if shard_base < 0 or shard_base + self.n_workers > self.shard_total:
            raise ConfigurationError(
                f"shard range [{shard_base}, {shard_base + self.n_workers})"
                f" does not fit in {self.shard_total} shards")
        if self.plane.fanin == "reuseport" and (
                shard_base != 0 or self.shard_total != self.n_workers):
            raise ConfigurationError(
                "reuseport fan-in requires the node to own the whole shard"
                " space (single-node); use portmap for multi-node clusters")
        self.rules: "tuple[QoSRule, ...]" = tuple(rules)
        self.host = host
        self.name = name
        self.on_remap = on_remap
        self.node_port = 0          # shared fan-in port (reuseport mode)
        self.restarts_total = 0
        self._handles: "list[_WorkerHandle]" = []
        self._ctx = get_context("spawn")
        self._monitor: Optional[threading.Thread] = None
        self._stop_event = threading.Event()
        self._draining = False
        self._started = False
        self._rpc_ids = itertools.count(1)
        self._rpc_lock = threading.Lock()
        self._rpc_pending: "dict[int, list]" = {}
        labels = {"node": name}
        self.metrics = MetricsRegistry()
        self.metrics.counter(
            "janus_node_worker_restarts_total",
            "Worker processes restarted after a crash or stall",
            fn=lambda: self.restarts_total, **labels)
        self.metrics.gauge(
            "janus_node_workers_alive",
            "Worker processes currently believed healthy",
            fn=self._alive_count, **labels)
        self.metrics.gauge(
            "janus_node_workers_configured", "Configured worker count",
            fn=lambda: self.n_workers, **labels)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ProcPlaneNode":
        if self._started:
            return self
        self._started = True
        try:
            if self.plane.fanin == "reuseport":
                # Worker 0 binds the shared port ephemeral and reports
                # it; siblings then bind the same concrete port.
                first = self._spawn(self._make_spec(0))
                self._await_ready(first)
                self.node_port = first.fanin_port
                self._handles.append(first)
                rest = [self._spawn(self._make_spec(i))
                        for i in range(1, self.n_workers)]
            else:
                rest = [self._spawn(self._make_spec(i))
                        for i in range(self.n_workers)]
            for handle in rest:
                self._await_ready(handle)
                self._handles.append(handle)
        except Exception:
            self._kill_all()
            self._started = False
            raise
        self._handles.sort(key=lambda h: h.local_index)
        if self.plane.fanin == "reuseport":
            self._broadcast_ports_direct()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name=f"{self.name}.monitor",
            daemon=True)
        self._monitor.start()
        return self

    def stop(self) -> None:
        """Drain every worker, then reap; stragglers are terminated."""
        if not self._started:
            return
        self._draining = True
        for handle in self._handles:
            if not handle.exited and not handle.failed:
                handle.outbox.append(("drain",))
        deadline = time.monotonic() + self.plane.drain_timeout
        while time.monotonic() < deadline:
            if all(handle.process is None or not handle.process.is_alive()
                   for handle in self._handles):
                break
            time.sleep(0.02)
        self._stop_event.set()
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        self._kill_all()
        self._started = False

    def __enter__(self) -> "ProcPlaneNode":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def _kill_all(self) -> None:
        for handle in self._handles:
            process = handle.process
            if process is not None and process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=1.0)
            if handle.conn is not None:
                handle.conn.close()
                handle.conn = None

    # ------------------------------------------------------------------ #
    # Spawning
    # ------------------------------------------------------------------ #

    def _make_spec(self, local_index: int, port: int = 0,
                   snapshots: "tuple[BucketSnapshot, ...]" = ()) -> WorkerSpec:
        return WorkerSpec(
            shard_index=self.shard_base + local_index,
            n_shards=self.shard_total,
            name=f"{self.name}-w{local_index}",
            host=self.host,
            port=port,
            node_port=self.node_port,
            fanin=self.plane.fanin,
            server=self.config,
            plane=self.plane,
            rules=self.rules,
            snapshots=snapshots,
        )

    def _spawn(self, spec: WorkerSpec) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main, args=(spec, child_conn),
            name=spec.name, daemon=True)
        process.start()
        child_conn.close()
        return _WorkerHandle(
            local_index=spec.shard_index - self.shard_base,
            spec=spec, process=process, conn=parent_conn)

    def _await_ready(self, handle: _WorkerHandle) -> None:
        """Block until the worker reports ready (or fails to spawn)."""
        deadline = time.monotonic() + self.plane.spawn_timeout
        while time.monotonic() < deadline:
            if handle.conn.poll(0.05):
                try:
                    message = handle.conn.recv()
                except (EOFError, OSError):
                    break
                if message[0] == "ready":
                    _, _shard, port, fanin_port, pid = message
                    handle.port = port
                    handle.fanin_port = fanin_port
                    handle.pid = pid
                    handle.last_heartbeat = time.monotonic()
                    handle.exited = False
                    return
                if message[0] == "spawn_error":
                    raise ConfigurationError(
                        f"{handle.spec.name} failed to start: {message[2]}")
            elif not handle.process.is_alive():
                break
        raise ConfigurationError(
            f"{handle.spec.name} did not become ready within"
            f" {self.plane.spawn_timeout}s")

    def _broadcast_ports_direct(self) -> None:
        """Send the port map before the monitor thread exists (startup)."""
        ports = self._global_port_list()
        for handle in self._handles:
            handle.conn.send(("portmap", ports))

    def _global_port_list(self) -> "list[int]":
        """Per-shard private ports indexed by *global* shard index."""
        ports = [0] * self.shard_total
        for handle in self._handles:
            ports[handle.spec.shard_index] = handle.port
        return ports

    # ------------------------------------------------------------------ #
    # Monitor thread: sole pipe user after start()
    # ------------------------------------------------------------------ #

    def _monitor_loop(self) -> None:
        plane = self.plane
        while not self._stop_event.is_set():
            self._flush_outboxes()
            live = {handle.conn: handle for handle in self._handles
                    if handle.conn is not None and not handle.exited}
            if live:
                for conn in _wait_connections(list(live),
                                              timeout=_MONITOR_TICK):
                    self._drain_conn(live[conn])
            else:
                time.sleep(_MONITOR_TICK)
            if self._draining:
                continue
            now = time.monotonic()
            for handle in self._handles:
                if handle.failed:
                    continue
                stalled = (now - handle.last_heartbeat
                           > plane.heartbeat_timeout)
                dead = (handle.exited
                        or (handle.process is not None
                            and not handle.process.is_alive())
                        or stalled)
                if dead:
                    self._restart(handle)

    def _flush_outboxes(self) -> None:
        for handle in self._handles:
            conn = handle.conn
            if conn is None or handle.exited:
                continue
            while handle.outbox:
                message = handle.outbox.popleft()
                try:
                    conn.send(message)
                except (OSError, ValueError, BrokenPipeError):
                    handle.exited = True
                    break

    def _drain_conn(self, handle: _WorkerHandle) -> None:
        conn = handle.conn
        try:
            while conn.poll():
                self._dispatch(handle, conn.recv())
        except (EOFError, OSError):
            handle.exited = True

    def _dispatch(self, handle: _WorkerHandle, message) -> None:
        kind = message[0]
        if kind == "hb":
            handle.last_heartbeat = time.monotonic()
            handle.last_decisions = message[2]
        elif kind == "snapshot":
            handle.last_snapshot = message[2]
        elif kind == "rpc":
            _, request_id, payload = message
            with self._rpc_lock:
                entry = self._rpc_pending.get(request_id)
            if entry is not None:
                entry[1] = payload
                entry[0].set()
        elif kind == "exit":
            handle.exited = True

    # ------------------------------------------------------------------ #
    # Crash restart with bucket-state re-seed
    # ------------------------------------------------------------------ #

    def _restart(self, handle: _WorkerHandle) -> None:
        self.restarts_total += 1
        old_process, old_conn = handle.process, handle.conn
        if old_process is not None and old_process.is_alive():
            old_process.terminate()
            old_process.join(timeout=1.0)
        if old_conn is not None:
            old_conn.close()
        handle.conn = None
        if handle.restarts >= self.plane.max_restarts:
            handle.failed = True
            global_flight_recorder().note(
                "worker_failed", node=self.name,
                shard=handle.spec.shard_index, restarts=handle.restarts)
            return
        handle.restarts += 1
        time.sleep(self.plane.restart_backoff)
        old_addr = (self.host, handle.port)
        # Re-bind the same port so the published map stays valid; fall
        # back to ephemeral (and remap the router) if it was taken.
        seed = handle.last_snapshot
        for port in (handle.port, 0):
            spec = self._make_spec(handle.local_index, port=port,
                                   snapshots=seed)
            fresh = self._spawn(spec)
            try:
                self._await_ready(fresh)
            except ConfigurationError:
                if fresh.process.is_alive():
                    fresh.process.terminate()
                    fresh.process.join(timeout=1.0)
                fresh.conn.close()
                continue
            handle.spec = spec
            handle.process = fresh.process
            handle.conn = fresh.conn
            handle.pid = fresh.pid
            handle.fanin_port = fresh.fanin_port
            handle.exited = False
            handle.outbox.clear()
            remapped = fresh.port != old_addr[1]
            handle.port = fresh.port
            global_flight_recorder().note(
                "worker_restarted", node=self.name,
                shard=handle.spec.shard_index, pid=handle.pid,
                remapped=remapped, reseeded=len(seed))
            if self.plane.fanin == "reuseport":
                ports = self._global_port_list()
                for sibling in self._handles:
                    if not sibling.exited and not sibling.failed:
                        sibling.outbox.append(("portmap", ports))
            if remapped and self.on_remap is not None:
                self.on_remap(handle.spec.shard_index, old_addr,
                              (self.host, handle.port))
            # The blocking ready-wait starved sibling heartbeat reads;
            # re-stamp so one slow spawn cannot cascade into restarts.
            now = time.monotonic()
            for sibling in self._handles:
                sibling.last_heartbeat = now
            return
        handle.failed = True
        global_flight_recorder().note(
            "worker_failed", node=self.name,
            shard=handle.spec.shard_index, restarts=handle.restarts)

    # ------------------------------------------------------------------ #
    # Node views
    # ------------------------------------------------------------------ #

    def _alive_count(self) -> int:
        return sum(1 for handle in self._handles
                   if not handle.exited and not handle.failed
                   and handle.process is not None
                   and handle.process.is_alive())

    def port_map(self) -> "list[tuple[str, int]]":
        """Per-shard worker addresses, ordered by local shard index."""
        return [(self.host, handle.port) for handle in self._handles]

    def backend_addresses(self) -> "list[tuple[str, int]]":
        """What the router should route to.

        Port-map mode: one address per shard, in shard order, so the
        router's ``CRC32(key) % n`` partitioner lands every key on its
        owning worker directly.  Reuseport mode: the single shared
        address; the kernel spreads frames.
        """
        if self.plane.fanin == "reuseport":
            return [(self.host, self.node_port)]
        return self.port_map()

    def put_rules(self, rules: "Iterable[QoSRule]") -> None:
        """Broadcast new/updated rules to every worker (and restarts)."""
        fresh = tuple(rules)
        merged = {rule.key: rule for rule in self.rules}
        merged.update({rule.key: rule for rule in fresh})
        self.rules = tuple(merged.values())
        for handle in self._handles:
            if not handle.exited and not handle.failed:
                handle.outbox.append(("rules", fresh))

    def retarget_shards(self, shard_base: int, shard_total: int) -> None:
        """Renumber this node's workers inside a new global shard space.

        A live reshard changes the cluster-wide shard count, so every
        surviving node's workers must re-learn their global index for
        the advisory ``owns()`` test to keep matching the routers' new
        CRC32 partitioner.  Ownership is advisory (any worker decides
        any key handed to it), so brief skew while the control messages
        propagate degrades nothing — it only mis-colors ``owns()``
        scans until the message lands.
        """
        if shard_base < 0 or shard_base + self.n_workers > shard_total:
            raise ConfigurationError(
                f"shard range [{shard_base}, {shard_base + self.n_workers})"
                f" does not fit in {shard_total} shards")
        if self.plane.fanin == "reuseport" and (
                shard_base != 0 or shard_total != self.n_workers):
            raise ConfigurationError(
                "reuseport fan-in requires the node to own the whole shard"
                " space; it cannot be retargeted to a partial range")
        self.shard_base = shard_base
        self.shard_total = shard_total
        for handle in self._handles:
            handle.spec = replace(
                handle.spec,
                shard_index=shard_base + handle.local_index,
                n_shards=shard_total)
            if not handle.exited and not handle.failed:
                handle.outbox.append(
                    ("shard_range", handle.spec.shard_index, shard_total))

    # ------------------------------------------------------------------ #
    # RPC + aggregation
    # ------------------------------------------------------------------ #

    def _rpc(self, handle: _WorkerHandle, what: str, arg=None,
             timeout: float = _RPC_TIMEOUT):
        if handle.conn is None or handle.exited or handle.failed:
            return None
        request_id = next(self._rpc_ids)
        entry = [threading.Event(), None]
        with self._rpc_lock:
            self._rpc_pending[request_id] = entry
        handle.outbox.append(("rpc", request_id, what, arg))
        try:
            if not entry[0].wait(timeout):
                return None
            return entry[1]
        finally:
            with self._rpc_lock:
                self._rpc_pending.pop(request_id, None)

    def worker_stats(self) -> "list[dict]":
        return [stats for stats in
                (self._rpc(handle, "stats") for handle in self._handles)
                if stats is not None]

    def stats(self) -> dict:
        workers = self.worker_stats()
        # Each worker owns a disjoint shard range, so summing its lease
        # ledger counters yields the node-wide ledger view: the live
        # grant count and the aggregate over-admission bound.
        lease = {
            field: sum(w.get(field, 0) for w in workers)
            for field in ("lease_grants", "lease_refusals",
                          "lease_returns", "lease_expired", "lease_revoked",
                          "leases_active", "lease_outstanding_credits",
                          "lease_granted_credits", "lease_returned_credits")
        }
        return {
            "name": self.name,
            "fanin": self.plane.fanin,
            "n_workers": self.n_workers,
            "workers_alive": self._alive_count(),
            "restarts": self.restarts_total,
            "port_map": self.port_map(),
            "decisions": sum(w.get("decisions", 0) for w in workers),
            "lease": lease,
            "workers": workers,
        }

    def total_decisions(self) -> int:
        total = 0
        for handle in self._handles:
            stats = self._rpc(handle, "stats")
            if stats is not None:
                total += stats.get("decisions", 0)
            else:
                total += handle.last_decisions   # best effort: last heartbeat
        return total

    def metrics_text(self) -> str:
        """Node ``/metrics``: per-worker registries merged with ours."""
        texts = [self.metrics.render()]
        for handle in self._handles:
            rendered = self._rpc(handle, "metrics")
            if rendered:
                texts.append(rendered)
        return merge_renderings(texts)

    def flight(self) -> "list[dict]":
        """Merged per-worker flight recorders, oldest first."""
        entries: "list[dict]" = []
        for handle in self._handles:
            dump = self._rpc(handle, "flight")
            if not dump:
                continue
            for row in dump:
                row["worker"] = handle.spec.name
                entries.append(row)
        entries.sort(key=lambda row: row.get("time", 0.0))
        return entries

    def trace_spans(self, trace_id: int) -> "list[dict]":
        """Server-side spans for one trace, across all workers."""
        spans: "list[dict]" = []
        for handle in self._handles:
            result = self._rpc(handle, "trace", arg=trace_id)
            if result:
                spans.extend(result)
        return spans

    def bucket_snapshots(self) -> "dict[int, tuple]":
        """Latest per-shard bucket state (live RPC, heartbeat fallback)."""
        out: "dict[int, tuple]" = {}
        for handle in self._handles:
            live = self._rpc(handle, "snapshot")
            out[handle.spec.shard_index] = (tuple(live) if live is not None
                                            else handle.last_snapshot)
        return out
