"""The ``qos_rules`` table API (paper §II-D, §III-D).

"The QoS rules table includes four columns - the QoS key, the refill rate,
the capacity of the leaky bucket, and the remaining credit in the bucket."
:class:`RuleStore` wraps an :class:`~repro.db.engine.Engine` (or the master
side of a :class:`~repro.db.replication.ReplicatedDatabase`) and implements
the :class:`~repro.core.admission.RuleSource` protocol the QoS servers
consume, plus the provider-side admin CRUD and the full-table warm-up scan
(``SELECT * FROM qos_rules``) the paper issues at startup.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.core.errors import SQLError
from repro.core.rules import QoSRule
from repro.db.engine import Engine, ResultSet

__all__ = ["RuleStore", "QOS_RULES_SCHEMA"]

TABLE = "qos_rules"

QOS_RULES_SCHEMA = (
    f"CREATE TABLE IF NOT EXISTS {TABLE} ("
    "qos_key TEXT PRIMARY KEY, "
    "refill_rate REAL NOT NULL, "
    "capacity REAL NOT NULL, "
    "credit REAL)"
)

_SELECT_ONE = f"SELECT qos_key, refill_rate, capacity, credit FROM {TABLE} WHERE qos_key = ?"
_SELECT_ALL = f"SELECT qos_key, refill_rate, capacity, credit FROM {TABLE}"
_INSERT = f"INSERT INTO {TABLE} (qos_key, refill_rate, capacity, credit) VALUES (?, ?, ?, ?)"
_UPDATE = f"UPDATE {TABLE} SET refill_rate = ?, capacity = ?, credit = ? WHERE qos_key = ?"
_CHECKPOINT = f"UPDATE {TABLE} SET credit = ? WHERE qos_key = ?"
_DELETE = f"DELETE FROM {TABLE} WHERE qos_key = ?"
_COUNT = f"SELECT COUNT(*) FROM {TABLE}"


def _row_to_rule(row: tuple) -> QoSRule:
    key, refill_rate, capacity, credit = row
    if credit is not None:
        # A checkpoint written under an older, larger capacity must not
        # violate the rule invariant 0 <= credit <= capacity.
        credit = min(max(credit, 0.0), capacity)
    return QoSRule(key=key, refill_rate=refill_rate, capacity=capacity, credit=credit)


class RuleStore:
    """RuleSource over the relational substrate."""

    def __init__(self, engine: Optional[Engine] = None, *, create: bool = True):
        self.engine = engine if engine is not None else Engine("qos-db")
        if create:
            self.engine.execute(QOS_RULES_SCHEMA)

    # ------------------------------------------------------------------ #
    # RuleSource protocol (QoS-server side)
    # ------------------------------------------------------------------ #

    def get_rule(self, key: str) -> Optional[QoSRule]:
        """Point lookup by primary key — the lazy-fetch path (§II-D)."""
        result = self.engine.execute(_SELECT_ONE, (key,))
        row = result.first()
        return None if row is None else _row_to_rule(row)

    def get_rules(self, keys: Iterable[str]) -> Mapping[str, QoSRule]:
        """Batch lookup used by the sync loop.

        The paper's servers query "with the QoS keys in the local QoS rule
        table"; we issue point lookups per key (each O(1) via the PK index),
        the same access pattern a prepared-statement loop produces.
        """
        rules: Dict[str, QoSRule] = {}
        for key in keys:
            rule = self.get_rule(key)
            if rule is not None:
                rules[key] = rule
        return rules

    def checkpoint(self, credits: Mapping[str, float]) -> None:
        """Write current credits back (crash-recovery seed, §II-D)."""
        for key, credit in credits.items():
            self.engine.execute(_CHECKPOINT, (float(credit), key))

    # ------------------------------------------------------------------ #
    # provider-side admin API
    # ------------------------------------------------------------------ #

    def put_rule(self, rule: QoSRule) -> None:
        """Insert or update a rule (the provider selling/altering a plan)."""
        updated = self.engine.execute(
            _UPDATE, (rule.refill_rate, rule.capacity, rule.credit, rule.key))
        if updated.rowcount == 0:
            self.engine.execute(
                _INSERT, (rule.key, rule.refill_rate, rule.capacity, rule.credit))

    def delete_rule(self, key: str) -> bool:
        """Remove a rule; the key falls back to the default rule on sync."""
        return self.engine.execute(_DELETE, (key,)).rowcount > 0

    def load_all(self) -> Dict[str, QoSRule]:
        """The warm-up full scan: ``SELECT * FROM qos_rules`` (§III-D)."""
        result: ResultSet = self.engine.execute(_SELECT_ALL)
        return {row[0]: _row_to_rule(row) for row in result}

    def count(self) -> int:
        return int(self.engine.execute(_COUNT).scalar())

    def approx_bytes(self) -> int:
        """Estimated table footprint (paper: ~100 bytes/rule, ~10 GB/100 M)."""
        try:
            table = self.engine.table(TABLE)
        except SQLError:
            return 0
        with table.lock:
            return table.approx_bytes()
