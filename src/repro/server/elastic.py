"""Elastic resizing of the QoS server layer (extension / future work).

The paper fixes the QoS server count: "with a fixed number of QoS servers
in the back end, QoS requests with the same QoS key are always routed to
the same QoS server" (§II-B) — the modulus *is* the partition map, so a
resize silently remaps ~(N-1)/N of the keyspace and every moved key forgets
its credit (effectively a quota reset, or worse, a brief double quota).

:func:`resize_qos_layer` implements the missing migration protocol:

1. launch the new servers (on resize-up) next to the old fleet;
2. compute, per key in every old server's local table, its new owner under
   ``CRC32(key) mod N_new``;
3. transfer bucket snapshots for the moved keys to their new owners
   (credits travel with the keys, so quota state is preserved);
4. atomically flip every request router's backend list to the new map;
5. retire servers that fell out of the layer (resize-down).

Between steps 3 and 4 a moved key can be decided once from its *old*
bucket after the snapshot was taken — the same at-most-one-credit skew the
paper's HA replication has.  Tests bound it.

The ablation comparing this with a naive (migration-free) resize is
``benchmarks/test_ablation_hashing.py`` plus
``tests/server/test_elastic.py``'s quota-preservation checks.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.core.admission import BucketSnapshot
from repro.core.errors import ConfigurationError
from repro.core.hashing import crc32_router

from repro.server.qos_server import SimQoSServer
from repro.server.router import SimRequestRouter

__all__ = ["replace_failed_server", "resize_qos_layer", "MigrationReport"]


@dataclass(frozen=True, slots=True)
class MigrationReport:
    """What a resize moved."""

    old_count: int
    new_count: int
    keys_total: int
    keys_moved: int
    servers_added: tuple[str, ...]
    servers_retired: tuple[str, ...]

    @property
    def moved_fraction(self) -> float:
        return self.keys_moved / self.keys_total if self.keys_total else 0.0


def resize_qos_layer(
    routers: Sequence[SimRequestRouter],
    old_servers: List[SimQoSServer],
    new_count: int,
    launch_server: Callable[[int], SimQoSServer],
    *,
    service_names: Callable[[int], str] = lambda i: f"qos-{i}",
) -> tuple[List[SimQoSServer], MigrationReport]:
    """Resize the QoS layer to ``new_count`` servers with state migration.

    ``launch_server(index)`` provisions server ``index`` (indices
    ``len(old_servers) .. new_count-1``); ``service_names(index)`` is the
    stable name routers address partition ``index`` by.  Returns the new
    fleet plus a :class:`MigrationReport`.
    """
    if new_count < 1:
        raise ConfigurationError(f"new_count must be >= 1, got {new_count}")
    if not routers:
        raise ConfigurationError("need at least one router to flip")
    old_count = len(old_servers)
    if new_count == old_count:
        report = MigrationReport(old_count, new_count,
                                 sum(s.table_size() for s in old_servers), 0, (), ())
        return list(old_servers), report

    # 1. provision the grown part of the fleet.
    added: list[str] = []
    fleet: List[SimQoSServer] = list(old_servers)
    for index in range(old_count, new_count):
        server = launch_server(index)
        fleet.append(server)
        added.append(server.name)
    fleet = fleet[:new_count]

    # 2-3. move bucket snapshots to their new owners.
    moves: Dict[int, list[BucketSnapshot]] = defaultdict(list)
    keys_total = 0
    keys_moved = 0
    for old_index, server in enumerate(old_servers):
        for snap in server.bucket_snapshots():
            keys_total += 1
            new_index = crc32_router(snap.key, new_count)
            if new_index != old_index or new_index >= new_count:
                keys_moved += 1
                moves[new_index].append(snap)
    for new_index, snapshots in moves.items():
        target = fleet[new_index]
        target.restore_snapshots(snapshots)
        target.mark_warm(s.key for s in snapshots)

    # 4. flip every router's partition map (the ordered name list).
    new_names = [service_names(i) for i in range(new_count)]
    for router in routers:
        router.qos_servers = list(new_names)

    # 5. retire servers that fell out of the layer.
    retired: list[str] = []
    for server in old_servers[new_count:]:
        server.fail()
        retired.append(server.name)

    report = MigrationReport(
        old_count=old_count, new_count=new_count,
        keys_total=keys_total, keys_moved=keys_moved,
        servers_added=tuple(added), servers_retired=tuple(retired))
    return fleet, report


def replace_failed_server(
    servers: List[SimQoSServer],
    failed_index: int,
    launch_server: Callable[[int], SimQoSServer],
    *,
    seed_snapshots: Sequence[BucketSnapshot] = (),
) -> tuple[List[SimQoSServer], MigrationReport]:
    """Kill-a-node recovery as a reshard: remove dead, add replacement.

    The live plane's ``remove --dead`` + ``add`` sequence, collapsed to
    one partition because the sim addresses partitions by stable DNS
    names (the partition map never changes, only the name's target).
    The dead node is unreachable, so its state cannot be drained;
    instead the replacement is re-seeded from ``seed_snapshots`` — the
    last HA replica or checkpoint the caller still holds.  Credit loss
    is therefore bounded by the age of that seed: with snapshots taken
    every refill interval, a key loses at most one interval's refill
    (the live plane's bound, see ``DESIGN.md``).

    ``launch_server(failed_index)`` provisions the replacement and flips
    its DNS name; the routers are untouched.  Returns the repaired
    fleet plus a :class:`MigrationReport`.
    """
    if not 0 <= failed_index < len(servers):
        raise ConfigurationError(
            f"failed_index {failed_index} outside fleet of {len(servers)}")
    failed = servers[failed_index]
    if failed.running:
        failed.fail()
    replacement = launch_server(failed_index)
    seed = list(seed_snapshots)
    if seed:
        replacement.restore_snapshots(seed)
        replacement.mark_warm(s.key for s in seed)
    fleet = list(servers)
    fleet[failed_index] = replacement
    report = MigrationReport(
        old_count=len(servers), new_count=len(servers),
        keys_total=len(seed), keys_moved=len(seed),
        servers_added=(replacement.name,), servers_retired=(failed.name,))
    return fleet, report
