"""Tests for the metrics core: striping, registry, exposition format."""

from __future__ import annotations

import re
import threading

import pytest

from repro.core.errors import ConfigurationError
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_help,
    escape_label_value,
    register_snapshot_gauges,
)


class TestCounter:
    def test_basic_increment(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_striped_across_threads(self):
        # Each thread writes its own cell; the sum must be exact.
        c = Counter("x")
        per_thread = 10_000
        n_threads = 8

        def worker():
            for _ in range(per_thread):
                c.inc()

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == per_thread * n_threads

    def test_fn_counter_rejects_inc(self):
        c = Counter("x", fn=lambda: 42)
        assert c.value == 42
        with pytest.raises(ConfigurationError):
            c.inc()


class TestGauge:
    def test_set_and_inc_by(self):
        g = Gauge("x")
        g.set(3.5)
        g.inc_by(1.5)
        assert g.value == 5.0

    def test_fn_gauge_rejects_set(self):
        g = Gauge("x", fn=lambda: 7)
        assert g.value == 7
        with pytest.raises(ConfigurationError):
            g.set(1)


class TestHistogram:
    def test_count_and_sum(self):
        h = Histogram("x")
        for v in (0, 1, 2, 3, 1000):
            h.record(v)
        assert h.count == 5
        assert h.sum == 1006

    def test_scale_applies_to_exported_units(self):
        h = Histogram("x", scale=1e-9)
        h.record(2_000_000_000)         # 2 s in ns
        assert h.sum == pytest.approx(2.0)
        # p50 of a single sample lands in its bucket's geometric midpoint,
        # which for power-of-two buckets is within 2x of the true value.
        assert 1.0 <= h.percentile(50) <= 4.0

    def test_negative_values_clamped_to_zero(self):
        h = Histogram("x")
        h.record(-5)
        assert h.count == 1
        assert h.sum == 0

    def test_striped_across_threads(self):
        h = Histogram("x")
        per_thread = 5_000
        n_threads = 4

        def worker():
            for i in range(per_thread):
                h.record(i)

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert h.count == per_thread * n_threads

    def test_zero_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            Histogram("x", scale=0.0)

    def test_empty_percentile_is_zero(self):
        assert Histogram("x").percentile(99) == 0.0


class TestRegistry:
    def test_same_name_and_labels_returns_same_instrument(self):
        reg = MetricsRegistry()
        a = reg.counter("janus_x_total", "help", router="r0")
        b = reg.counter("janus_x_total", "help", router="r0")
        assert a is b
        a.inc()
        assert b.value == 1

    def test_different_labels_are_distinct_children(self):
        reg = MetricsRegistry()
        a = reg.counter("janus_x_total", shard="0")
        b = reg.counter("janus_x_total", shard="1")
        assert a is not b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("janus_x_total")
        with pytest.raises(ConfigurationError):
            reg.gauge("janus_x_total")

    def test_bad_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.counter("")
        with pytest.raises(ConfigurationError):
            reg.counter("0bad")

    def test_snapshot_gauges(self):
        reg = MetricsRegistry()
        state = {"depth": 3, "size": 9}
        register_snapshot_gauges(reg, "janus_q", lambda: state, node="n1")
        state["depth"] = 7
        text = reg.render()
        assert 'janus_q_depth{node="n1"} 7' in text
        assert 'janus_q_size{node="n1"} 9' in text

    def test_simnet_engine_exports_through_snapshot_gauges(self):
        # The DES kernel exposes its counters as a snapshot dict, which
        # plugs straight into the registry like any other layer.
        from repro.simnet.engine import Simulation

        sim = Simulation()

        def ticker():
            yield 1.0
            yield 2.0

        sim.spawn(ticker())
        sim.run()
        reg = MetricsRegistry()
        register_snapshot_gauges(reg, "janus_sim", sim.metrics_snapshot,
                                 sim="s0")
        text = reg.render()
        assert 'janus_sim_events_processed{sim="s0"}' in text
        assert 'janus_sim_heap_depth{sim="s0"}' in text
        assert 'janus_sim_sim_time{sim="s0"} 3' in text


#: One exposition sample line: name, optional labels, and a value.
_SAMPLE_RE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\\n]|\\\\|\\"|\\n)*")*\})?'
    r' (\+Inf|-Inf|NaN|-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$')


def assert_prometheus_conformant(text: str) -> None:
    """Structural checks of the text exposition format (0.0.4)."""
    assert text.endswith("\n"), "exposition must end with a newline"
    seen_types: dict[str, str] = {}
    current_family = None
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name not in seen_types, f"duplicate # TYPE for {name}"
            assert kind in ("counter", "gauge", "histogram", "summary",
                            "untyped")
            seen_types[name] = kind
            current_family = name
            continue
        if line.startswith("# HELP "):
            continue
        assert not line.startswith("#"), f"unknown comment line {line!r}"
        assert _SAMPLE_RE.match(line), f"malformed sample line {line!r}"
        metric = line.split("{", 1)[0].split(" ", 1)[0]
        assert current_family is not None and \
            metric.startswith(current_family), (
                f"sample {metric!r} outside its # TYPE block "
                f"({current_family!r})")


class TestExpositionFormat:
    def _registry(self) -> MetricsRegistry:
        reg = MetricsRegistry()
        reg.counter("janus_req_total", "requests", router="r0").inc(3)
        reg.gauge("janus_depth", "queue depth", router="r0").set(2)
        h = reg.histogram("janus_lat_seconds", "latency", scale=1e-9,
                          router="r0")
        for v in (100, 1_000, 1_000_000):
            h.record(v)
        return reg

    def test_render_is_conformant(self):
        assert_prometheus_conformant(self._registry().render())

    def test_type_lines_match_instrument_kinds(self):
        text = self._registry().render()
        assert "# TYPE janus_req_total counter" in text
        assert "# TYPE janus_depth gauge" in text
        assert "# TYPE janus_lat_seconds histogram" in text

    def test_histogram_buckets_are_cumulative_and_capped(self):
        text = self._registry().render()
        buckets = []
        for line in text.splitlines():
            if line.startswith("janus_lat_seconds_bucket"):
                buckets.append(int(line.rsplit(" ", 1)[1]))
        assert buckets == sorted(buckets), "bucket counts must be cumulative"
        assert buckets[-1] == 3, "+Inf bucket must equal the sample count"
        assert 'le="+Inf"' in text
        assert "janus_lat_seconds_count" in text
        assert "janus_lat_seconds_sum" in text

    def test_label_escaping_round_trip(self):
        reg = MetricsRegistry()
        nasty = 'a"b\\c\nd'
        reg.counter("janus_x_total", key=nasty).inc()
        text = reg.render()
        assert 'key="a\\"b\\\\c\\nd"' in text
        assert_prometheus_conformant(text)

    def test_families_sorted_by_name(self):
        text = self._registry().render()
        families = [line.split(" ")[2] for line in text.splitlines()
                    if line.startswith("# TYPE ")]
        assert families == sorted(families)

    def test_integer_values_render_without_decimal_point(self):
        reg = MetricsRegistry()
        reg.counter("janus_x_total").inc(5)
        assert "janus_x_total 5\n" in reg.render()


class TestEscaping:
    def test_escape_label_value(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"

    def test_escape_help(self):
        assert escape_help("a\nb\\c") == "a\\nb\\\\c"


class TestMergeRenderings:
    """Merging per-process renderings into one conformant exposition."""

    def _render(self, source: str, count: int) -> str:
        reg = MetricsRegistry()
        reg.counter("janus_req_total", "requests", server=source).inc(count)
        reg.gauge("janus_depth", "queue depth", server=source).set(count)
        return reg.render()

    def test_headers_deduplicated_families_sorted(self):
        from repro.obs.metrics import merge_renderings

        merged = merge_renderings([self._render("w0", 3),
                                   self._render("w1", 5)])
        assert_prometheus_conformant(merged)
        assert merged.count("# TYPE janus_req_total counter") == 1
        assert merged.count("# HELP janus_req_total") == 1
        # Both processes' label sets survive side by side.
        assert 'janus_req_total{server="w0"} 3' in merged
        assert 'janus_req_total{server="w1"} 5' in merged
        families = [line.split()[2] for line in merged.splitlines()
                    if line.startswith("# TYPE ")]
        assert families == sorted(families)

    def test_empty_and_single_inputs(self):
        from repro.obs.metrics import merge_renderings

        assert merge_renderings([]) == ""
        one = self._render("w0", 1)
        assert_prometheus_conformant(merge_renderings([one]))
        assert merge_renderings([one, ""]) == merge_renderings([one])
