"""LocalCluster: a complete real-socket Janus deployment on localhost.

Boots, on ephemeral ports: ``n_qos_servers`` QoS nodes sharing one rule
database, ``n_routers`` HTTP request routers (each knowing the full
ordered backend list — the partition map), and a gateway load-balancer
reverse proxy in front.  The result is the paper's Fig. 1a running on
one machine, suitable for integration tests, the quickstart example,
and small real-socket benchmarks.

Each QoS node is either a single in-process
:class:`~repro.runtime.udp_server.QoSServerDaemon`
(``ServerConfig.processes == 1``, the default) or a multi-process
:class:`~repro.runtime.procplane.ProcPlaneNode` — a supervisor plus
``processes`` shared-nothing shard worker processes.  In the
multi-process case every worker's private port joins the routers'
backend list in global shard order, so the routers' CRC32 partitioner
sends each key directly to its owning worker *process* with zero
cross-process hops; worker restarts that land on a new port are patched
into every router via ``replace_backend``.

The UDP timeout defaults to 50 ms rather than the paper's 100 µs: a
GIL-scheduled Python worker cannot guarantee EC2-class turnarounds, and a
too-tight timeout would make every admission burn its full retry budget
and consume duplicate credits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import ProcPlaneConfig, RouterConfig, ServerConfig
from repro.db.engine import Engine
from repro.db.replication import ReplicatedDatabase
from repro.db.rulestore import RuleStore
from repro.obs.metrics import merge_renderings
from repro.runtime.client import QoSClient
from repro.runtime.http_router import RequestRouterDaemon
from repro.runtime.loadbalancer import GatewayLoadBalancerDaemon
from repro.runtime.procplane import ProcPlaneNode
from repro.runtime.reshard import NodeHandle, ReshardCoordinator, ReshardReport
from repro.runtime.udp_server import QoSServerDaemon

__all__ = ["LocalCluster"]


class LocalCluster:
    """A running Janus deployment on 127.0.0.1."""

    def __init__(
        self,
        *,
        n_routers: int = 2,
        n_qos_servers: int = 2,
        router_config: Optional[RouterConfig] = None,
        server_config: Optional[ServerConfig] = None,
        plane_config: Optional[ProcPlaneConfig] = None,
        lb_algorithm: str = "round_robin",
        db_ha: bool = True,
    ):
        self.db = ReplicatedDatabase() if db_ha else Engine("qos-db")
        self.rules = RuleStore(self.db)
        self._router_config = router_config or RouterConfig(
            udp_timeout=0.05, max_retries=5)
        self._server_config = server_config or ServerConfig(workers=4)
        self._plane_config = plane_config or ProcPlaneConfig()
        self._n_routers = n_routers
        self._n_qos = n_qos_servers
        self._lb_algorithm = lb_algorithm
        self.qos_servers: list[QoSServerDaemon] = []
        self.qos_nodes: list[ProcPlaneNode] = []
        self.routers: list[RequestRouterDaemon] = []
        self.load_balancer: Optional[GatewayLoadBalancerDaemon] = None
        self._running = False
        self._coordinator: Optional[ReshardCoordinator] = None
        self._node_seq = n_qos_servers     # names for nodes added live

    @property
    def processes(self) -> int:
        return self._server_config.processes

    # ------------------------------------------------------------------ #

    def start(self) -> "LocalCluster":
        if self._running:
            return self
        self._running = True
        if self.processes > 1:
            backend_addresses = self._start_nodes()
        else:
            self.qos_servers = [
                QoSServerDaemon(self.rules, config=self._server_config,
                                name=f"qos-{i}").start()
                for i in range(self._n_qos)
            ]
            backend_addresses = [s.address for s in self.qos_servers]
        # With multi-process nodes, server.decide spans live in worker
        # processes; routers collect them over the supervisor pipes so
        # GET /trace/<id> stays whole-trace.
        collect = self._node_trace_spans if self.qos_nodes else None
        self.routers = [
            RequestRouterDaemon(backend_addresses,
                                config=self._router_config,
                                name=f"router-{i}",
                                extra_trace_spans=collect).start()
            for i in range(self._n_routers)
        ]
        self.load_balancer = GatewayLoadBalancerDaemon(
            [r.url for r in self.routers],
            algorithm=self._lb_algorithm).start()
        handles = ([self._node_handle(node) for node in self.qos_nodes]
                   or [self._server_handle(s) for s in self.qos_servers])
        self._coordinator = ReshardCoordinator(
            self.routers, handles,
            registry=self.routers[0].metrics if self.routers else None)
        for router in self.routers:
            router.reshard_control = self._reshard_control
        return self

    def _start_nodes(self) -> "list[tuple[str, int]]":
        """Boot multi-process nodes; returns the global backend list.

        Worker processes cannot share the parent's in-process rule
        database, so each node ships a snapshot of the rules at start
        (rules added later go out via ``put_rules``).  Node ``i`` owns
        global shards ``[i*P, (i+1)*P)`` of ``n_qos * P`` total, and its
        workers' ports are appended in that order — the resulting
        backend list *is* the global shard map the routers hash over.
        """
        rules = tuple(self.rules.load_all().values())
        processes = self.processes
        shard_total = self._n_qos * processes
        self.qos_nodes = []
        for i in range(self._n_qos):
            node = ProcPlaneNode(
                rules, config=self._server_config,
                plane=self._plane_config, name=f"qos-{i}",
                shard_base=i * processes, shard_total=shard_total,
                on_remap=self._on_worker_remap)
            node.start()
            self.qos_nodes.append(node)
        addresses: "list[tuple[str, int]]" = []
        for node in self.qos_nodes:
            addresses.extend(node.backend_addresses())
        return addresses

    def _node_trace_spans(self, trace_id: int) -> "list[dict]":
        """Worker-process spans of one trace, via the supervisor pipes."""
        spans: "list[dict]" = []
        for node in self.qos_nodes:
            spans.extend(node.trace_spans(trace_id))
        return spans

    def _on_worker_remap(self, shard_index: int, old_addr, new_addr) -> None:
        """Patch a restarted worker's new port into every router."""
        for router in self.routers:
            router.replace_backend(old_addr, new_addr)

    # ------------------------------------------------------------------ #
    # Live resharding (node join/leave without restart)
    # ------------------------------------------------------------------ #

    @staticmethod
    def _server_handle(server: QoSServerDaemon) -> NodeHandle:
        """Coordinator view of a single-process QoS daemon."""
        return NodeHandle(
            name=server.name,
            addresses=(tuple(server.address),),
            snapshot=server.controller.snapshot,
            stop=server.stop,
        )

    @staticmethod
    def _node_handle(node: ProcPlaneNode) -> NodeHandle:
        """Coordinator view of a multi-process node (all workers)."""
        def snapshot():
            return [snap for _, snaps in sorted(
                node.bucket_snapshots().items()) for snap in snaps]
        return NodeHandle(
            name=node.name,
            addresses=tuple(tuple(a) for a in node.backend_addresses()),
            snapshot=snapshot,
            stop=node.stop,
        )

    def reshard_add(self) -> ReshardReport:
        """Boot one more QoS node and migrate its share of keys to it."""
        if self._coordinator is None:
            raise RuntimeError("cluster is not started")
        name = f"qos-{self._node_seq}"
        self._node_seq += 1
        if self.processes > 1:
            shard_total = sum(n.n_workers for n in self.qos_nodes)
            rules = tuple(self.rules.load_all().values())
            node = ProcPlaneNode(
                rules, config=self._server_config,
                plane=self._plane_config, name=name,
                shard_base=shard_total,
                shard_total=shard_total + self.processes,
                on_remap=self._on_worker_remap)
            node.start()
            try:
                report = self._coordinator.add_node(self._node_handle(node))
            except Exception:
                node.stop()
                raise
            self.qos_nodes.append(node)
            self._retarget_procplane()
        else:
            server = QoSServerDaemon(self.rules, config=self._server_config,
                                     name=name).start()
            try:
                report = self._coordinator.add_node(
                    self._server_handle(server))
            except Exception:
                server.stop()
                raise
            self.qos_servers.append(server)
        return report

    def reshard_remove(self, name: str, *, dead: bool = False) \
            -> ReshardReport:
        """Drain one QoS node out of the cluster and stop it.

        ``dead=True`` marks it already crashed: it is excluded from the
        topology broadcast and not snapshotted — its un-checkpointed
        credit (at most one refill interval's worth once the remap
        commits) is lost, and the remaining nodes absorb its keys cold.
        """
        if self._coordinator is None:
            raise RuntimeError("cluster is not started")
        report = self._coordinator.remove_node(name, dead=dead)
        self.qos_servers = [s for s in self.qos_servers if s.name != name]
        self.qos_nodes = [n for n in self.qos_nodes if n.name != name]
        self._retarget_procplane()
        return report

    def _retarget_procplane(self) -> None:
        """Renumber surviving workers after the node list changed.

        The routers hash over the concatenated backend list, so each
        node's workers occupy the global shard range at the node's
        cumulative position.  Advisory only — a worker decides any key
        handed to it — so retargeting after the commit is safe.
        """
        total = sum(node.n_workers for node in self.qos_nodes)
        base = 0
        for node in self.qos_nodes:
            node.retarget_shards(base, total)
            base += node.n_workers

    def topology(self) -> dict:
        """The committed cluster topology (epoch, backends, nodes)."""
        if self._coordinator is None:
            raise RuntimeError("cluster is not started")
        return self._coordinator.status()

    def _reshard_control(self, payload: dict) -> dict:
        """``POST /topology`` dispatcher (wired into every router)."""
        action = payload.get("action")
        if action == "status":
            return self.topology()
        if action == "add":
            return self.reshard_add().as_dict()
        if action == "remove":
            name = payload.get("node")
            if not isinstance(name, str) or not name:
                raise ValueError('remove needs a "node" name')
            return self.reshard_remove(
                name, dead=bool(payload.get("dead", False))).as_dict()
        raise ValueError(f"unknown action {action!r}; "
                         'use "add", "remove" or "status"')

    def put_rule(self, rule) -> None:
        """Write a rule to the database and push it to worker nodes."""
        self.rules.put_rule(rule)
        for node in self.qos_nodes:
            node.put_rules([rule])

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self.load_balancer is not None:
            self.load_balancer.stop()
        for router in self.routers:
            router.stop()
        for server in self.qos_servers:
            server.stop()
        for node in self.qos_nodes:
            node.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    @property
    def endpoint(self) -> str:
        """The load-balancer URL — what applications point at."""
        if self.load_balancer is None:
            raise RuntimeError("cluster is not started")
        return self.load_balancer.url

    def client(self, **kwargs) -> QoSClient:
        """A QoS client bound to this cluster's endpoint."""
        return QoSClient(self.endpoint, **kwargs)

    def qos_check(self, key: str, cost: float = 1.0) -> bool:
        """One-off convenience check (creates a throwaway client)."""
        return self.client().check(key, cost)

    def qos_check_many(self, keys, cost: float = 1.0) -> list[bool]:
        """One-off convenience batch check (one ``POST /qos/batch``)."""
        return self.client().check_many(keys, cost)

    def total_decisions(self) -> int:
        if self.qos_nodes:
            return sum(node.total_decisions() for node in self.qos_nodes)
        return sum(s.controller.stats.decisions for s in self.qos_servers)

    def trace_spans(self, trace_id: int) -> "list[dict]":
        """Spans of one trace, across every process of the deployment.

        Router/client spans come from the process-wide buffer; with
        multi-process nodes the server-side ``server.decide`` spans live
        in the worker processes and are collected over the supervisor
        pipes.
        """
        from repro.obs.tracing import global_trace_buffer
        spans = [span.as_dict()
                 for span in global_trace_buffer().get(trace_id)]
        spans.extend(self._node_trace_spans(trace_id))
        return spans

    def prometheus_metrics(self) -> str:
        """Every daemon's registry, merged into one exposition.

        Families repeated across daemons (and, for multi-process nodes,
        across worker processes) are merged under a single
        ``# HELP``/``# TYPE`` header; label sets keep the series apart.
        """
        parts = [router.prometheus_metrics() for router in self.routers]
        parts.extend(server.metrics.render()
                     for server in self.qos_servers)
        parts.extend(node.metrics_text() for node in self.qos_nodes)
        return merge_renderings(parts)

    def stats(self) -> dict:
        """Aggregated operational view of the whole deployment."""
        qos = []
        for server in self.qos_servers:
            s = server.controller.stats
            qos.append({
                "name": server.name,
                "address": list(server.address),
                "decisions": s.decisions,
                "admitted": s.admitted,
                "denied": s.denied,
                "rule_misses": s.rule_misses,
                "unknown_keys": s.unknown_keys,
                "local_table_keys": server.controller.table_size(),
                "malformed_packets": server.malformed_packets,
            })
        for node in self.qos_nodes:
            qos.append(node.stats())
        routers = [r.stats() for r in self.routers]
        return {
            "endpoint": self.endpoint if self._running else None,
            "rules_in_database": self.rules.count(),
            "processes": self.processes,
            "routers": routers,
            "qos_servers": qos,
        }
