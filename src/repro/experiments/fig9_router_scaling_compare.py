"""Fig. 9 — vertical vs horizontal scalability of the request router.

Replots Figs. 7 and 8 against vCPU cores in the router layer.  Paper
shape: "with the same amount of vCPU cores in the request router layer,
Janus achieves approximately the same throughput, regardless of the
scaling technique being used."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments import fig7_router_vertical, fig8_router_horizontal
from repro.experiments.scale import Scale, current_scale
from repro.experiments.scaling import ScalingPoint
from repro.metrics.report import format_table

__all__ = ["run", "report", "Fig9Result", "max_relative_gap"]


@dataclass(frozen=True, slots=True)
class Fig9Result:
    vertical: list[ScalingPoint]
    horizontal: list[ScalingPoint]


def run(scale: Optional[Scale] = None) -> Fig9Result:
    scale = scale or current_scale()
    return Fig9Result(
        vertical=fig7_router_vertical.run(scale, validate=()),
        horizontal=fig8_router_horizontal.run(scale, validate=()))


def max_relative_gap(result: Fig9Result) -> float:
    """Largest |vertical - horizontal| / vertical at matching vCPU counts,
    restricted to points where the router layer is the bottleneck (beyond
    it both curves sit on the same QoS ceiling by construction)."""
    by_cores_h = {p.swept_vcpus: p for p in result.horizontal}
    gaps = []
    for pv in result.vertical:
        ph = by_cores_h.get(pv.swept_vcpus)
        if ph is None or "router" not in (pv.bottleneck, ph.bottleneck):
            continue
        gaps.append(abs(pv.model_throughput - ph.model_throughput)
                    / pv.model_throughput)
    return max(gaps) if gaps else 0.0


def report(result: Optional[Fig9Result] = None) -> str:
    result = result or run()
    by_cores_h = {p.swept_vcpus: p for p in result.horizontal}
    rows = []
    for pv in result.vertical:
        ph = by_cores_h.get(pv.swept_vcpus)
        rows.append((
            pv.swept_vcpus, pv.label,
            round(pv.model_throughput / 1e3, 1),
            "-" if ph is None else ph.label,
            "-" if ph is None else round(ph.model_throughput / 1e3, 1)))
    table = format_table(
        ("vCPU", "vertical config", "k-rps", "horizontal config", "k-rps"),
        rows,
        title="Fig. 9: router vertical vs horizontal scaling at equal vCPUs")
    return (f"{table}\n"
            f"max relative gap: {max_relative_gap(result) * 100:.1f}% "
            f"(paper: 'approximately the same')")
