"""Analytic performance model: calibration, queueing laws, capacity.

The closed-form counterpart of the cluster simulator.  Both share
:class:`~repro.perfmodel.calibration.Calibration`; the experiments use the
model for full-scale sweeps and the simulator for validation points.
"""

from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.perfmodel.capacity import CapacityModel, LayerEstimate, SystemEstimate
from repro.perfmodel.cost import CostModel, DeploymentCost
from repro.perfmodel.mmc import (
    erlang_c,
    mm1_wait_time,
    mmc_residence_time,
    mmc_wait_time,
)
from repro.perfmodel.usl import USLFit, amdahl_speedup, fit_usl, usl_capacity

__all__ = [
    "Calibration",
    "CapacityModel",
    "CostModel",
    "DEFAULT_CALIBRATION",
    "DeploymentCost",
    "LayerEstimate",
    "SystemEstimate",
    "USLFit",
    "amdahl_speedup",
    "erlang_c",
    "fit_usl",
    "mm1_wait_time",
    "mmc_residence_time",
    "mmc_wait_time",
    "usl_capacity",
]
