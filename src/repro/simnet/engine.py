"""Discrete-event simulation kernel.

A small, deterministic DES engine in the style of SimPy, specialized for
this reproduction: a binary-heap event queue, generator-based processes,
and the three coordination primitives the cluster model needs —
:class:`Event`, :class:`Store` (the QoS server's FIFO) and
:class:`Resource` (vCPU cores, the local-table lock).

Processes are plain generators.  They may yield:

- a non-negative ``float``/``int`` — sleep for that many simulated seconds;
- an :class:`Event` — suspend until the event triggers; the ``yield``
  evaluates to the event's value;
- another :class:`Process` — suspend until that process finishes.

Determinism: events scheduled for the same timestamp fire in scheduling
order (a monotone sequence number breaks ties), so two runs with the same
seeds produce identical traces.  This is the property the model
cross-validation tests rely on.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, Iterable, Optional

from repro.core.errors import SimulationError

__all__ = ["Simulation", "Event", "Process", "Store", "Resource", "Interrupt",
           "first_of"]


def first_of(sim: "Simulation", event: "Event", delay: float) -> "Event":
    """An event racing ``event`` against a ``delay`` timeout.

    Triggers with ``("ok", value)`` if ``event`` fires first, or
    ``("timeout", None)`` otherwise.  The loser is left un-consumed (the
    underlying event may still trigger later), which is exactly the
    semantics a UDP retry loop needs.
    """
    out = Event(sim)

    def on_ok(value: Any) -> None:
        if not out._triggered:
            out.trigger(("ok", value))

    def on_timeout() -> None:
        if not out._triggered:
            out.trigger(("timeout", None))

    event.add_callback(on_ok)
    sim.call_in(delay, on_timeout)
    return out

ProcessGen = Generator[Any, Any, Any]


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot event that processes can wait on.

    An event triggers at most once with an optional value; every process
    waiting on it resumes (in wait order) with that value.  Processes that
    yield an already-triggered event resume immediately.
    """

    __slots__ = ("sim", "_triggered", "value", "_waiters", "_callbacks")

    def __init__(self, sim: "Simulation"):
        self.sim = sim
        self._triggered = False
        self.value: Any = None
        self._waiters: list["Process"] = []
        self._callbacks: list[Callable[[Any], None]] = []

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self.value = value
        for proc in self._waiters:
            self.sim._schedule_resume(proc, value)
        self._waiters.clear()
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(value)

    def add_callback(self, fn: Callable[[Any], None]) -> None:
        """Call ``fn(value)`` when the event triggers (immediately if it
        already has).  Used to build composite events such as
        :func:`first_of`."""
        if self._triggered:
            fn(self.value)
        else:
            self._callbacks.append(fn)

    def _add_waiter(self, proc: "Process") -> None:
        if self._triggered:
            self.sim._schedule_resume(proc, self.value)
        else:
            self._waiters.append(proc)

    def _remove_waiter(self, proc: "Process") -> None:
        try:
            self._waiters.remove(proc)
        except ValueError:
            pass


class Process:
    """A running generator inside the simulation."""

    __slots__ = ("sim", "name", "_gen", "_done", "_result", "_completion",
                 "_waiting_on", "_sleep_handle")

    def __init__(self, sim: "Simulation", gen: ProcessGen, name: str = "proc"):
        self.sim = sim
        self.name = name
        self._gen = gen
        self._done = False
        self._result: Any = None
        self._completion: Optional[Event] = None
        self._waiting_on: Optional[Event] = None
        self._sleep_handle: Optional[list] = None   # cancellable heap entry

    @property
    def done(self) -> bool:
        return self._done

    @property
    def result(self) -> Any:
        if not self._done:
            raise SimulationError(f"process {self.name!r} still running")
        return self._result

    def completion_event(self) -> Event:
        """Event triggered (with the return value) when this process ends."""
        if self._completion is None:
            self._completion = Event(self.sim)
            if self._done:
                self._completion.trigger(self._result)
        return self._completion

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._done:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._sleep_handle is not None:
            self._sleep_handle[3] = None          # cancel pending resume
            self._sleep_handle = None
        self.sim._schedule_throw(self, Interrupt(cause))

    # -- internal stepping -------------------------------------------------

    def _step(self, send_value: Any = None, throw_exc: Optional[BaseException] = None):
        self._waiting_on = None
        self._sleep_handle = None
        try:
            if throw_exc is not None:
                yielded = self._gen.throw(throw_exc)
            else:
                yielded = self._gen.send(send_value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its interrupt: treat as exit.
            self._finish(None)
            return
        if isinstance(yielded, (int, float)):
            if yielded < 0:
                raise SimulationError(
                    f"process {self.name!r} yielded negative delay {yielded}")
            self._sleep_handle = self.sim._schedule_entry(
                self.sim.now + float(yielded), self, None)
        elif isinstance(yielded, Event):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            ev = yielded.completion_event()
            self._waiting_on = ev
            ev._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported {yielded!r}")

    def _finish(self, result: Any) -> None:
        self._done = True
        self._result = result
        if self._completion is not None and not self._completion.triggered:
            self._completion.trigger(result)


class Simulation:
    """The event loop: simulated clock plus a heap of pending resumptions."""

    def __init__(self):
        self._now = 0.0
        self._heap: list[list] = []      # [time, seq, proc_or_None, payload]
        self._seq = 0
        self.events_processed = 0

    @property
    def now(self) -> float:
        return self._now

    def clock(self) -> float:
        """The :data:`repro.core.clock.Clock` view of simulated time."""
        return self._now

    # -- scheduling ---------------------------------------------------------

    def _push(self, entry: list) -> None:
        heapq.heappush(self._heap, entry)

    def _schedule_entry(self, at: float, proc: Process, payload: Any) -> list:
        entry = [at, self._seq, proc, ("resume", payload)]
        self._seq += 1
        self._push(entry)
        return entry

    def _schedule_resume(self, proc: Process, value: Any) -> None:
        self._schedule_entry(self._now, proc, value)

    def _schedule_throw(self, proc: Process, exc: BaseException) -> None:
        entry = [self._now, self._seq, proc, ("throw", exc)]
        self._seq += 1
        self._push(entry)

    def call_at(self, at: float, fn: Callable, *args: Any) -> None:
        """Run a plain callback at simulated time ``at``."""
        if at < self._now:
            raise SimulationError(f"cannot schedule in the past ({at} < {self._now})")
        entry = [at, self._seq, None, ("call", (fn, args))]
        self._seq += 1
        self._push(entry)

    def call_in(self, delay: float, fn: Callable, *args: Any) -> None:
        self.call_at(self._now + delay, fn, *args)

    def spawn(self, gen: ProcessGen, name: str = "proc") -> Process:
        """Start a generator process; its first step runs at the current time."""
        proc = Process(self, gen, name)
        entry = [self._now, self._seq, proc, ("start", None)]
        self._seq += 1
        self._push(entry)
        return proc

    def event(self) -> Event:
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """An event that triggers after ``delay`` seconds."""
        ev = Event(self)
        self.call_in(delay, lambda: None if ev.triggered else ev.trigger(value))
        return ev

    # -- running --------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 200_000_000) -> float:
        """Drain the event heap, optionally stopping at time ``until``.

        Returns the simulation time when the loop stopped.  ``max_events``
        is a runaway guard for buggy models.
        """
        processed = 0
        while self._heap:
            at = self._heap[0][0]
            if until is not None and at > until:
                self._now = until
                return self._now
            entry = heapq.heappop(self._heap)
            _, _, proc, payload = entry
            if payload is None:        # cancelled sleep
                continue
            self._now = at
            kind, arg = payload
            self.events_processed += 1
            processed += 1
            if processed > max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if kind == "call":
                fn, args = arg
                fn(*args)
            elif kind == "start":
                proc._step()
            elif kind == "resume":
                if not proc._done:
                    proc._step(send_value=arg)
            elif kind == "throw":
                if not proc._done:
                    proc._step(throw_exc=arg)
            else:  # pragma: no cover - defensive
                raise SimulationError(f"unknown payload kind {kind!r}")
        if until is not None and until > self._now:
            self._now = until
        return self._now


class Store:
    """An unbounded FIFO with blocking ``get`` (the QoS server's packet FIFO)."""

    __slots__ = ("sim", "_items", "_getters", "capacity", "dropped")

    def __init__(self, sim: Simulation, capacity: Optional[int] = None):
        self.sim = sim
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self.capacity = capacity
        self.dropped = 0

    def put(self, item: Any) -> bool:
        """Add an item; returns False (drop) when a bounded store is full."""
        if self._getters:
            self._getters.popleft().trigger(item)
            return True
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.dropped += 1
            return False
        self._items.append(item)
        return True

    def get(self) -> Event:
        """Event yielding the next item (immediate if one is buffered)."""
        ev = Event(self.sim)
        if self._items:
            ev.trigger(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def __len__(self) -> int:
        return len(self._items)


class Resource:
    """A counted resource with FIFO acquisition (cores, locks).

    Usage inside a process::

        yield resource.acquire()
        try:
            yield service_time
        finally:
            resource.release()
    """

    __slots__ = ("sim", "capacity", "_in_use", "_waiters",
                 "busy_time", "_last_change", "waits", "acquisitions")

    def __init__(self, sim: Simulation, capacity: int = 1):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.busy_time = 0.0              # integral of in_use over time
        self._last_change = sim.now
        self.waits = 0                    # acquisitions that had to queue
        self.acquisitions = 0

    def _account(self) -> None:
        now = self.sim.now
        self.busy_time += self._in_use * (now - self._last_change)
        self._last_change = now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def acquire(self) -> Event:
        ev = Event(self.sim)
        self.acquisitions += 1
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            ev.trigger()
        else:
            self.waits += 1
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError("release without matching acquire")
        while self._waiters:
            event = self._waiters.popleft()
            # A process interrupted while queued detaches from its acquire
            # event; handing the slot to such an orphan would leak it.
            if event._waiters or event._callbacks:
                # Hand the slot to the next live waiter; in_use unchanged.
                event.trigger()
                return
        self._account()
        self._in_use -= 1

    def busy_integral(self) -> float:
        """Integral of in-use slots over time (for windowed utilization,
        snapshot this at window start and subtract)."""
        self._account()
        return self.busy_time

    def utilization(self) -> float:
        """Mean busy fraction per capacity slot over the whole run."""
        self._account()
        if self.sim.now <= 0:
            return 0.0
        return self.busy_time / (self.sim.now * self.capacity)
