"""Scalability laws: Amdahl and the Universal Scalability Law (USL).

Used to (a) generate the analytic scaling curves behind Figs. 7–12 and
(b) *fit* measured sweeps — the tests fit the simulator's output and check
the contention coefficients stay small (near-linear scaling, the paper's
headline claim).

USL: ``C(N) = N / (1 + sigma*(N-1) + kappa*N*(N-1))`` where ``sigma`` is
contention (serialization) and ``kappa`` coherency (crosstalk).  Janus's
design argument is precisely that inter-node kappa is zero because nodes in
a layer never communicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.errors import ConfigurationError

__all__ = ["amdahl_speedup", "usl_capacity", "USLFit", "fit_usl"]


def amdahl_speedup(n: float, serial_fraction: float) -> float:
    """Amdahl's law speedup for ``n`` processors."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    if not (0.0 <= serial_fraction <= 1.0):
        raise ConfigurationError(f"serial_fraction must be in [0,1], got {serial_fraction}")
    return n / (1.0 + serial_fraction * (n - 1.0))


def usl_capacity(n: float, sigma: float, kappa: float, unit_rate: float = 1.0) -> float:
    """USL relative capacity at concurrency/node-count ``n``."""
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    return unit_rate * n / (1.0 + sigma * (n - 1.0) + kappa * n * (n - 1.0))


@dataclass(frozen=True, slots=True)
class USLFit:
    """Result of fitting USL to a measured (n, throughput) sweep."""

    unit_rate: float      # throughput of one node/core
    sigma: float          # contention coefficient
    kappa: float          # coherency coefficient
    r_squared: float

    def predict(self, n: float) -> float:
        return usl_capacity(n, self.sigma, self.kappa, self.unit_rate)

    @property
    def peak_n(self) -> float:
        """Concurrency at which USL predicts peak throughput."""
        if self.kappa <= 0:
            return float("inf")
        return float(np.sqrt((1.0 - self.sigma) / self.kappa))


def fit_usl(ns: Sequence[float], throughputs: Sequence[float]) -> USLFit:
    """Least-squares USL fit (linearized quadratic form).

    With ``x = n`` and ``y = n/normalized_throughput``, USL becomes the
    quadratic ``y = kappa*x^2 + (sigma - kappa)*x + (1 - sigma)``, fit with
    a constrained linear least squares; coefficients are clamped to be
    non-negative.
    """
    ns_arr = np.asarray(ns, dtype=float)
    tp = np.asarray(throughputs, dtype=float)
    if ns_arr.shape != tp.shape or ns_arr.size < 3:
        raise ConfigurationError("need >= 3 matching (n, throughput) points")
    if np.any(ns_arr < 1) or np.any(tp <= 0):
        raise ConfigurationError("n must be >= 1 and throughput > 0")
    unit = tp[ns_arr == ns_arr.min()][0] / ns_arr.min()
    rel = tp / unit                                  # relative capacity
    y = ns_arr / rel
    design = np.column_stack([ns_arr ** 2, ns_arr, np.ones_like(ns_arr)])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    a, b, c = coef
    kappa = max(0.0, float(a))
    sigma = max(0.0, float(b + kappa))
    # Recompute unit rate so predictions match the data in scale.
    pred_rel = np.array([usl_capacity(n, sigma, kappa) for n in ns_arr])
    unit_rate = float(np.sum(tp * pred_rel) / np.sum(pred_rel ** 2))
    pred = unit_rate * pred_rel
    ss_res = float(np.sum((tp - pred) ** 2))
    ss_tot = float(np.sum((tp - tp.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return USLFit(unit_rate=unit_rate, sigma=sigma, kappa=kappa, r_squared=r2)
