"""protocol-invariants: struct formats, arity, offsets and constants."""

from __future__ import annotations

RULE = ["protocol-invariants"]


def test_invalid_format_string_flagged(lint):
    result = lint("""
    import struct

    _HEADER = struct.Struct("!HZQ")
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]
    assert "invalid struct format" in result.findings[0].message


def test_pack_into_arity_mismatch_flagged(lint):
    result = lint("""
    import struct

    _HEADER = struct.Struct("!HBBQ")

    def encode(buf, request_id):
        _HEADER.pack_into(buf, 0, 0x4A51, 1, request_id)
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]
    assert "3 values" in result.findings[0].message
    assert "4 fields" in result.findings[0].message


def test_pack_arity_mismatch_flagged(lint):
    result = lint("""
    import struct

    _RESP = struct.Struct("!BB")

    def encode(verdict):
        return _RESP.pack(verdict, 0, 1)
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]


def test_correct_arity_passes(lint):
    result = lint("""
    import struct

    _HEADER = struct.Struct("!HBBQ")

    def encode(buf, request_id):
        _HEADER.pack_into(buf, 0, 0x4A51, 1, 2, request_id)
    """, rules=RULE)
    assert result.ok


def test_offset_advanced_by_wrong_struct_flagged(lint):
    result = lint("""
    import struct

    _HEAD = struct.Struct("!QH")
    _COST = struct.Struct("!d")

    def encode(buf, offset, request_id, key_len):
        _HEAD.pack_into(buf, offset, request_id, key_len)
        offset += _COST.size
        return offset
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]
    assert "advanced by 8" in result.findings[0].message


def test_offset_advanced_via_alias_passes(lint):
    result = lint("""
    import struct

    _TRACE_ID = struct.Struct("!Q")
    TRACE_ID_BYTES = _TRACE_ID.size

    def encode(buf, offset, trace_id):
        _TRACE_ID.pack_into(buf, offset, trace_id)
        offset += TRACE_ID_BYTES
        return offset
    """, rules=RULE)
    assert result.ok


def test_wrong_literal_offset_advance_flagged(lint):
    result = lint("""
    import struct

    _ENTRY = struct.Struct("!QBB")

    def encode(buf, offset, rid):
        _ENTRY.pack_into(buf, offset, rid, 1, 0)
        offset += 8
        return offset
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]


def test_header_bytes_constant_mismatch_flagged(lint):
    result = lint("""
    import struct

    _FRAME_HEADER = struct.Struct("!HBBH")
    FRAME_HEADER_BYTES = 8
    """, rules=RULE)
    assert [f.rule for f in result.findings] == ["protocol-invariants"]
    assert "FRAME_HEADER_BYTES = 8" in result.findings[0].message
    assert "6 bytes" in result.findings[0].message


def test_header_bytes_constant_match_passes(lint):
    result = lint("""
    import struct

    _FRAME_HEADER = struct.Struct("!HBBH")
    FRAME_HEADER_BYTES = 6
    TRACE_ID = struct.Struct("!Q")
    TRACE_ID_BYTES = TRACE_ID.size
    MAX_KEY_BYTES = 4096
    """, rules=RULE)
    assert result.ok


def test_real_protocol_module_is_clean(lint):
    from pathlib import Path

    from repro.analysis import all_checkers
    from repro.analysis.framework import lint_paths

    protocol = (Path(__file__).resolve().parents[2]
                / "src" / "repro" / "core" / "protocol.py")
    result = lint_paths([str(protocol)], all_checkers(), rules=RULE)
    assert result.ok
