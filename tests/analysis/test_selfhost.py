"""Self-hosting gate: the repo's own ``src/`` tree must lint clean."""

from __future__ import annotations

from pathlib import Path

from repro.analysis import all_checkers
from repro.analysis.framework import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_lints_clean():
    result = lint_paths([str(REPO_ROOT / "src")], all_checkers())
    assert result.findings == [], "\n".join(
        f.format() for f in result.findings
    )
    assert result.files_scanned > 50


def test_every_rule_was_active():
    result = lint_paths([str(REPO_ROOT / "src")], all_checkers())
    assert set(result.rules) == {
        "lock-discipline",
        "blocking-under-lock",
        "monotonic-time",
        "protocol-invariants",
        "determinism",
        "guard-inference",
        "transitive-blocking-under-lock",
        "wire-doc-drift",
    }
