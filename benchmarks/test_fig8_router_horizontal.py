"""Bench: regenerate Fig. 8 (request router horizontal scaling)."""

from __future__ import annotations

import pytest

from repro.experiments import fig8_router_horizontal
from repro.experiments.scale import current_scale


def test_fig8_router_horizontal(benchmark, report_sink):
    scale = current_scale()
    points = benchmark.pedantic(
        fig8_router_horizontal.run, args=(scale,), rounds=1, iterations=1)
    # Linear growth at the head of the sweep...
    assert points[3].model_throughput == pytest.approx(
        4 * points[0].model_throughput, rel=0.02)
    # ...and the paper's plateau past ~8 routers against one c3.8xlarge.
    plateau = fig8_router_horizontal.plateau_index(points)
    assert 8 <= plateau <= 10
    assert points[-1].bottleneck == "qos"
    report_sink(fig8_router_horizontal.report(points))
