"""Tests for the photo-sharing application (§IV, §V-D)."""

from __future__ import annotations


from repro.apps.photoshare import PhotoShareApp
from repro.core.config import (
    AdmissionConfig,
    ClusterTopology,
    JanusConfig,
    ServerConfig,
)
from repro.core.keys import ip_key
from repro.core.rules import GUEST_ACCESS, QoSRule
from repro.server.cluster import SimJanusCluster
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def standalone_app():
    sim = Simulation()
    rng = RngRegistry(51)
    net = Network(sim, rng, udp_loss=0.0)
    return sim, PhotoShareApp(sim, net, rng, janus=None, n_photos=50)


def app_with_janus(known_ip=None):
    config = JanusConfig(
        topology=ClusterTopology(n_routers=2, n_qos_servers=2,
                                 router_instance="c3.xlarge",
                                 qos_instance="c3.xlarge"),
        server=ServerConfig(workers=4,
                            admission=AdmissionConfig(default_rule=GUEST_ACCESS)))
    janus = SimJanusCluster(config, seed=51)
    if known_ip:
        janus.rules.put_rule(
            QoSRule(ip_key(known_ip), refill_rate=0.1, capacity=5.0))
    app = PhotoShareApp(janus.sim, janus.net, janus.rng, janus=janus,
                        n_photos=50)
    return janus.sim, app


class TestWithoutQoS:
    def test_index_page_serves(self):
        sim, app = standalone_app()
        views = []

        def client():
            for _ in range(5):
                views.append((yield from app.index_page("1.2.3.4")))

        sim.spawn(client(), "c")
        sim.run(until=5.0)
        assert len(views) == 5
        assert all(v.status == 200 and v.allowed for v in views)
        assert all(v.n_photos == 20 for v in views)      # latest-20 query
        assert all(v.qos_latency == 0.0 for v in views)

    def test_session_cache_hit_on_repeat_visit(self):
        sim, app = standalone_app()
        views = []

        def client():
            views.append((yield from app.index_page("1.2.3.4")))
            views.append((yield from app.index_page("1.2.3.4")))
            views.append((yield from app.index_page("5.6.7.8")))

        sim.spawn(client(), "c")
        sim.run(until=5.0)
        assert [v.session_hit for v in views] == [False, True, False]

    def test_upload_appears_in_latest(self):
        sim, app = standalone_app()
        results = []

        def client():
            yield from app.upload_photo("tester", "sunset")
            view = yield from app.index_page("1.2.3.4")
            results.append(view)

        sim.spawn(client(), "c")
        sim.run(until=5.0)
        rows = app.mysql.execute(
            "SELECT title FROM photos ORDER BY uploaded_at DESC LIMIT 1")
        assert rows.first() == ("sunset",)

    def test_web_nodes_round_robin(self):
        sim, app = standalone_app()

        def client():
            for _ in range(10):
                yield from app.index_page("1.2.3.4")

        sim.spawn(client(), "c")
        sim.run(until=10.0)
        assert [n.jobs_completed for n in app.web_nodes] == [2] * 5

    def test_latency_in_tens_of_ms(self):
        """The app's own latency scale (paper: P90 ~27 ms)."""
        sim, app = standalone_app()
        views = []

        def client():
            for _ in range(30):
                views.append((yield from app.index_page("1.2.3.4")))

        sim.spawn(client(), "c")
        sim.run(until=30.0)
        mean = sum(v.latency for v in views) / len(views)
        assert 0.010 < mean < 0.040


class TestWithQoS:
    def test_throttles_after_burst(self):
        sim, app = app_with_janus(known_ip="9.9.9.9")
        views = []

        def client():
            for _ in range(10):
                views.append((yield from app.index_page("9.9.9.9")))

        sim.spawn(client(), "c")
        sim.run(until=10.0)
        # Capacity 5: ~5 served, rest 403.  A UDP retry crossing a delayed
        # response can consume a duplicate credit (the paper's protocol
        # shares this), so allow one short.
        served = [v for v in views if v.status == 200]
        throttled = [v for v in views if v.status == 403]
        assert 4 <= len(served) <= 7
        assert len(throttled) >= 3
        assert app.pages_throttled == len(throttled)

    def test_rejection_is_fast(self):
        sim, app = app_with_janus(known_ip="9.9.9.9")
        views = []

        def client():
            for _ in range(10):
                views.append((yield from app.index_page("9.9.9.9")))

        sim.spawn(client(), "c")
        sim.run(until=10.0)
        throttled = [v for v in views if v.status == 403]
        served = [v for v in views if v.status == 200]
        assert max(v.latency for v in throttled) < 0.005       # ~3 ms path
        assert min(v.latency for v in served) > 0.010

    def test_unknown_ip_gets_guest_quota(self):
        sim, app = app_with_janus()
        views = []

        def client():
            for _ in range(250):
                views.append((yield from app.index_page("8.8.8.8")))

        sim.spawn(client(), "c")
        sim.run(until=60.0)
        # GUEST_ACCESS: capacity 100 + ~10/s refill against ~50 rps offered;
        # a large tail must be throttled.
        assert sum(v.status == 403 for v in views) >= 50
        assert sum(v.status == 200 for v in views) >= 100
