"""Table I — EC2 instance types used in the evaluation."""

from __future__ import annotations

from repro.metrics.report import format_table
from repro.simnet.instances import INSTANCE_TYPES, TABLE_I_ORDER

__all__ = ["run", "report"]


def run() -> list[dict]:
    """Return Table I rows (name, vCPU, memory, network, price)."""
    rows = []
    for name in TABLE_I_ORDER:
        inst = INSTANCE_TYPES[name]
        rows.append({
            "instance": inst.name,
            "vcpu_cores": inst.vcpus,
            "memory_gb": inst.memory_gb,
            "network_mbps": inst.network_mbps,
            "price_usd_hr": inst.price_usd_hr,
        })
    return rows


def report() -> str:
    rows = run()
    return format_table(
        ("Instance", "vCPU", "Memory (GB)", "Network (Mbps)", "Price (USD/hr)"),
        [tuple(r.values()) for r in rows],
        title="Table I: EC2 instance types")
