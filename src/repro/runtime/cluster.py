"""LocalCluster: a complete real-socket Janus deployment on localhost.

Boots, on ephemeral ports: ``n_qos_servers`` UDP QoS server daemons sharing
one rule database, ``n_routers`` HTTP request routers (each knowing the
full ordered backend list — the partition map), and a gateway load-balancer
reverse proxy in front.  The result is the paper's Fig. 1a running in one
process, suitable for integration tests, the quickstart example, and small
real-socket benchmarks.

The UDP timeout defaults to 50 ms rather than the paper's 100 µs: a
GIL-scheduled Python worker cannot guarantee EC2-class turnarounds, and a
too-tight timeout would make every admission burn its full retry budget
and consume duplicate credits.
"""

from __future__ import annotations

from typing import Optional

from repro.core.config import RouterConfig, ServerConfig
from repro.db.engine import Engine
from repro.db.replication import ReplicatedDatabase
from repro.db.rulestore import RuleStore
from repro.runtime.client import QoSClient
from repro.runtime.http_router import RequestRouterDaemon
from repro.runtime.loadbalancer import GatewayLoadBalancerDaemon
from repro.runtime.udp_server import QoSServerDaemon

__all__ = ["LocalCluster"]


class LocalCluster:
    """A running Janus deployment on 127.0.0.1."""

    def __init__(
        self,
        *,
        n_routers: int = 2,
        n_qos_servers: int = 2,
        router_config: Optional[RouterConfig] = None,
        server_config: Optional[ServerConfig] = None,
        lb_algorithm: str = "round_robin",
        db_ha: bool = True,
    ):
        self.db = ReplicatedDatabase() if db_ha else Engine("qos-db")
        self.rules = RuleStore(self.db)
        self._router_config = router_config or RouterConfig(
            udp_timeout=0.05, max_retries=5)
        self._server_config = server_config or ServerConfig(workers=4)
        self._n_routers = n_routers
        self._n_qos = n_qos_servers
        self._lb_algorithm = lb_algorithm
        self.qos_servers: list[QoSServerDaemon] = []
        self.routers: list[RequestRouterDaemon] = []
        self.load_balancer: Optional[GatewayLoadBalancerDaemon] = None
        self._running = False

    # ------------------------------------------------------------------ #

    def start(self) -> "LocalCluster":
        if self._running:
            return self
        self._running = True
        self.qos_servers = [
            QoSServerDaemon(self.rules, config=self._server_config,
                            name=f"qos-{i}").start()
            for i in range(self._n_qos)
        ]
        backend_addresses = [s.address for s in self.qos_servers]
        self.routers = [
            RequestRouterDaemon(backend_addresses,
                                config=self._router_config,
                                name=f"router-{i}").start()
            for i in range(self._n_routers)
        ]
        self.load_balancer = GatewayLoadBalancerDaemon(
            [r.url for r in self.routers],
            algorithm=self._lb_algorithm).start()
        return self

    def stop(self) -> None:
        if not self._running:
            return
        self._running = False
        if self.load_balancer is not None:
            self.load_balancer.stop()
        for router in self.routers:
            router.stop()
        for server in self.qos_servers:
            server.stop()

    def __enter__(self) -> "LocalCluster":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------------------ #

    @property
    def endpoint(self) -> str:
        """The load-balancer URL — what applications point at."""
        if self.load_balancer is None:
            raise RuntimeError("cluster is not started")
        return self.load_balancer.url

    def client(self, **kwargs) -> QoSClient:
        """A QoS client bound to this cluster's endpoint."""
        return QoSClient(self.endpoint, **kwargs)

    def qos_check(self, key: str, cost: float = 1.0) -> bool:
        """One-off convenience check (creates a throwaway client)."""
        return self.client().check(key, cost)

    def qos_check_many(self, keys, cost: float = 1.0) -> list[bool]:
        """One-off convenience batch check (one ``POST /qos/batch``)."""
        return self.client().check_many(keys, cost)

    def total_decisions(self) -> int:
        return sum(s.controller.stats.decisions for s in self.qos_servers)

    def trace_spans(self, trace_id: int) -> "list[dict]":
        """Spans of one trace, from the process-wide buffer.

        All of a LocalCluster's daemons share the process, so this is
        the same data any router's ``GET /trace/<id>`` serves.
        """
        from repro.obs.tracing import global_trace_buffer
        return [span.as_dict()
                for span in global_trace_buffer().get(trace_id)]

    def prometheus_metrics(self) -> str:
        """Every daemon's registry, concatenated (debugging aid).

        Each router and QoS server renders its own registry; label sets
        disambiguate the daemons but ``# TYPE`` headers repeat across
        sections, so scrape one router's ``GET /metrics`` (strictly
        conformant) rather than this concatenation.
        """
        parts = [router.prometheus_metrics() for router in self.routers]
        parts.extend(server.metrics.render()
                     for server in self.qos_servers)
        return "".join(parts)

    def stats(self) -> dict:
        """Aggregated operational view of the whole deployment."""
        qos = []
        for server in self.qos_servers:
            s = server.controller.stats
            qos.append({
                "name": server.name,
                "address": list(server.address),
                "decisions": s.decisions,
                "admitted": s.admitted,
                "denied": s.denied,
                "rule_misses": s.rule_misses,
                "unknown_keys": s.unknown_keys,
                "local_table_keys": server.controller.table_size(),
                "malformed_packets": server.malformed_packets,
            })
        routers = [r.stats() for r in self.routers]
        return {
            "endpoint": self.endpoint if self._running else None,
            "rules_in_database": self.rules.count(),
            "routers": routers,
            "qos_servers": qos,
        }
