"""Multiplexed router↔QoS-server UDP channels (the wire path, rebuilt).

The seed wire path is literal §III-B: every HTTP handler thread owns a
private blocking UDP socket and spends one ``sendto`` + one ``recvfrom``
(plus a timeout arm and a thread wakeup) per admission check, so router
throughput is capped by per-datagram syscall cost rather than by admission
work.  This module replaces it:

- each backend gets **one shared non-blocking UDP socket** per router;
- submitting threads append to the channel's send queue and flush it
  inline — whatever is pending rides one protocol-v2 batch frame (up to
  ``RouterConfig.batch_size`` messages), so concurrent submitters
  coalesce naturally, classic group commit, with **no added latency when
  idle** (a lone request is sent immediately by its own thread);
- of the threads blocked on a channel, one holds the channel's
  **recv-leader token**: it drains response frames straight off the
  socket and matches responses to waiters by request id, so the common
  case costs *zero* cross-thread handoffs — the same thread sends,
  receives, and returns.  Followers sleep on per-request events; a
  departing leader passes the token to one of them (a baton wake);
- a single ``selectors``-based **event thread** owns the hashed
  **timer wheel** and with it every timeout, retry, and default reply —
  no per-call ``settimeout``, no blocked thread per in-flight datagram.
  Send paths arm timers through a lock-free deque the event thread
  drains each pass, so the hot path never touches the wheel itself.

``RouterConfig.wire_protocol = 1`` keeps the channel multiplexed but
emits seed-compatible single-message v1 datagrams for v1-only servers;
responses of either version are accepted at all times.
"""

from __future__ import annotations

import select as _select
import selectors
import socket
import threading
import time
from collections import deque
from typing import Optional, Sequence

from repro.core.config import RouterConfig
from repro.core.errors import ProtocolError
from repro.core.protocol import (
    LeaseGrant,
    LeaseRevoke,
    QoSRequest,
    QoSResponse,
    RequestIdGenerator,
    decode_any,
    encode_request_frame_parts,
    FRAME_HEADER_BYTES,
    FRAME_REQ_ENTRY_OVERHEAD,
    MAX_DATAGRAM_BYTES,
    TRACE_ID_BYTES,
)
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.tracing import default_tracer

__all__ = ["ChannelSet", "ChannelStats", "TimerWheel"]

_RECV_BUFFER = 65535
#: Event-loop sleep when no timers are armed (shutdown responsiveness and
#: worst-case lateness of a timer armed while the loop was asleep).
_IDLE_SELECT_TIMEOUT = 0.05
#: How long a recv leader sits in one ``select`` before re-checking
#: whether the event thread resolved its exchange (timeout path only;
#: data wakes the leader immediately).
_LEADER_SLICE = 0.02
#: How long a follower sleeps before re-trying for the leader token.
#: Normal completions and baton handoffs wake it instantly; the slice
#: only bounds recovery from rare lost-baton races.
_FOLLOWER_SLICE = 0.05
#: Period of the recurring lease-plane drain poke.  While the router
#: holds leases it may go arbitrarily long without any exchange (every
#: check admits locally), so nobody reads the channel sockets and an
#: unsolicited LEASE_REVOKE would rot in the kernel buffer until the
#: TTL renewal.  The poke bounds revoke latency to ~this period; armed
#: only when a lease listener is wired, so the lease-disabled path keeps
#: zero extra wakeups.
_LEASE_DRAIN_INTERVAL = 0.05
#: Keep batched frames comfortably under the datagram ceiling even with
#: adversarially long keys.
_FRAME_BYTE_BUDGET = MAX_DATAGRAM_BYTES - 512


class ChannelStats:
    """Wire-path counters.  Each backend channel keeps its own instance,
    mutated only under that channel's lock; :attr:`ChannelSet.stats`
    aggregates them on read."""

    __slots__ = ("frames_sent", "frames_received", "messages_sent",
                 "responses_matched", "retries", "default_replies",
                 "malformed_datagrams", "send_errors")

    def __init__(self) -> None:
        self.frames_sent = 0
        self.frames_received = 0
        self.messages_sent = 0
        self.responses_matched = 0
        self.retries = 0
        self.default_replies = 0
        self.malformed_datagrams = 0
        self.send_errors = 0

    def add(self, other: "ChannelStats") -> "ChannelStats":
        for name in self.__slots__:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        return self

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}


class TimerWheel:
    """Hashed timer wheel: O(1) schedule, expiry checked once per tick.

    Entries are ``(deadline, item)`` pairs hashed into ``slots`` buckets
    by deadline tick; :meth:`advance` sweeps only the buckets whose tick
    has passed since the previous call.  Cancellation is lazy — callers
    mark their item done and expired items are filtered on collection —
    which keeps the wheel free of per-entry bookkeeping.
    """

    __slots__ = ("tick", "_n", "_buckets", "_cursor", "_live", "_is_dead")

    def __init__(self, tick: float, slots: int = 512, is_dead=None):
        if tick <= 0:
            raise ValueError(f"tick must be > 0, got {tick}")
        self.tick = tick
        self._n = slots
        self._buckets: list[list] = [[] for _ in range(slots)]
        self._cursor: Optional[int] = None
        self._live = 0
        # Optional predicate over scheduled items: entries it reports
        # dead are pruned by ``peek`` instead of counting toward the
        # next-wake deadline, so lazily-cancelled timers never wake the
        # owning thread early.
        self._is_dead = is_dead

    def __len__(self) -> int:
        return self._live

    def schedule(self, deadline: float, item) -> None:
        # Bucket by the first tick *after* the deadline: the sweep visits
        # tick t once now >= t*tick, so an entry in tick
        # floor(deadline/tick) would be examined just before its deadline,
        # survive the <= check, and then wait a full wheel revolution.
        self._buckets[(int(deadline / self.tick) + 1) % self._n].append(
            (deadline, item))
        self._live += 1

    def peek(self) -> Optional[float]:
        """Earliest deadline still on the wheel, or ``None`` when empty.

        Scans forward from the sweep cursor to the first bucket with a
        live entry and returns that bucket's minimum live deadline —
        exact as long as every entry lives within one revolution of
        ``now`` (:class:`ChannelSet` sizes the wheel to guarantee that).
        An entry scheduled further out can wrap into an earlier bucket
        and make this an overestimate, so callers deriving a sleep from
        it should still cap it defensively.  Entries the ``is_dead``
        predicate rejects are pruned on the way — without this, a
        steady stream of already-answered frames would keep presenting
        imminent dead deadlines and force a wake every tick.
        """
        if not self._live:
            return None
        start = (self._cursor if self._cursor is not None
                 else int(time.monotonic() / self.tick) - 1)
        is_dead = self._is_dead
        for offset in range(1, self._n + 1):
            index = (start + offset) % self._n
            bucket = self._buckets[index]
            if not bucket:
                continue
            if is_dead is not None:
                keep = [pair for pair in bucket if not is_dead(pair[1])]
                if len(keep) != len(bucket):
                    self._live -= len(bucket) - len(keep)
                    self._buckets[index] = keep
                bucket = keep
                if not bucket:
                    continue
            return min(pair[0] for pair in bucket)
        return None

    def advance(self, now: float) -> list:
        """Collect every item whose deadline is at or before ``now``."""
        current = int(now / self.tick)
        if self._cursor is None:
            self._cursor = current - 1
        if current <= self._cursor:
            return []
        first = max(self._cursor + 1, current - self._n + 1)
        expired: list = []
        for tick_index in range(first, current + 1):
            bucket = self._buckets[tick_index % self._n]
            if not bucket:
                continue
            keep = [pair for pair in bucket if pair[0] > now]
            if len(keep) != len(bucket):
                expired.extend(item for deadline, item in bucket
                               if deadline <= now)
                self._buckets[tick_index % self._n] = keep
        self._cursor = current
        self._live -= len(expired)
        return expired


class _CallGroup:
    """Completion signal shared by every exchange of one submit call.

    The common case never allocates an ``Event`` at all: the submitting
    thread usually holds the recv-leader token and observes ``done``
    flags directly.  Only a thread that must actually block as a
    follower creates the event — and only that one thread ever waits on
    it, so lazy creation is race-free as long as it re-checks ``done``
    after publishing the event (dispatchers set ``done`` first, then set
    the event if one is visible).
    """

    __slots__ = ("event",)

    def __init__(self) -> None:
        self.event: Optional[threading.Event] = None

    def notify(self) -> None:
        event = self.event
        if event is not None:
            event.set()


class _Exchange:
    """One in-flight admission check: request plus its blocked waiter."""

    __slots__ = ("request", "key_bytes", "size", "group", "response",
                 "attempts", "done", "baton", "trace_id")

    def __init__(self, request: QoSRequest, group: _CallGroup,
                 trace_id: int = 0):
        self.request = request
        self.key_bytes = request._validated_key_bytes()
        self.size = FRAME_REQ_ENTRY_OVERHEAD + len(self.key_bytes)
        self.group = group
        self.response: Optional[QoSResponse] = None
        self.attempts = 0
        self.done = False
        self.baton = False
        self.trace_id = trace_id


class _BackendChannel:
    """One shared socket plus send/in-flight state for one backend."""

    __slots__ = ("address", "sock", "lock", "recv_token", "pending",
                 "inflight", "stats")

    def __init__(self, address: tuple[str, int]):
        self.address = address
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self.sock.setblocking(False)
        # Connected UDP: cheaper send/recv and the kernel drops datagrams
        # from other sources before they reach us.
        self.sock.connect(address)
        # ``lock`` guards pending/inflight/stats; ``recv_token`` elects
        # the one thread currently allowed to recv on the socket.
        self.lock = threading.Lock()
        self.recv_token = threading.Lock()
        self.pending: deque[_Exchange] = deque()
        self.inflight: dict[int, _Exchange] = {}
        self.stats = ChannelStats()


def _timer_entry_dead(item) -> bool:
    """True when a wheel entry no longer needs to fire.

    ``item`` is ``(channel, batch)``: re-flush markers (``batch is
    None``) and deferred callbacks (``batch`` callable — lease TTLs)
    always stay live; a frame's entry is dead once every exchange in it
    has resolved.  ``done`` flips ``False → True`` exactly once, so the
    lock-free read can only misreport *live* — which merely costs an
    extra wake, never a missed timeout.
    """
    batch = item[1]
    return (batch is not None and not callable(batch)
            and all(e.done for e in batch))


class ChannelSet:
    """All of one router's backend channels plus their event thread."""

    def __init__(self, backends: Sequence[tuple[str, int]],
                 config: Optional[RouterConfig] = None,
                 registry: Optional[MetricsRegistry] = None,
                 tracer=None, labels: Optional[dict] = None):
        if not backends:
            raise ValueError("channel set needs at least one backend")
        self.config = config or RouterConfig(udp_timeout=0.05)
        self._ids = RequestIdGenerator()
        self._tracer = tracer if tracer is not None else default_tracer()
        labels = labels or {}
        #: Event-thread selector wakeups (idle ticks + timer expiries) —
        #: plain int, single-writer (the event thread).
        self.timer_wakeups = 0
        # Always-on instruments: bare (unregistered) instances when no
        # registry is supplied, so the hot path never branches on "is
        # observability enabled".
        self._batch_fill = (registry.histogram(
            "janus_channel_batch_fill",
            "Messages coalesced per sent v2 frame", **labels)
            if registry is not None else Histogram("janus_channel_batch_fill"))
        self._rtt = (registry.histogram(
            "janus_channel_exchange_seconds",
            "Channel exchange round-trip latency (submit to resolve)",
            scale=1e-9, **labels)
            if registry is not None
            else Histogram("janus_channel_exchange_seconds", scale=1e-9))
        if registry is not None:
            stats_help = {
                "frames_sent": "Datagrams sent to backends",
                "frames_received": "Response datagrams decoded",
                "messages_sent": "Admission requests put on the wire",
                "responses_matched": "Responses matched to a waiter",
                "retries": "Request re-sends after a timer expiry",
                "default_replies": "Exchanges resolved by default reply",
                "malformed_datagrams": "Datagrams dropped as malformed",
                "send_errors": "Socket send failures",
            }
            for field, help_text in stats_help.items():
                registry.counter(
                    f"janus_channel_{field}_total", help_text,
                    fn=(lambda f=field: getattr(self.stats, f)), **labels)
            registry.gauge(
                "janus_channel_pending", "Queued-but-unsent exchanges",
                fn=lambda: sum(len(c.pending)
                               for c in self._channels.values()), **labels)
            registry.gauge(
                "janus_channel_inflight", "Exchanges awaiting a response",
                fn=lambda: sum(len(c.inflight)
                               for c in self._channels.values()), **labels)
            registry.counter(
                "janus_channel_timer_wakeups_total",
                "Event-thread wakeups (timer wheel + idle ticks)",
                fn=lambda: self.timer_wakeups, **labels)
        self._channels = {tuple(addr): _BackendChannel(tuple(addr))
                          for addr in backends}
        # Credit-lease plane hook: when set (via the ``lease_listener``
        # property), decoded LEASE_GRANT/LEASE_REVOKE messages are handed
        # to it as ``listener(message, backend_address)`` with no lock
        # held.  When unset, lease frames count as malformed — the
        # pre-lease behaviour.
        self._lease_listener = None
        # Channels retired by replace_backend; their sockets stay open
        # until stop() because armed timer entries still reference them.
        self._retired: list[_BackendChannel] = []
        # The wheel belongs to the event thread.  Send paths arm timers
        # by appending to this deque (append/popleft are atomic, so no
        # lock rides the hot path); the event thread drains it each pass.
        # Slots cover at least two udp_timeouts so no deadline ever wraps
        # past one revolution — which makes ``TimerWheel.peek`` an exact
        # earliest-deadline and lets the event thread sleep until then.
        slots = max(512, int(2 * self.config.udp_timeout
                             / self.config.timer_tick) + 2)
        self._wheel = TimerWheel(self.config.timer_tick, slots=slots,
                                 is_dead=_timer_entry_dead)
        # The third element is a frame batch (list), a re-flush marker
        # (None), or a deferred callback (callable — lease TTLs).
        self._timer_inbox: deque[
            tuple[float, _BackendChannel, object]] = deque()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        self._selector = selectors.DefaultSelector()
        self._selector.register(self._wake_r, selectors.EVENT_READ, None)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        # A waiter only gives up after the event thread has necessarily
        # resolved its exchange (worst-case retries + wheel slack); the
        # synthesized default reply below it is a belt-and-braces fallback
        # against an event-thread crash, not a normal code path.
        self._wait_budget = (self.config.worst_case_wait
                             + (self.config.max_retries + 2)
                             * max(self.config.timer_tick,
                                   _IDLE_SELECT_TIMEOUT) + 1.0)

    @property
    def stats(self) -> ChannelStats:
        """Aggregate of every backend channel's counters."""
        total = ChannelStats()
        for channel in self._channels.values():
            total.add(channel.stats)
        return total

    @property
    def lease_listener(self):
        """Callback for decoded LEASE_GRANT/LEASE_REVOKE messages."""
        return self._lease_listener

    @lease_listener.setter
    def lease_listener(self, listener) -> None:
        arm = listener is not None and self._lease_listener is None
        self._lease_listener = listener
        if arm:
            self._arm_lease_drain()

    def _arm_lease_drain(self) -> None:
        """Start the recurring event-thread drain for unsolicited frames.

        A server-initiated LEASE_REVOKE arrives on a channel socket that
        is only read while some exchange waiter holds the recv-leader
        token; under pure local admission there is no such waiter.  This
        self-rescheduling callback drains every channel whose token is
        free each ``_LEASE_DRAIN_INTERVAL`` so revokes land promptly.
        """
        carrier = next(iter(self._channels.values()))

        def tick() -> None:
            if self._lease_listener is None or self._stop.is_set():
                return
            for channel in list(self._channels.values()):
                if channel.recv_token.acquire(blocking=False):
                    try:
                        self._drain(channel)
                    finally:
                        channel.recv_token.release()
            self._timer_inbox.append(
                (time.monotonic() + _LEASE_DRAIN_INTERVAL, carrier, tick))

        self._timer_inbox.append(
            (time.monotonic() + _LEASE_DRAIN_INTERVAL, carrier, tick))
        self._wake()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> "ChannelSet":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._run, name="udp-channel", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is not None:
            self._stop.set()
            self._wake()
            self._thread.join(timeout=2.0)
            self._thread = None
        self._selector.close()
        for channel in self._channels.values():
            channel.sock.close()
        for channel in self._retired:
            channel.sock.close()
        self._wake_r.close()
        self._wake_w.close()

    # ------------------------------------------------------------------ #
    # backend remapping (procplane worker restarts)
    # ------------------------------------------------------------------ #

    def add_backend(self, backend: tuple[str, int]) -> None:
        """Open a channel to a new backend address (idempotent)."""
        addr = tuple(backend)
        if addr not in self._channels:
            # Atomic dict swap: readers (stats, gauges, exchanges)
            # iterate whichever dict they loaded, never a mutating one.
            self._channels = {**self._channels, addr: _BackendChannel(addr)}

    def replace_backend(self, old: tuple[str, int],
                        new: tuple[str, int]) -> bool:
        """Swap one backend address for another in place.

        Used when a restarted shard worker could not rebind its old
        port.  Exchanges still in flight toward the old address resolve
        through their armed timers — retries land on a dead address and
        become default replies, exactly like a lost backend — while new
        submissions go straight to the replacement channel.
        """
        old_addr, new_addr = tuple(old), tuple(new)
        if old_addr == new_addr:
            return old_addr in self._channels
        channels = dict(self._channels)
        retired = channels.pop(old_addr, None)
        if retired is not None:
            self._retired.append(retired)
        if new_addr not in channels:
            channels[new_addr] = _BackendChannel(new_addr)
        self._channels = channels
        return retired is not None

    def retire_backend(self, backend: tuple[str, int]) -> bool:
        """Drop one backend channel without a replacement (reshard shrink).

        The channel moves to the retired list: exchanges still in
        flight toward it resolve through their armed timers (retries,
        then default replies), and the socket is closed at
        :meth:`stop`.  The last remaining channel is never retired —
        an empty channel set would strand every future submission.
        """
        addr = tuple(backend)
        channels = dict(self._channels)
        if addr not in channels or len(channels) <= 1:
            return False
        self._retired.append(channels.pop(addr))
        self._channels = channels
        return True

    # ------------------------------------------------------------------ #
    # submission API (any thread)
    # ------------------------------------------------------------------ #

    def exchange(self, backend: tuple[str, int], key: str,
                 cost: float = 1.0,
                 trace_id: int = 0) -> tuple[QoSResponse, int]:
        """One admission check; blocks until response or default reply.

        Fast path of :meth:`exchange_many` for a single check — skips
        the per-backend grouping so the lone-request latency (the idle
        ``batch_size=1`` configuration) stays as close to the seed
        blocking path as the multiplexed design allows.
        """
        if self._stop.is_set():
            return self._dead_result()
        channel = self._channels[tuple(backend)]
        span = (self._tracer.start(trace_id, "channel.exchange",
                                   "udp_channel",
                                   {"backend": f"{backend[0]}:{backend[1]}"})
                if trace_id else None)
        exchange = _Exchange(QoSRequest(self._ids.next_id(), key, cost),
                             _CallGroup(), trace_id)
        with channel.lock:
            channel.pending.append(exchange)
            self._flush_locked(channel)
        result = self._await(channel, exchange,
                             time.monotonic() + self._wait_budget)
        if span is not None:
            self._tracer.finish(span, attempts=result[1],
                                default=result[0].is_default_reply)
            self._rtt.record(span.duration_ns)
        return result

    def exchange_many(
        self, checks: Sequence[tuple[tuple[str, int], str, float]],
        trace_id: int = 0,
    ) -> list[tuple[QoSResponse, int]]:
        """Submit many checks at once and wait for all of them.

        All checks sharing a backend enter that channel's send queue in
        one pass and ride the same v2 frame — this is what
        ``POST /qos/batch`` amortizes.  A nonzero ``trace_id`` applies
        to the whole call (one batch, one trace) and yields one
        ``channel.exchange`` span covering every constituent check.
        """
        if self._stop.is_set():
            return [self._dead_result() for _ in checks]
        span = (self._tracer.start(trace_id, "channel.exchange",
                                   "udp_channel", {"n": len(checks)})
                if trace_id else None)
        group = _CallGroup()
        next_id = self._ids.next_id
        exchanges: list[tuple[_BackendChannel, _Exchange]] = []
        per_channel: dict[_BackendChannel, list[_Exchange]] = {}
        for backend, key, cost in checks:
            channel = self._channels[tuple(backend)]
            exchange = _Exchange(QoSRequest(next_id(), key, cost), group,
                                 trace_id)
            exchanges.append((channel, exchange))
            per_channel.setdefault(channel, []).append(exchange)
        for channel, batch in per_channel.items():
            with channel.lock:
                channel.pending.extend(batch)
                self._flush_locked(channel)
        deadline = time.monotonic() + self._wait_budget
        results = [self._await(channel, exchange, deadline)
                   for channel, exchange in exchanges]
        if span is not None:
            self._tracer.finish(
                span,
                defaults=sum(1 for r, _ in results if r.is_default_reply))
            self._rtt.record(span.duration_ns)
        return results

    # ------------------------------------------------------------------ #
    # credit-lease plane transport (any thread)
    # ------------------------------------------------------------------ #

    def send_lease_frame(self, backend: tuple[str, int],
                         payload: bytes) -> None:
        """Fire one pre-encoded lease frame at ``backend``, best-effort.

        Lease acquisition is an optimisation, not a guarantee: a frame
        lost to a full socket buffer is simply dropped (the hotness
        tracker re-asks on the next window) and a dead backend counts a
        send error exactly like the request path.  Unknown backends
        (retired by :meth:`replace_backend`) are ignored — the lease
        dies with its channel.
        """
        channel = self._channels.get(tuple(backend))
        if channel is None or self._stop.is_set():
            return
        with channel.lock:
            try:
                channel.sock.send(payload)  # janus-lint: disable=blocking-under-lock
            except BlockingIOError:
                return      # buffer full: drop, hotness will re-ask
            except OSError:
                channel.stats.send_errors += 1
                return
            channel.stats.frames_sent += 1
        # The reply rides the same socket, but the socket is only read
        # while some exchange waiter holds the recv-leader token.  Under
        # load that is continuous; on a quiet channel nobody would ever
        # collect the grant — so arm two deferred drain pokes (one tick
        # and five ticks out) on the event thread.  A poke that loses
        # the token race is harmless: the active leader drains for us.
        now = time.monotonic()
        tick = self.config.timer_tick
        poke = self._drain_poke(channel)
        self._timer_inbox.append((now + tick, channel, poke))
        self._timer_inbox.append((now + 5 * tick, channel, poke))
        self._wake()

    def _drain_poke(self, channel: _BackendChannel):
        """A deferred callback that drains ``channel`` if nobody else is."""
        def poke() -> None:
            if channel.recv_token.acquire(blocking=False):
                try:
                    self._drain(channel)
                finally:
                    channel.recv_token.release()
        return poke

    def call_later(self, delay: float, fn) -> None:
        """Run ``fn()`` on the event thread after ``delay`` seconds.

        Rides the existing timer wheel: the entry's ``batch`` slot
        carries the callable (``_timer_entry_dead`` keeps it live,
        ``_expire`` invokes it with no lock held).  The lease plane uses
        this for TTL return/renew deadlines so lease bookkeeping never
        needs its own timer thread.
        """
        channel = next(iter(self._channels.values()))
        self._timer_inbox.append((time.monotonic() + delay, channel, fn))
        self._wake()

    def _dead_result(self) -> tuple[QoSResponse, int]:
        response = QoSResponse(self._ids.next_id(),
                               self.config.default_reply,
                               is_default_reply=True)
        return response, self.config.max_retries

    # ------------------------------------------------------------------ #
    # waiting: recv leader + followers (any thread)
    # ------------------------------------------------------------------ #

    def _await(self, channel: _BackendChannel, exchange: _Exchange,
               deadline: float) -> tuple[QoSResponse, int]:
        group = exchange.group
        while True:
            if exchange.done:
                return exchange.response, exchange.attempts
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return self._give_up(channel, exchange)
            if channel.recv_token.acquire(blocking=False):
                try:
                    self._lead(channel, exchange, deadline)
                finally:
                    channel.recv_token.release()
                    self._pass_baton(channel)
                continue
            # Follower: publish the (lazily created) completion event,
            # then re-check everything that may have raced the publish —
            # a completion, a baton pass, or the token freeing up — and
            # only then block.  Dispatchers set flags before notifying,
            # so a wake can never be lost.
            event = group.event
            if event is None:
                event = group.event = threading.Event()
            event.clear()
            if exchange.done:
                return exchange.response, exchange.attempts
            if exchange.baton or not channel.recv_token.locked():
                exchange.baton = False
                continue
            event.wait(min(_FOLLOWER_SLICE, remaining))
            exchange.baton = False
            # Woken either because something in our group completed
            # (checked at loop top) or to inherit the leader token
            # (tried at loop top).

    def _lead(self, channel: _BackendChannel, exchange: _Exchange,
              deadline: float) -> None:
        """Drain response frames until our own exchange resolves.

        The leader dispatches *every* response it reads — its own plus
        any follower's — so under load one thread turns each incoming
        frame into a batch of event wakes.  Timeouts stay with the event
        thread; the slice below only bounds how late we notice that it
        resolved our exchange for us (dead-backend path).
        """
        sock = channel.sock
        while not exchange.done:
            wait = min(_LEADER_SLICE, deadline - time.monotonic())
            if wait <= 0:
                return
            try:
                ready, _, _ = _select.select([sock], [], [], wait)
            except (OSError, ValueError):
                return      # socket closed mid-shutdown
            if ready:
                self._drain(channel)

    def _drain(self, channel: _BackendChannel) -> None:
        """Read every queued datagram, then dispatch under one lock."""
        datagrams: list[bytes] = []
        sock = channel.sock
        while True:
            try:
                datagrams.append(sock.recv(_RECV_BUFFER))
            except BlockingIOError:
                break
            except ConnectionRefusedError:
                continue    # queued ICMP from a dead backend; keep reading
            except OSError:
                break
        if not datagrams:
            return
        lease_messages: list = []
        lease_listener = self.lease_listener
        with channel.lock:
            stats = channel.stats
            inflight = channel.inflight
            for datagram in datagrams:
                try:
                    _, messages = decode_any(datagram)
                except ProtocolError:
                    stats.malformed_datagrams += 1
                    continue
                stats.frames_received += 1
                for message in messages:
                    if not isinstance(message, QoSResponse):
                        if (lease_listener is not None
                                and isinstance(message,
                                               (LeaseGrant, LeaseRevoke))):
                            # Dispatched below, outside the channel lock:
                            # the listener may send (renew) on this very
                            # channel.
                            lease_messages.append(message)
                        else:
                            stats.malformed_datagrams += 1
                        continue
                    exchange = inflight.pop(message.request_id, None)
                    if exchange is None or exchange.done:
                        continue    # stale response from a beaten retry
                    exchange.response = message
                    exchange.done = True
                    stats.responses_matched += 1
                    exchange.group.notify()
        for message in lease_messages:
            lease_listener(message, channel.address)

    def _pass_baton(self, channel: _BackendChannel) -> None:
        """Wake one unresolved waiter so the channel keeps a recv leader."""
        with channel.lock:
            for exchange in channel.inflight.values():
                if not exchange.done and not exchange.baton:
                    exchange.baton = True
                    exchange.group.notify()
                    return

    def _give_up(self, channel: _BackendChannel,
                 exchange: _Exchange) -> tuple[QoSResponse, int]:
        with channel.lock:
            if not exchange.done:
                channel.inflight.pop(exchange.request.request_id, None)
                exchange.response = QoSResponse(
                    exchange.request.request_id, self.config.default_reply,
                    is_default_reply=True)
                exchange.attempts = max(exchange.attempts,
                                        self.config.max_retries)
                exchange.done = True
                channel.stats.default_replies += 1
        return exchange.response, exchange.attempts

    # ------------------------------------------------------------------ #
    # sending (caller must hold channel.lock)
    # ------------------------------------------------------------------ #

    def _flush_locked(self, channel: _BackendChannel) -> None:
        """Send everything pending for one backend, batching per frame.

        A frame carries at most one distinct nonzero trace id (the wire
        format has a single trace-id slot per frame): an exchange traced
        under a *different* id ends the current batch and starts the
        next frame.  Untraced exchanges ride along in either case — the
        trace id annotates the frame, not the entries.
        """
        pending = channel.pending
        stats = channel.stats
        inflight = channel.inflight
        v2 = self.config.wire_protocol == 2
        max_batch = self.config.batch_size if v2 else 1
        while pending:
            batch: list[_Exchange] = []
            size = FRAME_HEADER_BYTES
            frame_tid = 0
            while pending and len(batch) < max_batch:
                exchange = pending[0]
                if exchange.done:
                    pending.popleft()
                    continue
                if batch and size + exchange.size > _FRAME_BYTE_BUDGET:
                    break
                tid = exchange.trace_id
                if tid and frame_tid and tid != frame_tid:
                    break           # second distinct trace id: next frame
                pending.popleft()
                batch.append(exchange)
                size += exchange.size
                if tid and not frame_tid:
                    frame_tid = tid
                    size += TRACE_ID_BYTES
            if not batch:
                return
            if v2:
                payload = encode_request_frame_parts(
                    [(e.request.request_id, e.key_bytes, e.request.cost)
                     for e in batch],
                    trace_id=frame_tid)
                self._batch_fill.record(len(batch))
            else:
                # v1 datagrams have no trace-id slot: the flag is
                # dropped cleanly and the trace degrades to the
                # client/router spans (documented v2→v1 interop).
                payload = batch[0].request.encode()
            try:
                # Group-commit by design: the send happens under the
                # channel lock so concurrent submitters coalesce into one
                # frame, and the socket is *non-blocking* — a full buffer
                # raises BlockingIOError and defers to a timer re-flush
                # instead of stalling the lock holders.
                channel.sock.send(payload)  # janus-lint: disable=blocking-under-lock
            except BlockingIOError:
                # Socket buffer full: requeue and let a timer re-flush.
                # This marker's deadline is sooner than anything already
                # armed, so kick the event thread out of its sleep.
                self._timer_inbox.append(
                    (time.monotonic() + self.config.timer_tick,
                     channel, None))
                pending.extendleft(reversed(batch))
                self._wake()
                return
            except OSError:
                # Backend unreachable (e.g. ECONNREFUSED on a connected
                # UDP socket).  The attempt still counts: the timer wheel
                # will retry and eventually issue the default reply,
                # exactly like a lost datagram on the seed path.
                stats.send_errors += 1
            stats.frames_sent += 1
            stats.messages_sent += len(batch)
            for exchange in batch:
                exchange.attempts += 1
                if exchange.attempts > 1:
                    stats.retries += 1
                inflight[exchange.request.request_id] = exchange
            # One wheel entry per frame, not per request: every exchange
            # in the frame shares the send instant, hence the deadline.
            self._timer_inbox.append(
                (time.monotonic() + self.config.udp_timeout, channel, batch))

    # ------------------------------------------------------------------ #
    # event loop (single thread): timers, retries, default replies
    # ------------------------------------------------------------------ #

    def _wake(self) -> None:
        try:
            # The wake socketpair is setblocking(False) at construction:
            # this send either succeeds instantly or raises
            # BlockingIOError (a wakeup is already pending) — it can
            # never stall a lock holder, so chains reaching it are safe.
            # janus-lint: disable=transitive-blocking-under-lock
            self._wake_w.send(b"\0")
        except (BlockingIOError, OSError):
            pass        # a wakeup is already pending, or we are shutting down

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._selector.select(self._select_timeout()):
                self._drain_wakeups()
            self.timer_wakeups += 1
            self._arm_timers()
            self._expire(time.monotonic())
        self._fail_all_pending()

    def _select_timeout(self) -> float:
        """Sleep until the earliest armed deadline, not every tick.

        Under steady traffic the wheel always holds one live entry per
        in-flight frame, but those deadlines sit a full ``udp_timeout``
        out — waking every ``timer_tick`` to look at them would steal
        the GIL from the request path hundreds of times per second for
        nothing, and on an idle service those stolen slices land
        straight in the request-latency tail.  Urgent work never waits
        on this sleep: senders kick the wakeup pipe when they arm a
        sooner-than-armed deadline, and ``stop()`` does the same.  The
        sleep is floored at ``timer_tick`` (never busy-spin on an
        imminent deadline) and capped at 1 s as a belt-and-braces bound
        should a deadline ever wrap past one wheel revolution.
        """
        deadline = self._wheel.peek()
        if self._timer_inbox:
            try:
                head = self._timer_inbox[0][0]
            except IndexError:      # raced a concurrent append/pop
                head = None
            if head is not None and (deadline is None or head < deadline):
                deadline = head
        if deadline is None:
            return _IDLE_SELECT_TIMEOUT
        return min(1.0, max(self.config.timer_tick,
                            deadline - time.monotonic()))

    def _drain_wakeups(self) -> None:
        try:
            while self._wake_r.recv(4096):
                pass
        except (BlockingIOError, OSError):
            pass

    def _arm_timers(self) -> None:
        inbox = self._timer_inbox
        schedule = self._wheel.schedule
        while inbox:
            deadline, channel, exchange = inbox.popleft()
            schedule(deadline, (channel, exchange))

    def _expire(self, now: float) -> None:
        for channel, batch in self._wheel.advance(now):
            if callable(batch):
                # Deferred callback (lease TTL): runs on the event
                # thread with no lock held, so it may freely send.
                batch()
                continue
            with channel.lock:
                if batch is None:               # deferred re-flush marker
                    self._flush_locked(channel)
                    continue
                retry = False
                for exchange in batch:
                    if exchange.done:
                        channel.inflight.pop(
                            exchange.request.request_id, None)
                    elif exchange.attempts >= self.config.max_retries:
                        channel.inflight.pop(
                            exchange.request.request_id, None)
                        self._complete_default(channel, exchange)
                    else:
                        channel.pending.append(exchange)
                        retry = True
                if retry:
                    self._flush_locked(channel)

    def _complete_default(self, channel: _BackendChannel,
                          exchange: _Exchange) -> None:
        """Caller must hold ``channel.lock``."""
        exchange.response = QoSResponse(
            exchange.request.request_id, self.config.default_reply,
            is_default_reply=True)
        exchange.done = True
        channel.stats.default_replies += 1
        recorder = self._tracer.recorder
        if recorder is not None:
            # Default replies are exactly the requests worth a forensic
            # look, so they ring the flight recorder regardless of
            # sampling.
            recorder.note("default_reply",
                          backend=f"{channel.address[0]}:"
                                  f"{channel.address[1]}",
                          key=exchange.request.key,
                          attempts=exchange.attempts,
                          trace_id=exchange.trace_id)
        exchange.group.notify()

    def _fail_all_pending(self) -> None:
        """Unblock every waiter on shutdown with a default reply."""
        for channel in self._channels.values():
            with channel.lock:
                leftovers = list(channel.pending)
                leftovers.extend(channel.inflight.values())
                channel.pending.clear()
                channel.inflight.clear()
                for exchange in leftovers:
                    if not exchange.done:
                        exchange.attempts = max(exchange.attempts,
                                                self.config.max_retries)
                        self._complete_default(channel, exchange)
