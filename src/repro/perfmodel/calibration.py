"""Calibrated service-time constants for the AWS testbed substitute.

These constants are shared by the discrete-event simulator
(:mod:`repro.server`) and the analytic capacity model
(:mod:`repro.perfmodel.capacity`), so the two stay mutually consistent; the
cross-validation test suite compares them directly.

Model structure
---------------
Per-request CPU on a node splits into an **on-path burst** (spent on the
worker/PHP thread while the request waits — determines latency) and an
**async overhead** (kernel UDP/TCP stack, interrupts, GC — real CPU that
competes for cores but is off the response path).  The split is what
reconciles two paper facts that otherwise conflict: a QoS server sustains
only ~2.8 k requests/s *per vCPU* (Figs. 10–12, i.e. ~350 µs of CPU per
request), yet router↔server UDP exchanges usually finish within the 100 µs
timeout on the first attempt (§III-B).

Fitted operating points:

========================================  =================================
Paper observation                          Constant(s) responsible
========================================  =================================
DNS-LB average round trip ~1140 µs,        CLIENT_LINK one-way (~190 µs
P90 ~1410 µs (Fig. 5)                      mean) + RR on-path CPU + UDP leg
Gateway LB adds ~500 µs (Fig. 5)           lb_proc_time (two passes) + one
                                           extra TCP connection + 2 hops
UDP leg usually first-try < 100 µs         INTERNAL_LINK (~20 µs one-way)
(§III-B)                                   + qos_cpu_decode/serial/respond
QoS server ~11 k rps on c3.xlarge,         qos_cpu_* + qos_cpu_overhead +
>100 k rps on 10×c3.xlarge (abstract,      node_background_cores
Fig. 11a), ~95 k on one c3.8xlarge
(Fig. 10a)
Router ~10 k rps on c3.xlarge, plateau     rr_cpu_on_path + rr_cpu_overhead
>8 routers vs one c3.8xlarge QoS server
(Figs. 7a/8a)
Vertical slightly above horizontal at      node_background_cores (per-node
equal vCPUs for the QoS server (Fig. 12)   OS/JVM tax hits small nodes
                                           relatively harder)
CPU under-utilization on large QoS         qos_cpu_serial lock wait blocks
nodes (Fig. 10b)                           worker threads off-CPU
App P90 27 ms without QoS, 30 ms with;     app_* constants
rejects throttled in ~3 ms (Fig. 13b)
========================================  =================================

All times are seconds.  The absolute values are *plausible*, not measured —
the reproduction targets the shape of every figure, not AWS's exact
microseconds (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Calibration", "DEFAULT_CALIBRATION"]


@dataclass(frozen=True, slots=True)
class Calibration:
    """Every tunable of the performance model, in one frozen bundle."""

    # --- request router (PHP 7 on Apache 2.4, §III-B) --------------------
    #: On-path CPU per QoS request on a router node (Apache dispatch + PHP
    #: interpretation + response render).  Split 60/40 around the UDP wait.
    rr_cpu_on_path: float = 260e-6
    #: Async per-request CPU (kernel TCP stack, Apache bookkeeping).
    rr_cpu_overhead: float = 89e-6
    #: Serialized accept/dispatch section per request (listen socket).
    rr_accept_serial: float = 3e-6
    #: Maximum concurrent PHP processes per router node (mpm_prefork cap).
    rr_process_pool: int = 150

    # --- QoS server (Java on OpenJDK 1.8, §III-C) -------------------------
    #: Worker-thread burst before the lock (datagram decode).
    qos_cpu_decode: float = 14e-6
    #: Critical section under the synchronized local-QoS-table lock
    #: (map lookup + leaky-bucket update).
    qos_cpu_serial: float = 8e-6
    #: Worker-thread burst after the lock (response encode + sendto).
    qos_cpu_respond: float = 12e-6
    #: Listener-thread CPU per packet (recv + FIFO push).
    qos_cpu_listener: float = 6e-6
    #: Async per-request CPU (kernel UDP stack, softirq, JVM GC) — the bulk
    #: of the ~300 µs/request that caps node throughput.
    qos_cpu_overhead: float = 320e-6
    #: Extra latency for the first-ever request of a QoS key: one database
    #: round trip to fetch the rule (§II-D lazy fetch).
    qos_rule_fetch_time: float = 600e-6

    # --- per-node fixed overhead ------------------------------------------
    #: vCPU-equivalents consumed by OS + JVM/Apache background work per
    #: node.  This is why N small nodes trail one big node of equal total
    #: vCPUs (Fig. 12).
    node_background_cores: float = 0.27

    # --- load balancer -----------------------------------------------------
    #: ELB per-pass processing time (applied on request and response pass).
    lb_proc_time: float = 200e-6

    # --- service-time noise -------------------------------------------------
    #: Log-normal sigma multiplying every CPU burst (scheduler jitter etc.).
    service_sigma: float = 0.18

    # --- database ------------------------------------------------------------
    #: Server-side execution time of a single-row PK query or update.
    db_query_time: float = 150e-6

    # --- photo-sharing application (§V-D) -------------------------------------
    #: App-server CPU per page (PHP render).
    app_cpu_time: float = 2.0e-3
    #: Memcached session-lookup round trip + service.
    app_memcached_time: float = 1.2e-3
    #: MySQL latest-N-images query round trip + service (the dominant term
    #: behind the 27 ms no-QoS P90).
    app_mysql_time: float = 16.0e-3
    #: Log-normal sigma on the app's stage times (bigger than the Janus
    #: jitter: a real web app's latency spread).
    app_sigma: float = 0.30
    #: CPU to emit the throttling 403 (the cheap rejection path; the paper
    #: observes rejects completing in ~3 ms end to end).
    app_throttle_cpu: float = 100e-6

    # -- derived -----------------------------------------------------------

    @property
    def qos_cpu_per_request(self) -> float:
        """Total CPU one admission decision costs a QoS server node."""
        return (self.qos_cpu_decode + self.qos_cpu_serial + self.qos_cpu_respond
                + self.qos_cpu_listener + self.qos_cpu_overhead)

    @property
    def rr_cpu_per_request(self) -> float:
        """Total CPU one QoS request costs a router node."""
        return self.rr_cpu_on_path + self.rr_cpu_overhead + self.rr_accept_serial


DEFAULT_CALIBRATION = Calibration()
