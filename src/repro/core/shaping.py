"""Traffic shaping on top of the leaky bucket (extension).

The related-work section recalls the leaky bucket's original use in
*traffic shaping* — delaying traffic to conform to a rate instead of
dropping it.  Janus proper only polices (admit/deny), but a generic QoS
library should offer both: :class:`TrafficShaper` turns a rule into a
"wait this long, then proceed" primitive, useful on the client side to
pre-pace requests so they are never rejected.

The shaper uses virtual scheduling: a monotone ``next_free`` timestamp
advances by ``cost / rate`` per admitted unit, with the bucket's burst
capacity allowing ``capacity`` units to pass back-to-back after idle
periods.  This is the classic token-bucket shaper (GCRA-equivalent).
"""

from __future__ import annotations

import threading

from repro.core.clock import MONOTONIC, Clock
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule

__all__ = ["TrafficShaper"]


class TrafficShaper:
    """Compute pacing delays that conform traffic to ``rate``/``capacity``."""

    def __init__(self, rate: float, capacity: float, *,
                 clock: Clock = MONOTONIC):
        if rate <= 0:
            raise ConfigurationError(f"rate must be > 0, got {rate}")
        if capacity < 1:
            raise ConfigurationError(f"capacity must be >= 1, got {capacity}")
        self.rate = rate
        self.capacity = capacity
        self._clock = clock
        # GCRA state: the theoretical arrival time of the next unit.
        self._tat = clock()
        self._lock = threading.Lock()
        self.delayed = 0
        self.passed_immediately = 0

    @classmethod
    def from_rule(cls, rule: QoSRule, *, clock: Clock = MONOTONIC) -> "TrafficShaper":
        if rule.refill_rate <= 0:
            raise ConfigurationError(
                f"rule {rule.key!r} has zero rate; nothing to shape to")
        return cls(rule.refill_rate, max(1.0, rule.capacity), clock=clock)

    def reserve(self, cost: float = 1.0) -> float:
        """Reserve ``cost`` units; returns the delay to wait before sending.

        Zero when the burst allowance covers the unit.  The reservation is
        unconditional (shapers delay, they never deny), so callers must
        sleep the returned amount to conform.
        """
        if cost <= 0:
            raise ConfigurationError(f"cost must be > 0, got {cost}")
        now = self._clock()
        increment = cost / self.rate
        # Burst of exactly `capacity` unit-cost sends after an idle period
        # (GCRA: burst = 1 + tolerance/increment).
        tolerance = (self.capacity - 1.0) / self.rate
        with self._lock:
            eligible = self._tat - tolerance     # earliest conforming send
            if now >= eligible:
                # Conforming now: burst allowance covers it.
                self._tat = max(self._tat, now) + increment
                self.passed_immediately += 1
                return 0.0
            delay = eligible - now
            self._tat += increment
            self.delayed += 1
            return delay

    def would_delay(self, cost: float = 1.0) -> float:
        """The delay :meth:`reserve` would return, without reserving."""
        if cost <= 0:
            raise ConfigurationError(f"cost must be > 0, got {cost}")
        now = self._clock()
        with self._lock:
            tolerance = (self.capacity - 1.0) / self.rate
            return max(0.0, (self._tat - tolerance) - now)
