"""Chaos testing: availability under repeated component failures."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient


def genuine_fraction(clients, t0: float, t1: float) -> float:
    window = [r for c in clients for r in c.log.records
              if t0 <= r.finished_at < t1]
    if not window:
        return 0.0
    return sum(1 for r in window if not r.is_default_reply) / len(window)


class TestRollingFailures:
    def test_ha_cluster_survives_rolling_master_kills(self):
        """Kill every QoS master in sequence; with HA pairs and a short
        DNS TTL, genuine-decision availability stays high throughout."""
        config = JanusConfig(
            topology=ClusterTopology(n_routers=2, n_qos_servers=3,
                                     qos_ha=True),
            server=ServerConfig(workers=4, ha_replication_interval=0.3),
            dns_ttl=0.5)
        cluster = SimJanusCluster(config, seed=111)
        keys = uuid_keys(90, seed=111)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
        cluster.prewarm()
        clients = [ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 7))
                   for i in range(5)]
        cluster.sim.run(until=2.0)
        for i in range(3):
            cluster.ha_pairs[i].fail_master()
            cluster.sim.run(until=2.0 + (i + 1) * 2.0)
        cluster.sim.run(until=10.5)
        # All three promoted slaves now serve.
        for i in range(3):
            assert cluster.active_qos_server(i).name.endswith("slave")
            assert cluster.active_qos_server(i).decisions > 0
        # Steady state after the carnage: full genuine availability.
        assert genuine_fraction(clients, 9.0, 10.0) == pytest.approx(1.0)
        # Across the whole chaos window, availability stayed high (each
        # failover costs at most one TTL of default replies per partition).
        assert genuine_fraction(clients, 2.0, 8.0) > 0.9

    def test_simultaneous_router_and_qos_failure(self):
        config = JanusConfig(
            topology=ClusterTopology(n_routers=3, n_qos_servers=2,
                                     qos_ha=True),
            server=ServerConfig(workers=4, ha_replication_interval=0.3),
            dns_ttl=0.5)
        cluster = SimJanusCluster(config, seed=112)
        keys = uuid_keys(60, seed=112)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
        cluster.prewarm()
        clients = [ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 3))
                   for i in range(4)]
        cluster.sim.run(until=1.5)
        cluster.routers[0].fail()
        cluster.ha_pairs[1].fail_master()
        cluster.sim.run(until=5.0)
        assert genuine_fraction(clients, 4.0, 5.0) == pytest.approx(1.0)

    def test_quota_state_survives_failover(self):
        """Credits consumed before a failover stay consumed after it —
        no free quota from crashing a server (within replication lag)."""
        config = JanusConfig(
            topology=ClusterTopology(n_routers=1, n_qos_servers=1,
                                     qos_ha=True),
            server=ServerConfig(workers=4, ha_replication_interval=0.2),
            dns_ttl=0.3)
        cluster = SimJanusCluster(config, seed=113)
        cluster.rules.put_rule(
            QoSRule("victim", refill_rate=0.0, capacity=100.0))
        cluster.prewarm()
        client = ClosedLoopClient(cluster, "c0", lambda: "victim",
                                  n_requests=60)
        cluster.sim.run(until=3.0)
        assert client.log.n_allowed == pytest.approx(60, abs=2)
        cluster.ha_pairs[0].fail_master()
        cluster.sim.run(until=4.0)
        client2 = ClosedLoopClient(cluster, "c1", lambda: "victim",
                                   n_requests=80)
        cluster.sim.run(until=8.0)
        # ~40 credits remained; replication lag may return a handful,
        # duplicate retry decisions may eat a handful.
        assert client2.log.n_allowed <= 50
        assert client2.log.n_allowed >= 28


class TestDatabaseChaos:
    def test_db_failover_mid_traffic_with_cold_keys(self):
        """Keys first seen *after* a DB failover still resolve their rules
        (reads hit the promoted standby)."""
        config = JanusConfig(topology=ClusterTopology(
            n_routers=2, n_qos_servers=2))
        cluster = SimJanusCluster(config, seed=114)
        warm = uuid_keys(20, seed=114)
        cold = [f"cold-{i}" for i in range(20)]
        for k in warm + cold:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
        client = ClosedLoopClient(cluster, "c0", KeyCycle(warm),
                                  n_requests=40)
        cluster.sim.run(until=2.0)
        cluster.db.fail_master()
        cold_client = ClosedLoopClient(cluster, "c1", KeyCycle(cold),
                                       n_requests=40)
        cluster.sim.run(until=5.0)
        assert cold_client.log.n_allowed == 40
