"""Tests for the simulated request router (§II-B, §III-B)."""

from __future__ import annotations

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import RouterConfig
from repro.core.hashing import crc32_router
from repro.core.rules import QoSRule
from repro.server.qos_server import SimQoSServer
from repro.server.router import SimRequestRouter
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry
from repro.workload.keygen import uuid_keys


def build(n_servers=2, udp_loss=0.0, router_config=None, seed=11):
    sim = Simulation()
    rng = RngRegistry(seed)
    net = Network(sim, rng, udp_loss=udp_loss)
    source = InMemoryRuleSource(
        {k: QoSRule(k, 1e6, 1e6) for k in uuid_keys(50, seed)})
    servers = [SimQoSServer(sim, net, f"qos-{i}", "c3.xlarge", source,
                            rng=rng, warm=True)
               for i in range(n_servers)]
    router = SimRequestRouter(
        sim, net, "rr-0", "c3.xlarge", [s.name for s in servers],
        config=router_config, rng=rng)
    return sim, net, router, servers, list(source._rules)


class TestRouting:
    def test_route_matches_crc32(self):
        _, _, router, servers, keys = build(n_servers=3)
        for key in keys:
            expected = f"qos-{crc32_router(key, 3)}"
            assert router.route(key) == expected

    def test_end_to_end_decision(self):
        sim, net, router, servers, keys = build()
        results = []

        def client():
            response = yield from router.handle(keys[0])
            results.append(response)

        sim.spawn(client(), "c")
        sim.run(until=0.1)
        assert len(results) == 1
        assert results[0].allowed
        assert not results[0].is_default_reply
        assert router.requests_handled == 1

    def test_decisions_land_on_hashed_server(self):
        sim, net, router, servers, keys = build(n_servers=2)

        def client():
            for key in keys[:20]:
                yield from router.handle(key)

        sim.spawn(client(), "c")
        sim.run(until=0.5)
        expected = [sum(1 for k in keys[:20] if crc32_router(k, 2) == i)
                    for i in range(2)]
        assert [s.decisions for s in servers] == expected

    def test_empty_backends_rejected(self, sim, net, rng):
        with pytest.raises(ValueError):
            SimRequestRouter(sim, net, "rr", "c3.xlarge", [], rng=rng)


class TestRetry:
    def test_retries_on_loss_eventually_succeed(self):
        # 40% datagram loss: per attempt both directions must survive
        # (P ~ 0.36), so most requests retry yet ~90% succeed within 5.
        sim, net, router, servers, keys = build(
            udp_loss=0.4,
            router_config=RouterConfig(udp_timeout=2e-3, max_retries=5))
        results = []

        def client():
            for key in keys[:30]:
                response = yield from router.handle(key)
                results.append(response)

        sim.spawn(client(), "c")
        sim.run(until=2.0)
        assert len(results) == 30
        assert router.retries > 5
        genuine = [r for r in results if not r.is_default_reply]
        assert len(genuine) > 20
        assert all(r.allowed for r in genuine)

    def test_default_reply_when_server_gone(self):
        sim, net, router, servers, keys = build(
            router_config=RouterConfig(udp_timeout=1e-3, max_retries=3,
                                       default_reply=True))
        for s in servers:
            s.fail()
        results = []

        def client():
            response = yield from router.handle(keys[0])
            results.append(response)

        sim.spawn(client(), "c")
        sim.run(until=1.0)
        assert results[0].is_default_reply
        assert results[0].allowed          # fail-open policy
        assert router.default_replies == 1

    def test_default_reply_fail_closed(self):
        sim, net, router, servers, keys = build(
            router_config=RouterConfig(udp_timeout=1e-3, max_retries=2,
                                       default_reply=False))
        for s in servers:
            s.fail()
        results = []

        def client():
            results.append((yield from router.handle(keys[0])))

        sim.spawn(client(), "c")
        sim.run(until=1.0)
        assert not results[0].allowed

    def test_worst_case_wait_bounded(self):
        config = RouterConfig(udp_timeout=1e-3, max_retries=4)
        sim, net, router, servers, keys = build(router_config=config)
        for s in servers:
            s.fail()
        stamps = []

        def client():
            t0 = sim.now
            yield from router.handle(keys[0])
            stamps.append(sim.now - t0)

        sim.spawn(client(), "c")
        sim.run(until=1.0)
        # UDP wait <= retries x timeout, plus the router's CPU bursts.
        assert stamps[0] < config.worst_case_wait + 2e-3


class TestResolveIndirection:
    def test_resolver_redirects_after_failover(self):
        """Routers address servers by stable name; swapping the resolution
        target must reroute traffic without touching the hash map."""
        sim = Simulation()
        rng = RngRegistry(12)
        net = Network(sim, rng, udp_loss=0.0)
        source = InMemoryRuleSource({"k": QoSRule("k", 1e6, 1e6)})
        primary = SimQoSServer(sim, net, "primary", "c3.xlarge", source,
                               rng=rng, warm=True)
        standby = SimQoSServer(sim, net, "standby", "c3.xlarge", source,
                               rng=rng, warm=True)
        target = {"addr": "primary"}
        router = SimRequestRouter(
            sim, net, "rr-0", "c3.xlarge", ["service-name"],
            rng=rng, resolve=lambda name: target["addr"])
        done = []

        def client():
            yield from router.handle("k")
            target["addr"] = "standby"
            yield from router.handle("k")
            done.append(True)

        sim.spawn(client(), "c")
        sim.run(until=0.5)
        assert done
        assert primary.decisions == 1
        assert standby.decisions == 1
