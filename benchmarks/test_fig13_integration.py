"""Bench: regenerate Fig. 13 (photo-sharing application integration)."""

from __future__ import annotations

import pytest

from repro.experiments import fig13_integration
from repro.experiments.scale import current_scale


def test_fig13_integration(benchmark, report_sink):
    scale = current_scale()
    result = benchmark.pedantic(
        fig13_integration.run, args=(scale,), rounds=1, iterations=1)

    # Fig. 13a upper pair: burst at 130 rps, steady state 100 + ~30 rejected.
    accepted, rejected = result.custom.steady_state_rates(tail=8.0)
    assert accepted == pytest.approx(100.0, rel=0.1)
    assert rejected == pytest.approx(30.0, rel=0.5)
    assert result.custom.log.accepted.rate_at(3.0) > 110.0

    # Fig. 13a lower pair: guest bucket drains within seconds -> 10 rps.
    accepted_d, rejected_d = result.default.steady_state_rates(tail=8.0)
    assert accepted_d == pytest.approx(10.0, abs=2.0)
    assert rejected_d > 100.0

    # Fig. 13b: small overhead on accepted, ~3 ms rejection path.
    base = result.no_qos.accepted_summary()
    with_qos = result.custom.accepted_summary()
    assert 0 < with_qos.p90 - base.p90 < 5e-3
    assert result.default.rejected_summary().p90 < 3.5e-3

    report_sink(fig13_integration.report(result))
