"""Metrics core: striped counters, power-of-two histograms, one registry.

The observability plane's recording primitives are designed for the same
hot paths PR 1–3 optimized, so they must never add a lock acquisition to
a request:

- :class:`Counter` — thread-striped: each recording thread owns a private
  cell (registered once, under a lock, on the thread's first increment)
  and bumps it with a plain ``+=``; readers sum the cells lazily.  This
  generalizes the router's old ad-hoc ``_HandlerCounters`` blocks.
- :class:`Gauge` — a last-write-wins float, or a callback evaluated at
  scrape time (the right shape for queue depths and table sizes, which
  are cheaper to *read* on demand than to track on every mutation).
- :class:`Histogram` — fixed power-of-two buckets over non-negative
  integer values (HdrHistogram's coarsest configuration): the record
  path is ``value.bit_length()`` into a per-thread list of 65 ints, no
  lock, no allocation, no floating point.  Latencies are recorded in
  integer nanoseconds and exported in seconds via ``scale``.
- :class:`MetricsRegistry` — owns every instrument of one process (or
  daemon), dedupes metric families by name, and renders the whole set in
  the Prometheus text exposition format (``text/plain; version=0.0.4``)
  with correct ``# HELP``/``# TYPE`` lines and label escaping.

Counters and gauges may wrap a ``fn`` callback instead of accumulating,
which is how pre-existing counter blocks (channel stats, admission
stripes) are exported without being rewritten or double-counted.

All instruments are also constructible bare (no registry) for hot-path
blocks that are exported through a callback elsewhere.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Optional

from repro.core.errors import ConfigurationError

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "register_snapshot_gauges", "merge_renderings",
           "escape_label_value", "escape_help"]

#: Histogram buckets: bucket ``i`` counts values whose ``bit_length()`` is
#: ``i``, i.e. bucket 0 holds exactly 0 and bucket i>=1 holds
#: ``[2**(i-1), 2**i - 1]``; one extra overflow bucket tops the range.
_N_BUCKETS = 64


def escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` line per the exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _label_suffix(labels: "tuple[tuple[str, str], ...]",
                  extra: "tuple[tuple[str, str], ...]" = ()) -> str:
    pairs = labels + extra
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{escape_label_value(str(v))}"'
                     for k, v in pairs)
    return "{" + inner + "}"


class _Cell:
    """One thread's private counter cell."""

    __slots__ = ("n",)

    def __init__(self) -> None:
        self.n = 0


class Counter:
    """Monotonic counter with a lock-free, thread-striped record path.

    ``inc`` touches only the calling thread's private cell (plain ``+=``
    on an int slot, safe because no other thread ever writes that cell);
    the cell list is guarded by a lock taken once per thread, at
    registration.  A ``fn`` counter instead proxies a callable at read
    time and rejects ``inc`` — used to export counters that already
    exist elsewhere.
    """

    __slots__ = ("name", "labels", "_fn", "_local", "_cells", "_cells_lock")

    def __init__(self, name: str = "", *,
                 fn: Optional[Callable[[], float]] = None,
                 labels: "tuple[tuple[str, str], ...]" = ()):
        self.name = name
        self.labels = labels
        self._fn = fn
        self._local = threading.local()
        self._cells: list[_Cell] = []
        self._cells_lock = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"counter {self.name!r} is callback-backed; cannot inc()")
        try:
            cell = self._local.cell
        except AttributeError:
            cell = _Cell()
            with self._cells_lock:
                self._cells.append(cell)
            self._local.cell = cell
        cell.n += n

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return sum(cell.n for cell in self._cells)

    def render(self, family_name: str) -> Iterable[str]:
        yield f"{family_name}{_label_suffix(self.labels)} {_num(self.value)}"


class Gauge:
    """A point-in-time value: set directly or computed by ``fn`` at read.

    ``set``/``inc_by`` are last-write-wins without a lock — gauges are
    either single-writer or scrape-time callbacks here, and a torn read
    of a float under the GIL is not possible.
    """

    __slots__ = ("name", "labels", "_fn", "_value")

    def __init__(self, name: str = "", *,
                 fn: Optional[Callable[[], float]] = None,
                 labels: "tuple[tuple[str, str], ...]" = ()):
        self.name = name
        self.labels = labels
        self._fn = fn
        self._value = 0.0

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed; cannot set()")
        self._value = value

    def inc_by(self, delta: float) -> None:
        if self._fn is not None:
            raise ConfigurationError(
                f"gauge {self.name!r} is callback-backed; cannot inc_by()")
        self._value += delta

    @property
    def value(self) -> float:
        if self._fn is not None:
            return self._fn()
        return self._value

    def render(self, family_name: str) -> Iterable[str]:
        yield f"{family_name}{_label_suffix(self.labels)} {_num(self.value)}"


class _HistCell:
    """One thread's private histogram stripe."""

    __slots__ = ("counts", "n", "total")

    def __init__(self) -> None:
        self.counts = [0] * (_N_BUCKETS + 1)
        self.n = 0
        self.total = 0


class Histogram:
    """Fixed power-of-two bucket histogram with a lock-free record path.

    Values must be non-negative numbers; they are truncated to int and
    bucketed by ``bit_length()`` — bucket upper bounds are ``2**i - 1``
    in recorded units.  ``scale`` converts recorded units to the exported
    unit (e.g. ``1e-9`` for nanoseconds recorded, seconds exported).
    The whole record path is: one ``try/except``-free attribute load, an
    int truncation, a ``bit_length`` and two list-slot increments in the
    calling thread's private stripe.
    """

    __slots__ = ("name", "labels", "scale", "_local", "_cells",
                 "_cells_lock")

    def __init__(self, name: str = "", *, scale: float = 1.0,
                 labels: "tuple[tuple[str, str], ...]" = ()):
        if scale <= 0:
            raise ConfigurationError(f"scale must be > 0, got {scale}")
        self.name = name
        self.labels = labels
        self.scale = scale
        self._local = threading.local()
        self._cells: list[_HistCell] = []
        self._cells_lock = threading.Lock()

    def _cell(self) -> _HistCell:
        try:
            return self._local.cell
        except AttributeError:
            cell = _HistCell()
            with self._cells_lock:
                self._cells.append(cell)
            self._local.cell = cell
            return cell

    def record(self, value) -> None:
        v = int(value)
        if v < 0:
            v = 0
        cell = self._cell()
        index = v.bit_length()
        if index > _N_BUCKETS:
            index = _N_BUCKETS
        cell.counts[index] += 1
        cell.n += 1
        cell.total += v

    def snapshot(self) -> "tuple[list[int], int, int]":
        """Merged ``(bucket_counts, count, sum)`` across every stripe."""
        counts = [0] * (_N_BUCKETS + 1)
        n = 0
        total = 0
        for cell in self._cells:
            n += cell.n
            total += cell.total
            cell_counts = cell.counts
            for i in range(_N_BUCKETS + 1):
                counts[i] += cell_counts[i]
        return counts, n, total

    @property
    def count(self) -> int:
        return sum(cell.n for cell in self._cells)

    @property
    def sum(self) -> float:
        return sum(cell.total for cell in self._cells) * self.scale

    def percentile(self, pct: float) -> float:
        """Bucket-resolution quantile estimate, in exported units."""
        counts, n, _ = self.snapshot()
        if n == 0:
            return 0.0
        target = max(1, int(n * pct / 100.0 + 0.5))
        cumulative = 0
        for i, c in enumerate(counts):
            cumulative += c
            if cumulative >= target:
                if i == 0:
                    return 0.0
                # geometric midpoint of [2**(i-1), 2**i)
                return (2.0 ** (i - 0.5)) * self.scale
        return (2.0 ** _N_BUCKETS) * self.scale

    def render(self, family_name: str) -> Iterable[str]:
        counts, n, total = self.snapshot()
        cumulative = 0
        emitted = 0
        for i, c in enumerate(counts):
            cumulative += c
            if c == 0 and 0 < i < _N_BUCKETS:
                continue        # keep the exposition compact: first bucket,
                                # non-empty buckets, and +Inf always appear
            bound = 0.0 if i == 0 else (2.0 ** i - 1.0) * self.scale
            yield (f"{family_name}_bucket"
                   f"{_label_suffix(self.labels, (('le', _num(bound)),))}"
                   f" {cumulative}")
            emitted += 1
        yield (f"{family_name}_bucket"
               f"{_label_suffix(self.labels, (('le', '+Inf'),))} {n}")
        yield (f"{family_name}_sum{_label_suffix(self.labels)}"
               f" {_num(total * self.scale)}")
        yield f"{family_name}_count{_label_suffix(self.labels)} {n}"


def _num(value: float) -> str:
    """Render a sample value: integers without a trailing ``.0``."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer() \
            and abs(value) < 2**53:
        return str(int(value))
    return repr(value)


_PROM_TYPES = {"counter": "counter", "gauge": "gauge",
               "histogram": "histogram"}


class _Family:
    __slots__ = ("name", "kind", "help", "children")

    def __init__(self, name: str, kind: str, help_text: str):
        self.name = name
        self.kind = kind
        self.help = help_text
        self.children: dict = {}


class MetricsRegistry:
    """One process's (or daemon's) metric families, renderable as text.

    ``counter``/``gauge``/``histogram`` create-or-fetch an instrument for
    one label set; requesting an existing ``(name, labels)`` pair returns
    the same instrument, and re-using a family name with a different kind
    raises.  ``render()`` produces the Prometheus text exposition —
    families sorted by name, one ``# HELP``/``# TYPE`` pair each,
    terminated by a newline.
    """

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #

    def _instrument(self, kind: str, cls, name: str, help_text: str,
                    labels: dict, **kwargs):
        if not name or not name[0].isalpha():
            raise ConfigurationError(f"bad metric name {name!r}")
        label_items = tuple(sorted((str(k), str(v))
                                   for k, v in labels.items()))
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help_text)
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigurationError(
                    f"metric {name!r} already registered as {family.kind}")
            child = family.children.get(label_items)
            if child is None:
                child = cls(name, labels=label_items, **kwargs)
                family.children[label_items] = child
            return child

    def counter(self, name: str, help_text: str = "", *,
                fn: Optional[Callable[[], float]] = None,
                **labels) -> Counter:
        return self._instrument("counter", Counter, name, help_text,
                                labels, fn=fn)

    def gauge(self, name: str, help_text: str = "", *,
              fn: Optional[Callable[[], float]] = None,
              **labels) -> Gauge:
        return self._instrument("gauge", Gauge, name, help_text,
                                labels, fn=fn)

    def histogram(self, name: str, help_text: str = "", *,
                  scale: float = 1.0, **labels) -> Histogram:
        return self._instrument("histogram", Histogram, name, help_text,
                                labels, scale=scale)

    # ------------------------------------------------------------------ #

    def families(self) -> "list[str]":
        with self._lock:
            return sorted(self._families)

    def render(self) -> str:
        """The full Prometheus text exposition, newline-terminated."""
        lines: list[str] = []
        with self._lock:
            families = [self._families[name]
                        for name in sorted(self._families)]
            snapshot = [(f, list(f.children.values())) for f in families]
        for family, children in snapshot:
            if family.help:
                lines.append(f"# HELP {family.name} "
                             f"{escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {_PROM_TYPES[family.kind]}")
            for child in children:
                lines.extend(child.render(family.name))
        return "\n".join(lines) + "\n"


def merge_renderings(texts: Iterable[str]) -> str:
    """Merge several Prometheus text expositions into one conformant one.

    Naively concatenating per-process renderings repeats ``# HELP`` /
    ``# TYPE`` headers per family, which strict scrapers reject.  This
    regroups: every sample line is filed under the family its preceding
    header block declared, headers are emitted once per family (first
    writer wins), and families come out sorted by name — the same shape
    one :class:`MetricsRegistry` would have rendered had all instruments
    lived in one process.  Label sets must disambiguate the sources
    (every daemon registers with a ``server``/``router`` label, so they
    do); duplicate series are kept verbatim rather than summed.
    """
    families: dict[str, list] = {}      # name -> [help_line, type_line, samples]
    for text in texts:
        current: Optional[list] = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(None, 3)[2]
                family = families.setdefault(name, [None, None, []])
                slot = 0 if line.startswith("# HELP ") else 1
                if family[slot] is None:
                    family[slot] = line
                current = family
            elif current is not None:
                current[2].append(line)
            else:
                # Headerless sample (bare-instrument render): group by
                # the sample's own name so it still merges by family.
                name = line.split("{", 1)[0].split(" ", 1)[0]
                families.setdefault(name, [None, None, []])[2].append(line)
    lines: list[str] = []
    for name in sorted(families):
        help_line, type_line, samples = families[name]
        if help_line is not None:
            lines.append(help_line)
        if type_line is not None:
            lines.append(type_line)
        lines.extend(samples)
    return "\n".join(lines) + "\n" if lines else ""


def register_snapshot_gauges(registry: MetricsRegistry, prefix: str,
                             snapshot_fn: Callable[[], dict],
                             help_text: str = "", **labels) -> None:
    """Export every key of a ``snapshot_fn()`` dict as a callback gauge.

    The snapshot is taken once to learn the key set; each key becomes
    ``<prefix>_<key>`` reading the live snapshot at scrape time.  The
    shape every "expose my internals cheaply" integration needs (the
    simnet engine, channel queue depths) without writing one closure per
    field by hand.
    """
    keys = list(snapshot_fn())

    def reader(field: str) -> Callable[[], float]:
        return lambda: float(snapshot_fn().get(field, 0.0))

    for key in keys:
        registry.gauge(f"{prefix}_{key}", help_text, fn=reader(key),
                       **labels)
