"""Tests for configuration validation."""

from __future__ import annotations

import pytest

from repro.core.bucket import RefillMode
from repro.core.config import (
    AdmissionConfig,
    ClusterTopology,
    JanusConfig,
    ProcPlaneConfig,
    RouterConfig,
    ServerConfig,
)
from repro.core.errors import ConfigurationError


class TestAdmissionConfig:
    def test_defaults(self):
        config = AdmissionConfig()
        assert config.refill_mode is RefillMode.CONTINUOUS
        assert config.lock_shards == 1      # the paper's single lock

    @pytest.mark.parametrize("kwargs", [
        {"refill_interval": 0.0},
        {"sync_interval": -1.0},
        {"checkpoint_interval": 0.0},
        {"lock_shards": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            AdmissionConfig(**kwargs)


class TestRouterConfig:
    def test_paper_defaults(self):
        config = RouterConfig()
        assert config.udp_timeout == pytest.approx(100e-6)
        assert config.max_retries == 5
        # Worst case of §III-B: 5 retries x 100 us = 500 us.
        assert config.worst_case_wait == pytest.approx(500e-6)

    def test_wire_defaults(self):
        config = RouterConfig()
        assert config.wire_mode == "channel"
        assert config.batch_size == 64
        assert config.wire_protocol == 2
        assert config.timer_tick == pytest.approx(0.005)

    def test_auto_wire_mode(self):
        config = RouterConfig(wire_mode="auto")
        assert config.wire_mode == "auto"
        assert config.auto_channel_threshold == 2

    @pytest.mark.parametrize("kwargs", [
        {"udp_timeout": 0.0},
        {"max_retries": 0},
        {"wire_mode": "carrier-pigeon"},
        {"batch_size": 0},
        {"wire_protocol": 3},
        {"timer_tick": 0.0},
        {"auto_channel_threshold": 0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            RouterConfig(**kwargs)


class TestServerConfig:
    def test_defaults(self):
        assert ServerConfig().workers == 4

    def test_invalid_workers(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(workers=0)

    def test_invalid_recv_timeout(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(recv_timeout=0.0)

    def test_processes_default_single(self):
        assert ServerConfig().processes == 1

    def test_invalid_processes(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(processes=0)

    def test_invalid_replication_interval(self):
        with pytest.raises(ConfigurationError):
            ServerConfig(ha_replication_interval=0.0)


class TestProcPlaneConfig:
    def test_defaults(self):
        config = ProcPlaneConfig()
        assert config.fanin == "portmap"
        assert config.heartbeat_timeout > config.heartbeat_interval

    @pytest.mark.parametrize("kwargs", [
        {"fanin": "multicast"},
        {"heartbeat_interval": 0.0},
        {"heartbeat_timeout": 0.0},
        {"snapshot_interval": 0.0},
        {"restart_backoff": -1.0},
        {"max_restarts": -1},
        {"spawn_timeout": 0.0},
        {"drain_timeout": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ProcPlaneConfig(**kwargs)


class TestClusterTopology:
    def test_defaults(self):
        topo = ClusterTopology()
        assert topo.load_balancer == "gateway"

    @pytest.mark.parametrize("kwargs", [
        {"n_routers": 0},
        {"n_qos_servers": 0},
        {"load_balancer": "carrier-pigeon"},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            ClusterTopology(**kwargs)


class TestJanusConfig:
    def test_default_ttl_is_paper_value(self):
        assert JanusConfig().dns_ttl == 30.0

    def test_invalid_ttl(self):
        with pytest.raises(ConfigurationError):
            JanusConfig(dns_ttl=0.0)
