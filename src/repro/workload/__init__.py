"""Workload generation: key populations, arrival processes, load drivers."""

from repro.workload.ab import AbResult, run_ab
from repro.workload.arrival import NoisyConstantArrivals, PoissonArrivals
from repro.workload.keygen import (
    KEY_POPULATIONS,
    KeyCycle,
    ZipfKeyChooser,
    english_keys,
    rule_population,
    sequential_keys,
    timestamp_keys,
    uuid_keys,
)
from repro.workload.simclient import ClosedLoopClient, OpenLoopDriver, qos_round_trip

__all__ = [
    "AbResult",
    "ClosedLoopClient",
    "KEY_POPULATIONS",
    "KeyCycle",
    "NoisyConstantArrivals",
    "OpenLoopDriver",
    "PoissonArrivals",
    "ZipfKeyChooser",
    "english_keys",
    "qos_round_trip",
    "rule_population",
    "run_ab",
    "sequential_keys",
    "timestamp_keys",
    "uuid_keys",
]
