"""Credit-lease smoke test over real sockets (gating in CI).

Boots one :class:`QoSServerDaemon` and one :class:`RequestRouterDaemon`
with leasing enabled, drives a hot key until the router admits from its
leased balance, and then proves the two load-bearing properties:

- steady-state hot-key checks are *local*: a burst of admissions moves
  the ``local_admits`` counter without sending a single lease frame;
- a rule push revokes: after ``put_rule`` the server's periodic DB sync
  revokes the ledger entry, the LEASE_REVOKE datagram reaches the
  router, and the cached lease dies well within one TTL.
"""

from __future__ import annotations

import time

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import AdmissionConfig, RouterConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.runtime.http_router import RequestRouterDaemon
from repro.runtime.udp_server import QoSServerDaemon

KEY = "lease-smoke"
#: Long TTL keeps the renewal callback (at 0.8 * TTL) out of the timed
#: burst, so "zero wire traffic" is assertable without races.
LEASE_TTL = 2.0


def hot_rule() -> QoSRule:
    return QoSRule(KEY, refill_rate=1e9, capacity=1e12)


def lease_router_config() -> RouterConfig:
    return RouterConfig(
        lease_enabled=True,
        lease_hot_threshold=8,
        lease_window=5.0,
        lease_credits=100_000.0,
        lease_ttl=LEASE_TTL,
    )


def wait_for(predicate, timeout: float, interval: float = 0.01) -> float:
    """Poll until ``predicate()`` is true; return the elapsed seconds."""
    deadline = time.monotonic() + timeout
    start = time.monotonic()
    while True:
        if predicate():
            return time.monotonic() - start
        if time.monotonic() >= deadline:
            pytest.fail(f"condition not reached within {timeout}s")
        time.sleep(interval)


def establish_lease(router: RequestRouterDaemon, timeout: float = 5.0):
    """Hammer the hot key until a lease is active and admitting locally."""
    def leased() -> bool:
        response, _ = router.qos_exchange(KEY)
        assert response.allowed
        lease = router.stats().get("lease", {})
        return lease.get("active", 0) >= 1 and lease.get("local_admits", 0) > 0

    wait_for(leased, timeout)


def test_hot_key_admits_locally_with_zero_wire_traffic():
    source = InMemoryRuleSource({KEY: hot_rule()})
    with QoSServerDaemon(source, name="lease-smoke-qos") as server:
        with RequestRouterDaemon([server.address],
                                 config=lease_router_config(),
                                 name="lease-smoke-router") as router:
            establish_lease(router)
            before = dict(router.stats()["lease"])
            burst = 200
            for _ in range(burst):
                response, _ = router.qos_exchange(KEY)
                assert response.allowed
            after = router.stats()["lease"]
            assert after["local_admits"] - before["local_admits"] == burst
            # The whole burst ran off the leased balance: no LEASE_REQ
            # (and no QoS datagram — a local admit skips the wire).
            assert after["requests_sent"] == before["requests_sent"]
            # The server debited the grant up front; the outstanding
            # ledger covers everything the router can locally admit.
            assert server.controller.lease_outstanding_total() > 0


def test_rule_push_revokes_within_one_ttl():
    source = InMemoryRuleSource({KEY: hot_rule()})
    admission = AdmissionConfig(sync_interval=0.2, checkpoint_interval=30.0)
    with QoSServerDaemon(source, config=ServerConfig(admission=admission),
                         name="lease-revoke-qos") as server:
        with RequestRouterDaemon([server.address],
                                 config=lease_router_config(),
                                 name="lease-revoke-router") as router:
            establish_lease(router)
            assert server.controller.lease_count() >= 1
            # Rule push: the next periodic sync revokes the ledger entry
            # and fires a LEASE_REVOKE at the router that holds it.
            source.put_rule(QoSRule(KEY, refill_rate=500.0, capacity=1000.0))
            elapsed = wait_for(
                lambda: router.stats()["lease"]["revoked"] >= 1
                and router.stats()["lease"]["active"] == 0,
                timeout=LEASE_TTL)
            assert elapsed < LEASE_TTL
            assert server.controller.lease_count() == 0
            assert server.controller.lease_outstanding_total() == 0.0
            # The router keeps answering (from the wire) under the new,
            # tighter rule — leasing never denies, it only stops helping.
            response, _ = router.qos_exchange(KEY)
            assert response.allowed
