"""CI smoke: a 2-worker-process cluster, traced end-to-end, port-map.

Boots a LocalCluster whose single QoS node runs as a supervisor plus two
shared-nothing worker processes in port-map fan-in mode, drives real
checks through the load balancer and router, then asserts the two
properties the multi-process plane promises:

- **hop-free hot path** — a traced check's span tree shows exactly one
  ``server.decide`` and the worker counters show zero cross-process
  forwards: the router's CRC32 partitioner delivered the frame straight
  to the owning worker process;
- **aggregation** — per-worker metrics, stats, and decision counts roll
  up correctly into the node and cluster views.
"""

from __future__ import annotations

import pytest

from repro.core.config import RouterConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.runtime.cluster import LocalCluster

from tests.obs.test_metrics import assert_prometheus_conformant

N_KEYS = 8
N_CHECKS = 64


@pytest.fixture(scope="module")
def multicore_cluster():
    cluster = LocalCluster(
        n_routers=1, n_qos_servers=1,
        server_config=ServerConfig(workers=2, processes=2),
        router_config=RouterConfig(udp_timeout=0.5, max_retries=3,
                                   wire_mode="channel"))
    for i in range(N_KEYS):
        cluster.rules.put_rule(QoSRule(
            f"tenant:{i}", refill_rate=100_000.0, capacity=1_000_000.0))
    with cluster:
        yield cluster


def test_multicore_cluster_smoke(multicore_cluster):
    cluster = multicore_cluster
    assert cluster.processes == 2
    node = cluster.qos_nodes[0]
    assert len(node.port_map()) == 2

    # Plain checks through LB -> router -> owning worker process.
    client = cluster.client()
    allowed = sum(client.check(f"tenant:{i % N_KEYS}")
                  for i in range(N_CHECKS))
    assert allowed == N_CHECKS

    # One traced check: the span tree must show exactly one server-side
    # decision — the frame went straight to the owning worker, it was
    # not decoded by one process and re-decided by another.
    traced = cluster.client(trace_sample_rate=1.0)
    result = traced.check_detailed("tenant:3")
    assert result.allowed and not result.is_default_reply
    assert result.trace_id
    spans = cluster.trace_spans(result.trace_id)
    layers = {span["layer"] for span in spans}
    assert {"client", "router", "udp_channel", "qos_server"} <= layers
    decides = [span for span in spans if span["name"] == "server.decide"]
    assert len(decides) == 1, (
        f"expected exactly one server.decide span, got "
        f"{[s['name'] for s in spans]}")

    # The hot path took zero cross-process hops, and both workers made
    # real decisions (CRC32 spread the 8 tenants across both shards).
    workers = cluster.stats()["qos_servers"][0]["workers"]
    assert len(workers) == 2
    for worker in workers:
        assert worker["forwarded_in"] == 0
        assert worker["forwarded_out"] == 0
        assert worker["decisions"] > 0
    assert sum(w["decisions"] for w in workers) >= N_CHECKS + 1
    assert cluster.total_decisions() >= N_CHECKS + 1

    # Per-worker registries merge into one conformant node/cluster
    # rendering: no repeated TYPE headers, worker families present.
    text = cluster.prometheus_metrics()
    assert_prometheus_conformant(text)
    assert "janus_node_workers_alive" in text
    assert "janus_server_admission_admitted" in text
    type_lines = [line.split()[2] for line in text.splitlines()
                  if line.startswith("# TYPE")]
    assert len(type_lines) == len(set(type_lines))


def test_http_trace_endpoint_includes_worker_spans(multicore_cluster):
    """``GET /trace/<id>`` on a router returns the whole trace.

    The server.decide span lives in a worker process's buffer; the
    router must collect it over the supervisor pipes — an operator
    hitting the HTTP endpoint sees the same four layers the in-process
    ``cluster.trace_spans`` view shows.
    """
    import json
    from urllib.request import urlopen

    cluster = multicore_cluster
    traced = cluster.client(trace_sample_rate=1.0)
    result = traced.check_detailed("tenant:5")
    assert result.trace_id
    url = f"{cluster.routers[0].url}/trace/{result.trace_id:016x}"
    with urlopen(url, timeout=5.0) as response:
        body = json.load(response)
    layers = {span["layer"] for span in body["spans"]}
    assert {"router", "udp_channel", "qos_server"} <= layers
    decides = [s for s in body["spans"] if s["name"] == "server.decide"]
    assert len(decides) == 1
