"""Shape tests for Fig. 13 (application integration)."""

from __future__ import annotations

import pytest

from repro.experiments import fig13_integration
from repro.experiments.scale import Scale

TINY = Scale(name="quick", fig5_requests=1_000, fig6_keys=10_000,
             des_window=0.25, des_warmup=0.15, fig13_duration=45.0,
             throughput_rules=500)


@pytest.fixture(scope="module")
def result():
    return fig13_integration.run(TINY)


class TestFig13a:
    def test_custom_rule_burst_then_steady(self, result):
        """Refill 100/cap 1000 at 130 rps: full rate early, then the
        bucket drains (~33 s) and accepted settles at the refill rate."""
        trace = result.custom
        early_accept = trace.log.accepted.rate_at(5.0)
        assert early_accept == pytest.approx(130.0, rel=0.15)
        assert trace.log.rejected.rate_at(5.0) == 0.0
        accepted, rejected = trace.steady_state_rates(tail=8.0)
        assert accepted == pytest.approx(100.0, rel=0.1)
        assert rejected == pytest.approx(30.0, rel=0.5)

    def test_default_rule_drains_in_seconds(self, result):
        """Refill 10/cap 100: 'depleted in a couple of seconds'."""
        trace = result.default
        assert trace.log.rejected.rate_at(3.0) > 80.0
        accepted, rejected = trace.steady_state_rates(tail=8.0)
        assert accepted == pytest.approx(10.0, abs=2.0)
        assert rejected == pytest.approx(120.0, rel=0.25)

    def test_no_qos_never_rejects(self, result):
        assert result.no_qos.log.n_rejected == 0
        accepted, _ = result.no_qos.steady_state_rates(tail=8.0)
        assert accepted == pytest.approx(130.0, rel=0.15)


class TestFig13b:
    def test_qos_overhead_small_on_accepted(self, result):
        """Paper: P90 27 ms -> 30 ms; QoS adds little to served pages."""
        base = result.no_qos.accepted_summary()
        with_qos = result.custom.accepted_summary()
        assert with_qos.p90 > base.p90                    # some overhead...
        assert with_qos.p90 - base.p90 < 5e-3             # ...but small

    def test_absolute_p90_scale(self, result):
        base = result.no_qos.accepted_summary()
        assert 0.020 < base.p90 < 0.035                   # paper: 27 ms
        with_qos = result.custom.accepted_summary()
        assert 0.022 < with_qos.p90 < 0.038               # paper: 30 ms

    def test_rejections_throttled_within_3ms(self, result):
        """'The rejected requests are throttled in 3 milliseconds.'"""
        rejected = result.default.rejected_summary()
        assert rejected.count > 0
        assert rejected.p90 < 3.5e-3

    def test_rejection_much_faster_than_service(self, result):
        rejected = result.default.rejected_summary()
        accepted = result.default.accepted_summary()
        assert rejected.p90 < accepted.p90 / 5

    def test_report_renders(self, result):
        text = fig13_integration.report(result)
        assert "Fig. 13a" in text and "Fig. 13b" in text
        assert "steady state" in text
