"""Microbenchmarks of the hot admission path.

Tracks the per-operation costs that bound a pure-Python QoS server's
throughput: the leaky-bucket consume, the full admission check, the routing
hash, the wire codec, and the database point lookup.
"""

from __future__ import annotations

from repro.core.admission import AdmissionController, InMemoryRuleSource
from repro.core.bucket import LeakyBucket
from repro.core.hashing import crc32_router
from repro.core.protocol import QoSRequest, QoSResponse, decode
from repro.core.rules import QoSRule
from repro.db.rulestore import RuleStore
from repro.workload.keygen import uuid_keys

KEYS = uuid_keys(512, seed=123)


def test_bucket_try_consume(benchmark):
    bucket = LeakyBucket(1e12, 1e9)

    def run():
        for _ in range(100):
            bucket.try_consume()

    benchmark(run)


def test_admission_check(benchmark):
    source = InMemoryRuleSource(
        {k: QoSRule(k, 1e9, 1e12) for k in KEYS})
    controller = AdmissionController(source)
    for k in KEYS:
        controller.check(k)

    def run():
        for k in KEYS[:100]:
            controller.check(k)

    benchmark(run)
    assert controller.stats.denied == 0


def test_crc32_routing(benchmark):
    sample = KEYS[:200]

    def run():
        for k in sample:
            crc32_router(k, 20)

    benchmark(run)


def test_protocol_encode_decode(benchmark):
    request = QoSRequest(12345, "user:some-tenant-key", 1.0)

    def run():
        for _ in range(100):
            decode(request.encode())

    benchmark(run)


def test_protocol_response_roundtrip(benchmark):
    response = QoSResponse(12345, True)

    def run():
        for _ in range(100):
            decode(response.encode())

    benchmark(run)


def test_rulestore_point_lookup(benchmark):
    store = RuleStore()
    for k in KEYS:
        store.put_rule(QoSRule(k, 10.0, 100.0))

    def run():
        for k in KEYS[:100]:
            store.get_rule(k)

    benchmark(run)


def test_rulestore_checkpoint(benchmark):
    store = RuleStore()
    for k in KEYS[:100]:
        store.put_rule(QoSRule(k, 10.0, 100.0))
    credits = {k: 50.0 for k in KEYS[:100]}

    benchmark(store.checkpoint, credits)
