"""Unit and property tests for the leaky bucket (paper Eqs. 1-2)."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bucket import LeakyBucket, RefillMode
from repro.core.clock import ManualClock
from repro.core.errors import ConfigurationError


class TestConstruction:
    def test_starts_full_by_default(self, clock):
        bucket = LeakyBucket(10.0, 1.0, clock=clock)
        assert bucket.credit == 10.0

    def test_initial_credit_respected(self, clock):
        bucket = LeakyBucket(10.0, 1.0, initial_credit=3.0, clock=clock)
        assert bucket.credit == 3.0

    def test_initial_credit_clamped_to_capacity(self, clock):
        bucket = LeakyBucket(10.0, 1.0, initial_credit=25.0, clock=clock)
        assert bucket.credit == 10.0

    def test_negative_initial_credit_clamped_to_zero(self, clock):
        bucket = LeakyBucket(10.0, 1.0, initial_credit=-5.0, clock=clock)
        assert bucket.credit == 0.0

    def test_zero_capacity_allowed(self, clock):
        bucket = LeakyBucket(0.0, 0.0, clock=clock)
        assert not bucket.try_consume()

    @pytest.mark.parametrize("capacity,rate", [(-1.0, 1.0), (1.0, -1.0)])
    def test_negative_parameters_rejected(self, capacity, rate):
        with pytest.raises(ConfigurationError):
            LeakyBucket(capacity, rate)

    def test_repr_mentions_parameters(self, clock):
        text = repr(LeakyBucket(5.0, 2.0, clock=clock))
        assert "5.0" in text and "2.0" in text


class TestConsume:
    def test_consume_deducts_one(self, clock):
        bucket = LeakyBucket(10.0, 0.0, clock=clock)
        assert bucket.try_consume()
        assert bucket.credit == 9.0

    def test_deny_when_empty(self, clock):
        bucket = LeakyBucket(2.0, 0.0, clock=clock)
        assert bucket.try_consume()
        assert bucket.try_consume()
        assert not bucket.try_consume()
        assert bucket.credit == 0.0

    def test_weighted_consume(self, clock):
        bucket = LeakyBucket(10.0, 0.0, clock=clock)
        assert bucket.try_consume(7.5)
        assert bucket.credit == pytest.approx(2.5)

    def test_continuous_requires_full_cost(self, clock):
        # With lazy refill, credit 0.5 must NOT admit a cost-1 request:
        # the paper's strictly-positive rule only applies to interval mode.
        bucket = LeakyBucket(10.0, 1.0, initial_credit=0.0, clock=clock)
        clock.advance(0.5)
        assert not bucket.try_consume()

    def test_interval_mode_admits_on_positive_credit(self, clock):
        bucket = LeakyBucket(10.0, 1.0, initial_credit=0.5,
                             mode=RefillMode.INTERVAL, clock=clock)
        assert bucket.try_consume()     # paper rule: credit > 0 admits
        assert bucket.credit == 0.0     # floored at zero

    def test_consume_rejects_non_positive_amount(self, clock):
        bucket = LeakyBucket(10.0, 0.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_consume(0.0)

    def test_counters(self, clock):
        bucket = LeakyBucket(1.0, 0.0, clock=clock)
        bucket.try_consume()
        bucket.try_consume()
        assert bucket.consumed_total == 1
        assert bucket.denied_total == 1


class TestRefill:
    def test_continuous_refill_accumulates(self, clock):
        bucket = LeakyBucket(1000.0, 100.0, initial_credit=0.0, clock=clock)
        clock.advance(3.0)
        assert bucket.credit == pytest.approx(300.0)

    def test_credit_capped_at_capacity(self, clock):
        # Eq. 2: f(t) <= C even after a long idle period (the burst example
        # of §II-C: rate 100, capacity 1000, >10 s idle -> full bucket).
        bucket = LeakyBucket(1000.0, 100.0, initial_credit=0.0, clock=clock)
        clock.advance(60.0)
        assert bucket.credit == 1000.0

    def test_interval_mode_needs_explicit_refill(self, clock):
        bucket = LeakyBucket(100.0, 10.0, initial_credit=0.0,
                             mode=RefillMode.INTERVAL, clock=clock)
        clock.advance(5.0)
        assert bucket.peek_credit() == 0.0
        bucket.refill()
        assert bucket.peek_credit() == pytest.approx(50.0)

    def test_burst_then_steady_state(self, clock):
        # The Fig. 13a dynamic: consume at 130/s against refill 100/s with
        # capacity 1000 -> ~33 s of burst, then exactly the refill rate.
        bucket = LeakyBucket(1000.0, 100.0, clock=clock)
        admitted_first_30s = 0
        admitted_40_to_70s = 0
        for step in range(70 * 130):
            clock.advance(1.0 / 130.0)
            if bucket.try_consume():
                t = step / 130.0
                if t < 30.0:
                    admitted_first_30s += 1
                elif 40.0 <= t < 70.0:
                    admitted_40_to_70s += 1
        assert admitted_first_30s == 30 * 130           # burst: all admitted
        assert admitted_40_to_70s == pytest.approx(3000, rel=0.02)

    def test_zero_rate_never_refills(self, clock):
        bucket = LeakyBucket(10.0, 0.0, initial_credit=0.0, clock=clock)
        clock.advance(1e6)
        assert bucket.credit == 0.0


class TestRuleUpdate:
    def test_update_rule_changes_rates(self, clock):
        bucket = LeakyBucket(10.0, 1.0, clock=clock)
        bucket.update_rule(capacity=20.0, refill_rate=5.0)
        assert bucket.capacity == 20.0
        assert bucket.refill_rate == 5.0

    def test_shrinking_capacity_clamps_credit(self, clock):
        bucket = LeakyBucket(100.0, 1.0, clock=clock)
        bucket.update_rule(capacity=5.0, refill_rate=1.0)
        assert bucket.credit <= 5.0

    def test_update_rule_rejects_negative(self, clock):
        bucket = LeakyBucket(10.0, 1.0, clock=clock)
        with pytest.raises(ConfigurationError):
            bucket.update_rule(-1.0, 1.0)

    def test_restore_credit_clamps(self, clock):
        bucket = LeakyBucket(10.0, 1.0, clock=clock)
        bucket.restore_credit(99.0)
        assert bucket.peek_credit() == 10.0
        bucket.restore_credit(-3.0)
        assert bucket.peek_credit() == 0.0


class TestTimeToCredit:
    def test_already_available(self, clock):
        bucket = LeakyBucket(10.0, 1.0, clock=clock)
        assert bucket.time_to_credit(1.0) == 0.0

    def test_linear_eta(self, clock):
        bucket = LeakyBucket(10.0, 2.0, initial_credit=0.0, clock=clock)
        assert bucket.time_to_credit(4.0) == pytest.approx(2.0)

    def test_unreachable_target(self, clock):
        assert LeakyBucket(10.0, 0.0, initial_credit=0.0,
                           clock=clock).time_to_credit() == float("inf")
        assert LeakyBucket(10.0, 1.0, clock=clock).time_to_credit(11.0) == float("inf")

    def test_zero_rate_with_credit_already_present(self, clock):
        # rate 0 is only unreachable when the credit still has to grow.
        bucket = LeakyBucket(10.0, 0.0, initial_credit=5.0, clock=clock)
        assert bucket.time_to_credit(5.0) == 0.0
        assert bucket.time_to_credit(5.1) == float("inf")

    def test_target_exactly_capacity_is_reachable(self, clock):
        bucket = LeakyBucket(10.0, 2.0, initial_credit=0.0, clock=clock)
        assert bucket.time_to_credit(10.0) == pytest.approx(5.0)

    def test_zero_capacity_bucket_unreachable(self, clock):
        bucket = LeakyBucket(0.0, 5.0, clock=clock)
        assert bucket.time_to_credit(1.0) == float("inf")
        assert bucket.time_to_credit(0.0) == 0.0    # trivially satisfied

    def test_interval_mode_does_not_lazily_advance(self, clock):
        # INTERVAL credit only moves on refill(); the ETA must be computed
        # from the stored credit, not from a phantom lazy accrual.
        bucket = LeakyBucket(100.0, 10.0, initial_credit=0.0,
                             mode=RefillMode.INTERVAL, clock=clock)
        clock.advance(3.0)                  # no housekeeping ran
        assert bucket.time_to_credit(10.0) == pytest.approx(1.0)
        assert bucket.peek_credit() == 0.0  # the ETA query didn't refill
        bucket.refill()
        assert bucket.time_to_credit(10.0) == 0.0

    def test_continuous_mode_advances_before_answering(self, clock):
        bucket = LeakyBucket(100.0, 10.0, initial_credit=0.0, clock=clock)
        clock.advance(3.0)
        # 30 credits accrued lazily; only 1 more second to reach 40.
        assert bucket.time_to_credit(40.0) == pytest.approx(1.0)


class TestRuleUpdateMidBurst:
    """A plan that shrinks while the tenant is mid-burst (§II-D sync)."""

    def test_shrunk_plan_clamps_immediately(self, clock):
        bucket = LeakyBucket(1000.0, 100.0, clock=clock)
        for _ in range(200):                # burst: 800 credits left
            assert bucket.try_consume()
        bucket.update_rule(capacity=50.0, refill_rate=10.0)
        assert bucket.peek_credit() == 50.0
        # The remaining burst is bounded by the *new* capacity.
        assert sum(bucket.try_consume() for _ in range(100)) == 50

    def test_accrual_up_to_update_uses_old_rate(self, clock):
        bucket = LeakyBucket(1000.0, 100.0, initial_credit=0.0, clock=clock)
        clock.advance(2.0)                  # +200 at the old rate
        bucket.update_rule(capacity=1000.0, refill_rate=1.0)
        assert bucket.peek_credit() == pytest.approx(200.0)
        clock.advance(10.0)                 # +10 at the new rate
        assert bucket.credit == pytest.approx(210.0)

    def test_grow_then_shrink_keeps_credit_in_range(self, clock):
        bucket = LeakyBucket(10.0, 0.0, clock=clock)
        bucket.update_rule(capacity=100.0, refill_rate=0.0)
        assert bucket.peek_credit() == 10.0  # growing never invents credit
        bucket.update_rule(capacity=4.0, refill_rate=0.0)
        assert bucket.peek_credit() == 4.0

    def test_shrink_to_zero_denies_everything(self, clock):
        bucket = LeakyBucket(100.0, 10.0, clock=clock)
        bucket.update_rule(capacity=0.0, refill_rate=0.0)
        assert not bucket.try_consume()
        assert bucket.peek_credit() == 0.0


class TestUnlockedFastPath:
    """The fused hot-path API must behave exactly like the locked one."""

    def test_try_consume_unlocked_matches_locked(self, clock):
        locked = LeakyBucket(5.0, 1.0, initial_credit=2.0, clock=clock)
        unlocked = LeakyBucket(5.0, 1.0, initial_credit=2.0, clock=clock)
        for _ in range(8):
            clock.advance(0.4)
            assert locked.try_consume() == unlocked.try_consume_unlocked()
        assert locked.peek_credit() == pytest.approx(unlocked.peek_credit())
        assert locked.consumed_total == unlocked.consumed_total
        assert locked.denied_total == unlocked.denied_total

    def test_unlocked_interval_rule(self, clock):
        bucket = LeakyBucket(10.0, 1.0, initial_credit=0.5,
                             mode=RefillMode.INTERVAL, clock=clock)
        assert bucket.try_consume_unlocked()    # paper rule: > 0 admits
        assert bucket.peek_credit() == 0.0
        assert not bucket.try_consume_unlocked()

    def test_unlocked_rejects_non_positive_amount(self, clock):
        bucket = LeakyBucket(10.0, 0.0, clock=clock)
        with pytest.raises(ValueError):
            bucket.try_consume_unlocked(0.0)

    def test_shared_now_reading(self, clock):
        # A batch caller may reuse one clock reading across buckets.
        bucket = LeakyBucket(10.0, 1.0, initial_credit=0.0, clock=clock)
        clock.advance(5.0)
        assert bucket.try_consume_unlocked(1.0, now=clock())
        assert bucket.peek_credit() == pytest.approx(4.0)

    def test_advance_unlocked_is_refill_primitive(self, clock):
        bucket = LeakyBucket(100.0, 10.0, initial_credit=0.0,
                             mode=RefillMode.INTERVAL, clock=clock)
        clock.advance(2.0)
        bucket.advance_unlocked(clock())
        assert bucket.peek_credit() == pytest.approx(20.0)


class TestInvariants:
    @given(
        capacity=st.floats(0.0, 1e6),
        rate=st.floats(0.0, 1e4),
        events=st.lists(
            st.tuples(st.floats(0.0, 100.0), st.floats(0.1, 10.0)),
            max_size=60),
    )
    @settings(max_examples=150, deadline=None)
    def test_credit_always_within_bounds(self, capacity, rate, events):
        """0 <= f(t) <= C under any schedule of advances and consumes."""
        clk = ManualClock()
        bucket = LeakyBucket(capacity, rate, clock=clk)
        for advance, amount in events:
            clk.advance(advance)
            bucket.try_consume(amount)
            credit = bucket.credit
            assert 0.0 <= credit <= capacity + 1e-9

    @given(rate=st.floats(1.0, 1000.0), seconds=st.integers(10, 50))
    @settings(max_examples=50, deadline=None)
    def test_longrun_admission_bounded_by_refill(self, rate, seconds):
        """Admitted throughput from an empty bucket never exceeds the rate
        (the quota-enforcement guarantee a provider sells)."""
        clk = ManualClock()
        bucket = LeakyBucket(rate * 5, rate, initial_credit=0.0, clock=clk)
        dt = 1.0 / (4.0 * rate)      # offered at 4x the purchased rate
        admitted = 0
        steps = int(seconds / dt)
        for _ in range(min(steps, 20000)):
            clk.advance(dt)
            if bucket.try_consume():
                admitted += 1
        elapsed = min(steps, 20000) * dt
        assert admitted <= rate * elapsed * 1.01 + 1

    def test_thread_safety_conserves_credit(self):
        """Concurrent consumers never over-spend (no refill, fixed budget)."""
        bucket = LeakyBucket(capacity=5000.0, refill_rate=0.0)
        admitted = []

        def worker():
            count = 0
            for _ in range(2000):
                if bucket.try_consume():
                    count += 1
            admitted.append(count)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(admitted) == 5000
        assert bucket.peek_credit() == 0.0
