"""Auto Scaling group for the request-router layer (paper §V-A).

"The request router layer can be managed by an Auto Scaling group, where
the capacity of the request router layer can be automatically adjusted
based on a variety of metrics such as the average latency observed on the
load balancer, the average CPU utilization on the request router nodes,
etc."  This module implements that controller for the simulator:

- a periodic evaluation loop samples the scaling signal over the last
  period: mean router CPU, or (``metric="latency"``) the P90 round trip
  observed at the load balancer;
- above ``scale_out_threshold`` it launches a new router (registered with
  the ELB and the DNS A record) after an instance boot delay;
- below ``scale_in_threshold`` — and above ``min_nodes`` — it *retires*
  the youngest router gracefully (it stops taking new connections, drains,
  and detaches);
- a cooldown suppresses flapping between actions.

The QoS server layer is deliberately NOT autoscaled: its node count is the
partition modulus, so resizing it needs the state migration implemented in
:mod:`repro.server.elastic` instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.errors import ConfigurationError
from repro.simnet.engine import Simulation

from repro.server.loadbalancer import GatewayLoadBalancer
from repro.server.router import SimRequestRouter

__all__ = ["AutoScaler", "ScalingEvent"]


@dataclass(frozen=True, slots=True)
class ScalingEvent:
    """One autoscaling action, for the activity log."""

    time: float
    action: str            # "scale_out" / "scale_in"
    router: str
    observed_cpu: float
    fleet_size: int


class AutoScaler:
    """CPU-target autoscaling of the router layer behind a gateway LB."""

    def __init__(
        self,
        sim: Simulation,
        lb: GatewayLoadBalancer,
        launch_router: Callable[[], SimRequestRouter],
        *,
        min_nodes: int = 1,
        max_nodes: int = 10,
        scale_out_threshold: float = 0.75,
        scale_in_threshold: float = 0.30,
        period: float = 2.0,
        cooldown: float = 4.0,
        boot_delay: float = 1.0,
        dns_update: Optional[Callable[[List[str]], None]] = None,
        metric: str = "cpu",
    ):
        if not (1 <= min_nodes <= max_nodes):
            raise ConfigurationError("need 1 <= min_nodes <= max_nodes")
        if metric not in ("cpu", "latency"):
            raise ConfigurationError(
                f"metric must be 'cpu' or 'latency', got {metric!r}")
        if metric == "cpu" and not (0.0 < scale_in_threshold
                                    < scale_out_threshold < 1.0):
            raise ConfigurationError(
                "need 0 < scale_in_threshold < scale_out_threshold < 1")
        if metric == "latency" and not (0.0 < scale_in_threshold
                                        < scale_out_threshold):
            raise ConfigurationError(
                "need 0 < scale_in_threshold < scale_out_threshold (seconds)")
        if period <= 0 or cooldown < 0 or boot_delay < 0:
            raise ConfigurationError("period/cooldown/boot_delay out of range")
        self.sim = sim
        self.lb = lb
        self.launch_router = launch_router
        self.min_nodes = min_nodes
        self.max_nodes = max_nodes
        self.metric = metric
        self.scale_out_threshold = scale_out_threshold
        self.scale_in_threshold = scale_in_threshold
        self.period = period
        self.cooldown = cooldown
        self.boot_delay = boot_delay
        self.dns_update = dns_update
        self.events: List[ScalingEvent] = []
        self.running = True
        self._last_action_at = -float("inf")
        self._proc = sim.spawn(self._loop(), "autoscaler")

    # ------------------------------------------------------------------ #

    def fleet(self) -> List[SimRequestRouter]:
        """Routers currently serving (healthy LB backends)."""
        return [r for r in self.lb.routers if r.running]

    def mean_cpu(self) -> float:
        fleet = self.fleet()
        if not fleet:
            return 0.0
        return sum(r.cpu_utilization() for r in fleet) / len(fleet)

    def observed(self) -> float:
        """The scaling signal: mean fleet CPU, or the LB's P90 latency
        ("the average latency observed on the load balancer", §V-A)."""
        if self.metric == "cpu":
            return self.mean_cpu()
        return self.lb.latency.percentile(90.0)

    def stop(self) -> None:
        self.running = False

    def _publish_dns(self) -> None:
        if self.dns_update is not None:
            self.dns_update([r.name for r in self.fleet()])

    def _loop(self):
        # Give each router a fresh measurement window per period.
        for router in self.fleet():
            router.begin_window()
        while True:
            yield self.period
            if not self.running:
                return
            cpu = self.observed()
            fleet = self.fleet()
            for router in fleet:
                router.begin_window()
            if self.sim.now - self._last_action_at < self.cooldown:
                continue
            if cpu > self.scale_out_threshold and len(fleet) < self.max_nodes:
                self._last_action_at = self.sim.now
                # Instance boot: the new node joins after boot_delay.
                yield self.boot_delay
                router = self.launch_router()
                self.lb.add_backend(router)
                self._publish_dns()
                self.events.append(ScalingEvent(
                    self.sim.now, "scale_out", router.name, cpu,
                    len(self.fleet())))
            elif cpu < self.scale_in_threshold and len(fleet) > self.min_nodes:
                self._last_action_at = self.sim.now
                victim = fleet[-1]           # youngest first
                victim.retire()
                self.lb.remove_backend(victim.name)
                self._publish_dns()
                self.events.append(ScalingEvent(
                    self.sim.now, "scale_in", victim.name, cpu,
                    len(self.fleet())))
