"""Tests for the shared scalability-sweep machinery."""

from __future__ import annotations

import pytest

from repro.experiments.scale import PAPER, QUICK, Scale, current_scale
from repro.experiments.scaling import (
    horizontal_points,
    scaling_report,
    sweep,
    vertical_points,
)


class TestPointBuilders:
    def test_vertical_router_points(self):
        points = vertical_points("router", ("c3.large", "c3.xlarge"))
        assert [label for label, _, _ in points] == ["c3.large", "c3.xlarge"]
        for label, topo, vcpus in points:
            assert topo.n_routers == 1
            assert topo.router_instance == label
            assert topo.qos_instance == "c3.8xlarge"   # the Fig. 7 fixture
        assert points[0][2] == 2 and points[1][2] == 4

    def test_vertical_qos_points(self):
        points = vertical_points("qos", ("c3.large",))
        _, topo, _ = points[0]
        assert topo.n_routers == 5                      # the Fig. 10 fixture
        assert topo.router_instance == "c3.8xlarge"
        assert topo.qos_instance == "c3.large"

    def test_horizontal_points_scale_vcpus(self):
        points = horizontal_points("qos", (1, 3), instance="c3.xlarge")
        assert points[0][2] == 4 and points[1][2] == 12
        assert points[1][1].n_qos_servers == 3

    @pytest.mark.parametrize("builder", [vertical_points, horizontal_points])
    def test_unknown_layer_rejected(self, builder):
        with pytest.raises(ValueError):
            builder("database", ("c3.large",) if builder is vertical_points
                    else (1,))


class TestSweep:
    def test_model_only_sweep(self):
        points = sweep(vertical_points("router", ("c3.large", "c3.xlarge")),
                       validate=())
        assert all(p.sim is None for p in points)
        assert points[0].model_throughput < points[1].model_throughput
        # Properties fall back to the model when no sim point exists.
        assert points[0].throughput == points[0].model_throughput

    def test_validated_point_prefers_sim(self):
        tiny = Scale(name="quick", fig5_requests=100, fig6_keys=100,
                     des_window=0.2, des_warmup=0.1, fig13_duration=5.0,
                     throughput_rules=200)
        points = sweep(vertical_points("router", ("c3.large",)),
                       validate=("c3.large",), scale=tiny)
        assert points[0].sim is not None
        assert points[0].throughput == points[0].sim.throughput

    def test_report_includes_every_point(self):
        points = sweep(horizontal_points("router", (1, 2, 3)), validate=())
        text = scaling_report("My sweep", points)
        assert text.startswith("My sweep")
        for p in points:
            assert p.label in text


class TestScaleProfiles:
    def test_quick_smaller_than_paper(self):
        assert QUICK.fig5_requests < PAPER.fig5_requests
        assert QUICK.fig6_keys < PAPER.fig6_keys
        assert PAPER.fig6_keys == 500_000       # the paper's exact size

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        assert current_scale() is PAPER
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert current_scale() is QUICK
        monkeypatch.delenv("REPRO_SCALE")
        assert current_scale() is QUICK

    def test_unknown_profile_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "ludicrous")
        with pytest.raises(ValueError):
            current_scale()
