"""Ablation: partition imbalance under skewed (Zipf) tenant popularity.

A limitation the paper's uniform-key evaluation (Fig. 6) does not probe:
``CRC32(key) mod N`` spreads *keys* evenly, but traffic is per-key skewed
in real SaaS workloads, and one hot tenant lands entirely on one QoS
partition.  This ablation drives the same deployment with uniform and
Zipf-popular key streams and reports per-partition load spread and the
realized throughput.
"""

from __future__ import annotations


from repro.core.config import ClusterTopology, JanusConfig, RouterConfig
from repro.core.rules import QoSRule
from repro.metrics.report import format_table
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, ZipfKeyChooser, uuid_keys
from repro.workload.simclient import ClosedLoopClient

N_QOS = 4
N_CLIENTS = 40


def run_skewed(exponent: float, horizon: float = 1.2, warmup: float = 0.4):
    """Returns (throughput rps, per-partition decision shares)."""
    config = JanusConfig(
        topology=ClusterTopology(n_routers=4, n_qos_servers=N_QOS,
                                 router_instance="c3.8xlarge",
                                 qos_instance="c3.large"),
        router=RouterConfig(udp_timeout=20e-3))
    cluster = SimJanusCluster(config, seed=101)
    keys = uuid_keys(400, seed=101)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
    cluster.prewarm()
    clients = []
    for i in range(N_CLIENTS):
        chooser = (ZipfKeyChooser(keys, exponent=exponent, seed=i)
                   if exponent > 0 else KeyCycle(keys, i * 11))
        clients.append(ClosedLoopClient(cluster, f"c{i}", chooser,
                                        mode="gateway"))
    cluster.sim.run(until=warmup)
    cluster.begin_window()
    n0 = sum(len(c.log) for c in clients)
    decisions0 = [s.decisions for s in cluster.qos_servers]
    cluster.sim.run(until=warmup + horizon)
    n1 = sum(len(c.log) for c in clients)
    decisions1 = [s.decisions for s in cluster.qos_servers]
    window = [b - a for a, b in zip(decisions0, decisions1)]
    total = sum(window) or 1
    return (n1 - n0) / horizon, [d / total for d in window]


def test_hotkey_sweep(benchmark, report_sink):
    def sweep():
        return [(exp, *run_skewed(exp)) for exp in (0.0, 0.9, 1.3)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pretty = [(f"zipf s={exp}" if exp else "uniform (paper)",
               f"{tput / 1e3:.1f}k",
               f"{max(shares) * 100:.0f}%",
               f"{min(shares) * 100:.0f}%")
              for exp, tput, shares in rows]
    report_sink(format_table(
        ("workload", "throughput", "hottest partition", "coldest partition"),
        pretty,
        title=f"Ablation: Zipf tenant popularity vs partition balance "
              f"({N_QOS} QoS servers; ideal share 25%)"))

    uniform = rows[0]
    hottest = rows[-1]
    # Uniform traffic balances; heavy skew concentrates load and costs
    # system throughput (the hot partition saturates first).
    assert max(uniform[2]) < 0.30
    assert max(hottest[2]) > 0.35
    assert hottest[1] < uniform[1]


def test_uniform_matches_fig6_balance(benchmark):
    tput, shares = benchmark.pedantic(run_skewed, args=(0.0,),
                                      rounds=1, iterations=1)
    assert max(shares) - min(shares) < 0.06
