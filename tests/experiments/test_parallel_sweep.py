"""Tests for the parallel sweep executor and its figure wiring.

The contract under test: ``--jobs N`` changes wall-clock only — the
fig8/fig11 report text is byte-identical at any parallelism — and a
worker failure (exception or outright crash) surfaces as a clean
:class:`SweepError` naming the failed point, never a hang.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import fig8_router_horizontal as fig8
from repro.experiments import fig11_qos_horizontal as fig11
from repro.experiments.parallel import (
    SweepError,
    current_jobs,
    run_tasks,
    set_default_jobs,
)
from repro.experiments.scale import Scale

#: A sub-quick scale so the two-point DES validation stays test-sized.
TINY = Scale(name="tiny", fig5_requests=500, fig6_keys=5_000,
             des_window=0.12, des_warmup=0.08, fig13_duration=5.0,
             throughput_rules=200)
VALIDATE = ("1x c3.xlarge", "2x c3.xlarge")


# ---- top-level task functions (must be picklable for the pool) ---------- #

def _square(x: int) -> int:
    return x * x

def _fail_on_three(x: int) -> int:
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x

def _crash_on_two(x: int) -> int:
    if x == 2:
        os._exit(17)        # hard worker death, no exception machinery
    return x


@pytest.fixture
def force_multicpu(monkeypatch):
    """Pin the executor's CPU view above 1 so ``jobs > 1`` really pools.

    The single-CPU fallback would otherwise turn the pool tests into
    serial runs on 1-CPU hosts — and the worker-crash test's
    ``os._exit`` would then kill the pytest process itself.
    """
    import repro.experiments.parallel as parallel_mod

    monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)


class TestRunTasks:
    def test_serial_matches_map(self):
        assert run_tasks(_square, [1, 2, 3], jobs=1) == [1, 4, 9]

    def test_parallel_preserves_input_order(self, force_multicpu):
        items = list(range(12))
        assert run_tasks(_square, items, jobs=4) == [x * x for x in items]

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_task_exception_names_the_point(self, jobs, force_multicpu):
        with pytest.raises(SweepError, match=r"point 'p3'.*boom on 3"):
            run_tasks(_fail_on_three, [1, 2, 3, 4], jobs=jobs,
                      labels=["p1", "p2", "p3", "p4"])

    def test_worker_crash_is_a_clean_error_not_a_hang(self, force_multicpu):
        """A worker dying mid-task (OOM kill, segfault) must abort the
        sweep with an error naming a point, not wedge the pool."""
        with pytest.raises(SweepError,
                           match=r"sweep point .*worker process"):
            run_tasks(_crash_on_two, [1, 2, 3, 4], jobs=2)

    def test_labels_length_checked(self):
        with pytest.raises(SweepError, match="length mismatch"):
            run_tasks(_square, [1, 2], jobs=1, labels=["only-one"])

    def test_single_cpu_falls_back_to_serial(self, monkeypatch, caplog):
        """On a 1-CPU host a pool only adds spawn + pickling overhead on
        top of time-sliced execution, so the sweep runs serially — with
        a logged warning, never silently."""
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 1)
        with caplog.at_level("WARNING", logger=parallel_mod.__name__):
            assert run_tasks(_square, [1, 2, 3], jobs=4) == [1, 4, 9]
        assert any("falling back to serial" in record.message
                   for record in caplog.records)

    def test_multi_cpu_keeps_the_pool_quietly(self, monkeypatch, caplog):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod.os, "cpu_count", lambda: 4)
        with caplog.at_level("WARNING", logger=parallel_mod.__name__):
            assert run_tasks(_square, [1, 2, 3], jobs=2) == [1, 4, 9]
        assert not caplog.records


class TestJobsResolution:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert current_jobs() == 1

    def test_env_var_respected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert current_jobs() == 3

    def test_set_default_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        set_default_jobs(5)
        try:
            assert current_jobs() == 5
        finally:
            set_default_jobs(None)
        assert current_jobs() == 3

    def test_bad_env_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "many")
        with pytest.raises(SweepError, match="REPRO_JOBS"):
            current_jobs()

    def test_bad_default_rejected(self):
        with pytest.raises(SweepError, match="jobs must be >= 1"):
            set_default_jobs(0)


class TestFigureReportsParallel:
    """`--jobs 1` vs `--jobs 4`: identical report text (ISSUE 2)."""

    def test_fig8_report_identical_serial_vs_parallel(self):
        serial = fig8.report(fig8.run(scale=TINY, validate=VALIDATE,
                                      jobs=1))
        parallel = fig8.report(fig8.run(scale=TINY, validate=VALIDATE,
                                        jobs=4))
        assert parallel == serial
        assert "sim k-rps" in serial

    def test_fig11_report_identical_serial_vs_parallel(self):
        serial = fig11.report(fig11.run(scale=TINY, validate=VALIDATE,
                                        jobs=1))
        parallel = fig11.report(fig11.run(scale=TINY, validate=VALIDATE,
                                          jobs=4))
        assert parallel == serial
        assert "linearity" in serial
