"""Wire a complete Janus deployment inside the simulator (paper Fig. 1).

:class:`SimJanusCluster` builds, from a :class:`~repro.core.config.JanusConfig`:

- the Multi-AZ database (:class:`~repro.db.replication.ReplicatedDatabase`)
  with the ``qos_rules`` table;
- ``n_qos_servers`` QoS server nodes (optionally master/slave HA pairs),
  each registered under a stable DNS failover name;
- ``n_routers`` request-router nodes, all sharing the same ordered backend
  list (the partition map);
- a gateway load balancer (ELB model) and/or the DNS A record for the DNS
  load-balancing mode;

and exposes the measurement interface the experiments drive (throughput and
CPU-utilization windows per layer).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.config import JanusConfig
from repro.db.replication import ReplicatedDatabase
from repro.db.rulestore import RuleStore
from repro.perfmodel.calibration import Calibration, DEFAULT_CALIBRATION
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import DEFAULT_SEED, RngRegistry

from repro.server.dns import DnsService, Resolver
from repro.server.ha import HAPair
from repro.server.loadbalancer import GatewayLoadBalancer
from repro.server.qos_server import SimQoSServer
from repro.server.router import SimRequestRouter

__all__ = ["SimJanusCluster"]

#: The public endpoint name clients resolve.
ENDPOINT = "janus.example.com"


class SimJanusCluster:
    """A full simulated Janus deployment."""

    def __init__(
        self,
        config: Optional[JanusConfig] = None,
        *,
        calibration: Calibration = DEFAULT_CALIBRATION,
        seed: int = DEFAULT_SEED,
        udp_loss: float = 1e-4,
    ):
        self.config = config or JanusConfig()
        self.calib = calibration
        self.rng = RngRegistry(seed)
        self.sim = Simulation()
        self.net = Network(self.sim, self.rng, udp_loss=udp_loss)
        self.dns = DnsService(self.rng, default_ttl=self.config.dns_ttl)
        self.db = ReplicatedDatabase()
        self.rules = RuleStore(self.db)
        topo = self.config.topology
        # HA + processes > 1 composes since HAPair replicates through
        # bucket_snapshots/restore_snapshots, which aggregate and route
        # across every modeled worker process (the old one-controller
        # replication silently dropped every shard but the first).

        # --- QoS server layer (each under a stable failover DNS name) ----
        self.qos_servers: List[SimQoSServer] = []
        self.ha_pairs: List[Optional[HAPair]] = []
        self.qos_service_names: List[str] = []
        for i in range(topo.n_qos_servers):
            service_name = f"qos-{i}.janus.internal"
            master = SimQoSServer(
                self.sim, self.net, f"qos-{i}", topo.qos_instance, self.rules,
                config=self.config.server, calibration=calibration,
                rng=self.rng, shard_index=i, shard_count=topo.n_qos_servers)
            self.qos_servers.append(master)
            self.qos_service_names.append(service_name)
            if topo.qos_ha:
                slave = SimQoSServer(
                    self.sim, self.net, f"qos-{i}-slave", topo.qos_instance,
                    self.rules, config=self.config.server,
                    calibration=calibration, rng=self.rng,
                    shard_index=i, shard_count=topo.n_qos_servers)
                pair = HAPair(
                    self.sim, self.net, self.dns, service_name, master, slave,
                    replication_interval=self.config.server.ha_replication_interval)
                self.ha_pairs.append(pair)
            else:
                self.dns.register_failover(service_name, master.name)
                self.ha_pairs.append(None)

        # --- request router layer ------------------------------------------
        self.routers: List[SimRequestRouter] = []
        for i in range(topo.n_routers):
            resolver = Resolver(self.dns, self.sim.clock)
            router = SimRequestRouter(
                self.sim, self.net, f"rr-{i}", topo.router_instance,
                self.qos_service_names,
                config=self.config.router, calibration=calibration,
                rng=self.rng, resolve=resolver.resolve_one)
            self.routers.append(router)

        # --- load balancer layer -------------------------------------------
        self.gateway_lb = GatewayLoadBalancer(
            "elb", self.routers, calibration=calibration, rng=self.rng,
            clock=self.sim.clock)
        self.dns.register(ENDPOINT, [r.name for r in self.routers])

    # ------------------------------------------------------------------ #

    @property
    def endpoint(self) -> str:
        return ENDPOINT

    def new_resolver(self) -> Resolver:
        """A fresh client-host stub resolver (own TTL cache)."""
        return Resolver(self.dns, self.sim.clock)

    def active_qos_server(self, index: int) -> SimQoSServer:
        """The current master for partition ``index`` (follows failovers)."""
        pair = self.ha_pairs[index]
        if pair is not None:
            return pair.master
        return self.qos_servers[index]

    def resize_qos(self, new_count: int):
        """Elastically resize the QoS layer with state migration.

        The extension of :mod:`repro.server.elastic`: launches/retires
        servers, migrates bucket snapshots so credits survive, registers
        DNS names, and flips every router's partition map.  HA pairs are
        not supported by the resize path (plain servers only).
        """
        from repro.server.elastic import resize_qos_layer

        if any(pair is not None for pair in self.ha_pairs):
            from repro.core.errors import ConfigurationError
            raise ConfigurationError("resize_qos does not support HA pairs")

        def launch(index: int) -> SimQoSServer:
            server = SimQoSServer(
                self.sim, self.net, f"qos-{index}",
                self.config.topology.qos_instance, self.rules,
                config=self.config.server, calibration=self.calib,
                rng=self.rng, shard_index=index, shard_count=new_count)
            service_name = f"qos-{index}.janus.internal"
            self.dns.register_failover(service_name, server.name)
            return server

        fleet, report = resize_qos_layer(
            self.routers, self.qos_servers, new_count, launch,
            service_names=lambda i: f"qos-{i}.janus.internal")
        self.qos_servers = fleet
        self.qos_service_names = [f"qos-{i}.janus.internal"
                                  for i in range(new_count)]
        self.ha_pairs = [None] * new_count
        return report

    def fail_qos_server(self, index: int, *, seed_snapshots=None):
        """Kill QoS node ``index`` mid-burst and recover it.

        The simnet mirror of the live plane's dead-node reshard
        (``janus reshard remove --dead`` followed by ``add``):

        - with an HA pair, the up-to-date slave is promoted (the paper's
          §III-C minimum-downtime path) and returned;
        - without one, the dead node is replaced by a fresh server under
          the same DNS name, re-seeded from ``seed_snapshots`` (the last
          checkpoint/replica the operator holds — pass
          ``server.bucket_snapshots()`` taken before the kill).  Credit
          loss is bounded by the seed's age: at most one refill interval
          when snapshots are taken every interval.

        Deterministic under the simulation's seeded RNG, so
        kill-a-node-mid-burst tests replay exactly.
        """
        pair = self.ha_pairs[index]
        if pair is not None:
            promoted = pair.fail_master()
            self.qos_servers[index] = promoted
            return promoted
        from repro.server.elastic import replace_failed_server

        topo = self.config.topology
        self._replacements = getattr(self, "_replacements", 0) + 1
        generation = self._replacements

        def launch(i: int) -> SimQoSServer:
            server = SimQoSServer(
                self.sim, self.net, f"qos-{i}.r{generation}",
                topo.qos_instance, self.rules,
                config=self.config.server, calibration=self.calib,
                rng=self.rng, shard_index=i,
                shard_count=topo.n_qos_servers)
            self.dns.promote(self.qos_service_names[i], server.name)
            return server

        fleet, report = replace_failed_server(
            self.qos_servers, index, launch,
            seed_snapshots=seed_snapshots or ())
        self.qos_servers = fleet
        return report

    def prewarm(self, keys=None) -> None:
        """Skip first-request DB fetches (steady-state experiments)."""
        for server in self.qos_servers:
            server.mark_warm(keys)
        for pair in self.ha_pairs:
            if pair is not None and pair.slave is not None:
                pair.slave.mark_warm(keys)

    # ------------------------------------------------------------------ #
    # measurement
    # ------------------------------------------------------------------ #

    def begin_window(self) -> None:
        for router in self.routers:
            router.begin_window()
        for server in self.qos_servers:
            server.begin_window()
        self._window_start = self.sim.now

    def window_seconds(self) -> float:
        return self.sim.now - self._window_start

    def router_throughput(self) -> float:
        """Requests/second completed by the router layer in the window."""
        elapsed = self.window_seconds()
        if elapsed <= 0:
            return 0.0
        return sum(r.handled_in_window() for r in self.routers) / elapsed

    def qos_throughput(self) -> float:
        """Decisions/second made by the QoS layer in the window."""
        elapsed = self.window_seconds()
        if elapsed <= 0:
            return 0.0
        return sum(s.decisions_in_window() for s in self.qos_servers) / elapsed

    def router_cpu(self) -> float:
        """Mean router-node CPU utilization over the window (0..1)."""
        return (sum(r.cpu_utilization() for r in self.routers)
                / len(self.routers))

    def qos_cpu(self) -> float:
        """Mean QoS-node CPU utilization over the window (0..1)."""
        return (sum(s.cpu_utilization() for s in self.qos_servers)
                / len(self.qos_servers))
