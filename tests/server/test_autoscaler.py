"""Tests for the router-layer Auto Scaling group (§V-A extension)."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig, RouterConfig
from repro.core.errors import ConfigurationError
from repro.core.rules import QoSRule
from repro.server.autoscaler import AutoScaler
from repro.server.cluster import SimJanusCluster
from repro.server.router import SimRequestRouter
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient


def build(n_routers=1, router_instance="c3.large"):
    """A cluster whose tiny router layer saturates quickly."""
    config = JanusConfig(
        topology=ClusterTopology(n_routers=n_routers, n_qos_servers=1,
                                 router_instance=router_instance,
                                 qos_instance="c3.8xlarge"),
        router=RouterConfig(udp_timeout=10e-3))
    cluster = SimJanusCluster(config, seed=81)
    keys = uuid_keys(300, seed=81)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e9, capacity=1e9))
    cluster.prewarm()
    serial = {"n": n_routers}

    def launch_router() -> SimRequestRouter:
        from repro.server.dns import Resolver
        name = f"rr-{serial['n']}"
        serial["n"] += 1
        resolver = Resolver(cluster.dns, cluster.sim.clock)
        return SimRequestRouter(
            cluster.sim, cluster.net, name,
            cluster.config.topology.router_instance,
            cluster.qos_service_names, config=cluster.config.router,
            calibration=cluster.calib, rng=cluster.rng,
            resolve=resolver.resolve_one)

    return cluster, keys, launch_router


class TestScaleOut:
    def test_saturation_triggers_scale_out(self):
        cluster, keys, launch = build(n_routers=1)
        scaler = AutoScaler(
            cluster.sim, cluster.gateway_lb, launch,
            min_nodes=1, max_nodes=4, period=0.5, cooldown=0.5,
            boot_delay=0.2,
            dns_update=lambda addrs: cluster.dns.set_addresses(
                cluster.endpoint, addrs))
        # 40 closed-loop clients saturate one c3.large router.
        for i in range(40):
            ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 7),
                             mode="gateway")
        cluster.sim.run(until=8.0)
        assert any(e.action == "scale_out" for e in scaler.events)
        assert len(scaler.fleet()) >= 2
        # The new routers carry real traffic.
        added = [r for r in scaler.fleet() if r.name != "rr-0"]
        assert all(r.requests_handled > 0 for r in added)

    def test_dns_record_follows_fleet(self):
        cluster, keys, launch = build(n_routers=1)
        AutoScaler(
            cluster.sim, cluster.gateway_lb, launch,
            min_nodes=1, max_nodes=3, period=0.5, cooldown=0.5,
            boot_delay=0.1,
            dns_update=lambda addrs: cluster.dns.set_addresses(
                cluster.endpoint, addrs))
        for i in range(40):
            ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 7),
                             mode="gateway")
        cluster.sim.run(until=8.0)
        addresses, _ = cluster.dns.query(cluster.endpoint)
        assert len(addresses) == len(cluster.gateway_lb.routers)

    def test_max_nodes_respected(self):
        cluster, keys, launch = build(n_routers=1)
        scaler = AutoScaler(cluster.sim, cluster.gateway_lb, launch,
                            min_nodes=1, max_nodes=2, period=0.4,
                            cooldown=0.4, boot_delay=0.1)
        for i in range(60):
            ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 7),
                             mode="gateway")
        cluster.sim.run(until=8.0)
        assert len(scaler.fleet()) <= 2


class TestScaleIn:
    def test_idle_fleet_shrinks_to_min(self):
        cluster, keys, launch = build(n_routers=3, router_instance="c3.xlarge")
        scaler = AutoScaler(cluster.sim, cluster.gateway_lb, launch,
                            min_nodes=1, max_nodes=5, period=0.5,
                            cooldown=0.5, boot_delay=0.1)
        # One lonely client: the layer is massively over-provisioned.
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway",
                         think_time=0.01)
        cluster.sim.run(until=10.0)
        assert any(e.action == "scale_in" for e in scaler.events)
        assert len(scaler.fleet()) == 1

    def test_retired_router_drains_gracefully(self):
        cluster, keys, launch = build(n_routers=2, router_instance="c3.xlarge")
        AutoScaler(cluster.sim, cluster.gateway_lb, launch,
                   min_nodes=1, max_nodes=5, period=0.5, cooldown=0.5)
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="gateway", think_time=0.01)
        cluster.sim.run(until=10.0)
        # Every client request completed with a genuine verdict despite the
        # scale-in (graceful retirement, no dropped connections).
        assert all(not r.is_default_reply for r in client.log.records)
        assert len(client.log) > 100


class TestValidation:
    @pytest.mark.parametrize("kwargs", [
        {"min_nodes": 0},
        {"min_nodes": 5, "max_nodes": 2},
        {"scale_out_threshold": 0.2, "scale_in_threshold": 0.5},
        {"period": 0.0},
    ])
    def test_invalid_configs(self, kwargs):
        cluster, keys, launch = build()
        defaults = dict(min_nodes=1, max_nodes=4)
        defaults.update(kwargs)
        with pytest.raises(ConfigurationError):
            AutoScaler(cluster.sim, cluster.gateway_lb, launch, **defaults)


class TestLatencyPolicy:
    def test_latency_target_scales_out(self):
        """The paper's other named metric: 'the average latency observed on
        the load balancer'.  A saturated router inflates LB-observed P90;
        the scaler reacts."""
        cluster, keys, launch = build(n_routers=1)
        scaler = AutoScaler(
            cluster.sim, cluster.gateway_lb, launch,
            min_nodes=1, max_nodes=4, period=0.5, cooldown=0.5,
            boot_delay=0.2, metric="latency",
            scale_out_threshold=3e-3, scale_in_threshold=1e-3)
        for i in range(40):
            ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i * 7),
                             mode="gateway")
        cluster.sim.run(until=8.0)
        assert any(e.action == "scale_out" for e in scaler.events)
        assert len(scaler.fleet()) >= 2
        # With more routers, the observed P90 falls back under the target.
        assert cluster.gateway_lb.latency.percentile(90.0) < 3e-3

    def test_invalid_latency_thresholds(self):
        cluster, keys, launch = build()
        with pytest.raises(ConfigurationError):
            AutoScaler(cluster.sim, cluster.gateway_lb, launch,
                       metric="latency", scale_out_threshold=1e-3,
                       scale_in_threshold=2e-3)
        with pytest.raises(ConfigurationError):
            AutoScaler(cluster.sim, cluster.gateway_lb, launch,
                       metric="wishful-thinking")
