"""Multi-AZ master/standby database replication (paper §III-D).

The paper deploys RDS MySQL "in a Multi-AZ fashion": a master in one
availability zone, a standby in another, synchronous replication, and a DNS
name (managed by Route53) that always resolves to the current master.  On
master failure the standby is promoted and the DNS record flips.

:class:`ReplicatedDatabase` reproduces that contract:

- every mutating statement executed on the master is applied synchronously
  to the standby via the engine's replication hook;
- :meth:`fail_master` simulates an AZ failure: the standby is promoted to
  master, the failed node is detached, and the registered
  :class:`~repro.server.dns.DnsService` record (if any) is repointed;
- reads and writes always go to the *current* master, addressed through the
  stable :attr:`endpoint` name.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Optional, Sequence

from repro.core.errors import ReplicationError
from repro.db.engine import Engine, ResultSet

__all__ = ["ReplicatedDatabase"]


class ReplicatedDatabase:
    """A synchronous master/standby pair behind one stable endpoint name."""

    def __init__(self, endpoint: str = "qos-db.cluster.local",
                 master_az: str = "az-a", standby_az: str = "az-b"):
        self.endpoint = endpoint
        self._master = Engine(f"{endpoint}@{master_az}")
        self._standby: Optional[Engine] = Engine(f"{endpoint}@{standby_az}")
        self._master_az = master_az
        self._standby_az = standby_az
        self._lock = threading.RLock()
        self._failovers = 0
        # Optional callback invoked on failover with the new master's name;
        # the DNS layer registers here to repoint the endpoint record.
        self.on_failover: Optional[Callable[[str], None]] = None
        self._attach_hook()

    def _attach_hook(self) -> None:
        def replicate(sql_text: str, params: tuple) -> None:
            with self._lock:
                standby = self._standby
            if standby is not None:
                standby.execute(sql_text, params)
        self._master.replication_hook = replicate

    # ------------------------------------------------------------------ #
    # client-facing (same surface as Engine)
    # ------------------------------------------------------------------ #

    def execute(self, sql_text: str, params: Sequence[Any] = ()) -> ResultSet:
        """Execute against the current master (writes replicate)."""
        with self._lock:
            master = self._master
        return master.execute(sql_text, params)

    def table(self, name: str):
        with self._lock:
            return self._master.table(name)

    def table_names(self) -> list[str]:
        with self._lock:
            return self._master.table_names()

    @property
    def statements_executed(self) -> int:
        with self._lock:
            return self._master.statements_executed

    @property
    def rows_scanned(self) -> int:
        with self._lock:
            return self._master.rows_scanned

    @property
    def replication_hook(self):
        """Engine-compat: chaining external hooks is not supported."""
        return None

    # ------------------------------------------------------------------ #
    # operations
    # ------------------------------------------------------------------ #

    @property
    def master_name(self) -> str:
        with self._lock:
            return self._master.name

    @property
    def standby_name(self) -> Optional[str]:
        with self._lock:
            return self._standby.name if self._standby else None

    @property
    def failovers(self) -> int:
        return self._failovers

    @property
    def has_standby(self) -> bool:
        with self._lock:
            return self._standby is not None

    def fail_master(self) -> str:
        """Kill the master and promote the standby (§III-D failover).

        Returns the new master's node name.  Raises
        :class:`~repro.core.errors.ReplicationError` when no standby is
        available (a double failure).
        """
        with self._lock:
            if self._standby is None:
                raise ReplicationError(
                    f"{self.endpoint}: master failed with no standby available")
            self._master = self._standby
            self._standby = None
            self._master_az, self._standby_az = self._standby_az, self._master_az
            self._failovers += 1
            self._attach_hook()
            new_master = self._master.name
        if self.on_failover is not None:
            self.on_failover(new_master)
        return new_master

    def launch_standby(self) -> str:
        """Provision a fresh standby and bulk-copy the master's state.

        After a failover the operator launches a replacement standby; RDS
        seeds it from a snapshot.  We copy table-by-table under the master
        lock, then attach the synchronous hook.
        """
        with self._lock:
            if self._standby is not None:
                raise ReplicationError(f"{self.endpoint}: standby already present")
            standby = Engine(f"{self.endpoint}@{self._standby_az}")
            for name in self._master.table_names():
                src = self._master.table(name)
                with src.lock:
                    columns = src.columns
                    rows = [dict(row) for _, row in src.scan()]
                from repro.db.table import Table
                dst = Table(name, columns)
                for row in rows:
                    dst.insert(row)
                standby._tables[name] = dst
            self._standby = standby
            return standby.name
