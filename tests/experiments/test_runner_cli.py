"""Tests for the experiments runner CLI."""

from __future__ import annotations

import pytest

from repro.experiments.runner import EXPERIMENTS, main


class TestRunnerMain:
    def test_single_fast_experiment(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "[table1 finished" in out

    def test_multiple_experiments(self, capsys):
        assert main(["table1", "fig6"]) == 0
        out = capsys.readouterr().out
        assert "## table1" in out and "## fig6" in out

    def test_unknown_experiment_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fig99"])
        assert "unknown experiment" in capsys.readouterr().err

    def test_registry_covers_every_table_and_figure(self):
        assert set(EXPERIMENTS) == {
            "table1", "fig5", "fig6", "fig7", "fig8", "fig9",
            "fig10", "fig11", "fig12", "fig13"}

    def test_scale_profile_announced(self, capsys):
        main(["table1"])
        assert "scale profile: quick" in capsys.readouterr().out

    def test_jobs_flag_accepted(self, capsys):
        from repro.experiments.parallel import current_jobs
        assert main(["--jobs", "2", "table1"]) == 0
        assert "## table1" in capsys.readouterr().out
        assert current_jobs() == 1      # default restored after the run

    def test_jobs_must_be_positive(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "0", "table1"])
        assert "--jobs must be >= 1" in capsys.readouterr().err
