"""Tests for QoS-server high availability (§III-C)."""

from __future__ import annotations

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.errors import ReplicationError
from repro.core.protocol import QoSRequest
from repro.core.rules import QoSRule
from repro.server.dns import DnsService, Resolver
from repro.server.ha import HAPair, launch_replacement
from repro.server.qos_server import SimQoSServer
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


def build_pair(replication_interval=0.2, seed=21):
    sim = Simulation()
    rng = RngRegistry(seed)
    net = Network(sim, rng, udp_loss=0.0)
    dns = DnsService(rng, default_ttl=1.0)
    source = InMemoryRuleSource(
        {"k": QoSRule("k", refill_rate=0.0, capacity=1000.0)})
    master = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                          rng=rng, warm=True)
    slave = SimQoSServer(sim, net, "qos-0-slave", "c3.xlarge", source,
                         rng=rng, warm=True)
    pair = HAPair(sim, net, dns, "qos-0.janus", master, slave,
                  replication_interval=replication_interval)
    return sim, net, dns, source, pair


class TestReplication:
    def test_slave_receives_table(self):
        sim, net, dns, source, pair = build_pair()
        net.attach("rr-x", lambda s, p: None)
        for i in range(10):
            net.udp_send("rr-x", "qos-0", QoSRequest(i, "k"))
        sim.run(until=1.0)
        assert pair.replications >= 3
        slave_bucket = pair.slave.controller.bucket_for("k")
        assert slave_bucket is not None
        assert slave_bucket.peek_credit() == pytest.approx(990.0, abs=1.0)

    def test_invalid_interval(self):
        sim, net, dns, source, pair = build_pair()
        with pytest.raises(ReplicationError):
            HAPair(sim, net, dns, "x", pair.master, pair.slave,
                   replication_interval=0.0)


class TestFailover:
    def test_promoted_slave_keeps_state(self):
        """'The new master node already has an up-to-date version of the
        local QoS table' — credits survive the failover."""
        sim, net, dns, source, pair = build_pair()
        net.attach("rr-x", lambda s, p: None)
        for i in range(10):
            net.udp_send("rr-x", "qos-0", QoSRequest(i, "k"))
        sim.run(until=1.0)
        promoted = pair.fail_master()
        assert promoted.name == "qos-0-slave"
        assert dns.query("qos-0.janus")[0] == ["qos-0-slave"]
        bucket = promoted.controller.bucket_for("k")
        assert bucket.peek_credit() == pytest.approx(990.0, abs=1.0)

    def test_traffic_flows_to_new_master_via_resolver(self):
        sim, net, dns, source, pair = build_pair()
        resolver = Resolver(dns, sim.clock)
        net.attach("rr-x", lambda s, p: None)
        net.udp_send("rr-x", resolver.resolve_one("qos-0.janus"),
                     QoSRequest(1, "k"))
        sim.run(until=0.5)
        pair.fail_master()
        sim.run(until=2.0)      # let the resolver's TTL lapse
        target = resolver.resolve_one("qos-0.janus")
        assert target == "qos-0-slave"
        net.udp_send("rr-x", target, QoSRequest(2, "k"))
        sim.run(until=2.5)
        assert pair.master.decisions == 1

    def test_failover_without_slave_raises(self):
        sim, net, dns, source, pair = build_pair()
        pair.fail_master()
        with pytest.raises(ReplicationError):
            pair.fail_master()

    def test_attach_new_slave_restores_ha(self):
        sim, net, dns, source, pair = build_pair()
        pair.fail_master()
        new_slave = SimQoSServer(sim, net, "qos-0-slave2", "c3.xlarge",
                                 source, warm=True)
        pair.attach_new_slave(new_slave)
        assert pair.slave is new_slave
        assert dns.query("qos-0.janus")[0] == ["qos-0-slave"]

    def test_attach_when_slave_present_rejected(self):
        sim, net, dns, source, pair = build_pair()
        with pytest.raises(ReplicationError):
            pair.attach_new_slave(pair.slave)


class TestReplacement:
    def test_replacement_rewarns_from_checkpoints(self):
        """The non-HA path (§II-D): a replacement server seeds its buckets
        from the last check-pointed credits."""
        sim = Simulation()
        rng = RngRegistry(22)
        net = Network(sim, rng, udp_loss=0.0)
        dns = DnsService(rng, default_ttl=1.0)
        source = InMemoryRuleSource(
            {"k": QoSRule("k", refill_rate=0.0, capacity=100.0)})
        failed = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                              rng=rng, warm=True)
        dns.register_failover("qos-0.janus", failed.name)
        net.attach("rr-x", lambda s, p: None)
        for i in range(40):
            net.udp_send("rr-x", "qos-0", QoSRequest(i, "k"))
        sim.run(until=0.5)
        failed.controller.checkpoint()
        failed.fail()
        replacement = launch_replacement(
            sim, net, dns, "qos-0.janus", failed, source, rng=rng)
        assert dns.query("qos-0.janus")[0] == [replacement.name]
        net.udp_send("rr-x", replacement.name, QoSRequest(99, "k"))
        sim.run(until=1.5)
        bucket = replacement.controller.bucket_for("k")
        # 100 - 40 consumed - 1 new consume = 59.
        assert bucket.peek_credit() == pytest.approx(59.0, abs=0.5)
