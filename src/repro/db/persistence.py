"""Database snapshots: dump/load the engine's state as JSON (extension).

RDS persists to storage; our in-memory engine needs an explicit snapshot
for durability across process restarts (the CLI's ``janus serve`` uses the
rules-file variant; tests and operators use these engine-level snapshots).
The format is versioned, self-describing JSON: schema + rows per table.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.errors import SQLError
from repro.db.engine import Engine
from repro.db.sql import ColumnDef
from repro.db.table import Table

__all__ = ["dump_engine", "load_engine", "SNAPSHOT_VERSION"]

SNAPSHOT_VERSION = 1


def dump_engine(engine: Engine, path: Union[str, Path]) -> int:
    """Write every table (schema + rows) to ``path``; returns row count."""
    payload = {"version": SNAPSHOT_VERSION, "name": engine.name, "tables": {}}
    total = 0
    for name in engine.table_names():
        table = engine.table(name)
        with table.lock:
            columns = [{
                "name": c.name, "type": c.type,
                "primary_key": c.primary_key, "not_null": c.not_null,
            } for c in table.columns]
            rows = [dict(row) for _, row in table.scan()]
        payload["tables"][name] = {"columns": columns, "rows": rows}
        total += len(rows)
    Path(path).write_text(json.dumps(payload, indent=1))
    return total


def load_engine(path: Union[str, Path], *, name: str = "db") -> Engine:
    """Rebuild an :class:`Engine` from a snapshot file."""
    try:
        payload = json.loads(Path(path).read_text())
    except FileNotFoundError:
        raise SQLError(f"snapshot not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise SQLError(f"snapshot {path} is not valid JSON: {exc}") from exc
    if payload.get("version") != SNAPSHOT_VERSION:
        raise SQLError(
            f"snapshot version {payload.get('version')!r} unsupported "
            f"(expected {SNAPSHOT_VERSION})")
    engine = Engine(name or payload.get("name", "db"))
    for table_name, spec in payload.get("tables", {}).items():
        try:
            columns = [ColumnDef(c["name"], c["type"],
                                 bool(c.get("primary_key")),
                                 bool(c.get("not_null")))
                       for c in spec["columns"]]
            table = Table(table_name, columns)
            for row in spec["rows"]:
                table.insert(row)
        except (KeyError, TypeError) as exc:
            raise SQLError(f"snapshot table {table_name!r} malformed: {exc}") from exc
        engine._tables[table_name] = table
    return engine
