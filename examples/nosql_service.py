#!/usr/bin/env python3
"""A NoSQL database service with per-database quotas (§IV), over real sockets.

One tenant ("alice") has bought different access rates for two databases;
every data-plane operation is admitted through a real Janus deployment
using ``user_database_key`` QoS keys, with writes costing more credits than
reads.  A client-side traffic shaper then shows how a latency-sensitive
consumer can pre-pace to its plan and never see a rejection.

Run:  python examples/nosql_service.py
"""

from __future__ import annotations

import time

from repro.apps import NoSqlService, ThrottledError
from repro.core import QoSRule, TrafficShaper
from repro.core.keys import user_database_key
from repro.runtime import LocalCluster


def main() -> None:
    hot = user_database_key("alice", "orders")      # production database
    cold = user_database_key("alice", "archive")    # cheap tier
    slow = user_database_key("alice", "audit")      # paced consumer's tier
    with LocalCluster(n_routers=1, n_qos_servers=2) as cluster:
        cluster.rules.put_rule(QoSRule(hot, refill_rate=200.0, capacity=50.0))
        cluster.rules.put_rule(QoSRule(cold, refill_rate=5.0, capacity=6.0))
        cluster.rules.put_rule(QoSRule(slow, refill_rate=10.0, capacity=6.0))
        client = cluster.client()
        service = NoSqlService(lambda key, cost: client.check(key, cost),
                               write_cost=2.0)

        print("writing 10 orders (writes cost 2 credits each)...")
        for i in range(10):
            service.put("alice", "orders", f"order-{i}", {"total": 10 * i})
        print(f"  orders stored: {service.database_size('orders')}")

        print("\nhammering the archive tier (capacity 6, writes cost 2):")
        stored = throttled = 0
        for i in range(8):
            try:
                service.put("alice", "archive", f"old-{i}", i)
                stored += 1
            except ThrottledError:
                throttled += 1
        print(f"  {stored} stored, {throttled} throttled "
              f"(3 writes x 2 credits fit the burst)")

        print("\nscans are weighted by size:")
        result = service.scan("alice", "orders", limit=50)   # costs 5
        print(f"  scanned {len(result.value)} orders in one 5-credit op")

        print("\nclient-side shaping against the audit plan "
              "(10 rps, burst 6; a write costs 2 credits):")
        # Shape in write units: 5 writes/s sustained, 3-write burst.
        shaper = TrafficShaper.from_rule(
            QoSRule(slow, refill_rate=10.0 / 2.0, capacity=3.0))
        t0 = time.monotonic()
        rejections = 0
        for i in range(10):
            time.sleep(shaper.reserve())
            try:
                service.put("alice", "audit", f"paced-{i}", i)
            except ThrottledError:
                rejections += 1
        elapsed = time.monotonic() - t0
        print(f"  10 paced writes in {elapsed:.1f}s "
              f"({10 / elapsed:.1f} writes/s), {rejections} rejections "
              f"(pre-pacing means the policer never says no)")
        print(f"\nservice totals: {service.served} served, "
              f"{service.throttled} throttled")


if __name__ == "__main__":
    main()
