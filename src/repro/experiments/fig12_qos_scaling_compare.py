"""Fig. 12 — vertical vs horizontal scalability of the QoS server.

Replots Figs. 10 and 11 against vCPU cores in the QoS layer.  Paper shape:
"Janus achieves slightly higher throughput when vertical scaling is used"
at equal vCPUs, but vertical scaling tops out at the biggest instance
(32 vCPUs) while horizontal scaling keeps going (10 nodes = 40 vCPUs beats
one c3.8xlarge).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.experiments import fig10_qos_vertical, fig11_qos_horizontal
from repro.experiments.scale import Scale, current_scale
from repro.experiments.scaling import ScalingPoint
from repro.metrics.report import format_table

__all__ = ["run", "report", "Fig12Result"]


@dataclass(frozen=True, slots=True)
class Fig12Result:
    vertical: list[ScalingPoint]
    horizontal: list[ScalingPoint]

    def vertical_advantage(self) -> list[tuple[int, float]]:
        """(vcpus, vertical/horizontal throughput ratio) at matching cores."""
        by_cores_h = {p.swept_vcpus: p for p in self.horizontal}
        out = []
        for pv in self.vertical:
            ph = by_cores_h.get(pv.swept_vcpus)
            if ph is not None:
                out.append((pv.swept_vcpus,
                            pv.model_throughput / ph.model_throughput))
        return out

    @property
    def horizontal_peak(self) -> float:
        return max(p.model_throughput for p in self.horizontal)

    @property
    def vertical_peak(self) -> float:
        return max(p.model_throughput for p in self.vertical)


def run(scale: Optional[Scale] = None) -> Fig12Result:
    scale = scale or current_scale()
    return Fig12Result(
        vertical=fig10_qos_vertical.run(scale, validate=()),
        horizontal=fig11_qos_horizontal.run(scale, validate=()))


def report(result: Optional[Fig12Result] = None) -> str:
    result = result or run()
    by_cores_h = {p.swept_vcpus: p for p in result.horizontal}
    rows = []
    for pv in result.vertical:
        ph = by_cores_h.get(pv.swept_vcpus)
        rows.append((
            pv.swept_vcpus, pv.label, round(pv.model_throughput / 1e3, 1),
            "-" if ph is None else ph.label,
            "-" if ph is None else round(ph.model_throughput / 1e3, 1)))
    for ph in result.horizontal:
        if ph.swept_vcpus > max(p.swept_vcpus for p in result.vertical):
            rows.append((ph.swept_vcpus, "-", "-", ph.label,
                         round(ph.model_throughput / 1e3, 1)))
    table = format_table(
        ("vCPU", "vertical config", "k-rps", "horizontal config", "k-rps"),
        rows,
        title="Fig. 12: QoS server vertical vs horizontal scaling")
    ratios = result.vertical_advantage()
    mean_ratio = sum(r for _, r in ratios) / len(ratios) if ratios else 1.0
    return (f"{table}\n"
            f"vertical/horizontal throughput ratio at equal vCPUs: "
            f"{mean_ratio:.3f} (paper: slightly > 1); "
            f"horizontal peak {result.horizontal_peak / 1e3:.1f} k vs "
            f"vertical peak {result.vertical_peak / 1e3:.1f} k rps")
