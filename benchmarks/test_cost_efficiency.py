"""Bench: cost efficiency across the Table I catalog (extension analysis).

Folds Table I's prices into the capacity model: dollars per million
admission decisions per instance type, and the cheapest deployments for
representative targets (including the paper's 100 k rps headline point).
"""

from __future__ import annotations


from repro.metrics.report import format_table
from repro.perfmodel.cost import CostModel


def test_cost_per_million_decisions(benchmark, report_sink):
    model = CostModel()
    rows = benchmark(model.efficiency_table)
    pretty = [(name, f"{cap / 1e3:.1f}k", f"${usd:.4f}")
              for name, cap, usd in rows]
    report_sink(format_table(
        ("QoS instance", "capacity (rps)", "USD per 1M decisions"),
        pretty,
        title="Cost efficiency of the QoS layer (Table I prices)"))
    costs = [usd for _, _, usd in rows]
    assert costs == sorted(costs, reverse=True)   # bigger = mildly cheaper


def test_cheapest_deployments(benchmark, report_sink):
    model = CostModel()

    def sweep():
        return [(target, model.cheapest_for(target))
                for target in (5_000, 25_000, 100_000, 250_000)]

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    pretty = []
    for target, best in rows:
        assert best is not None
        pretty.append((
            f"{target / 1e3:.0f}k rps",
            f"{best.topology.n_qos_servers}x {best.topology.qos_instance}",
            f"{best.topology.n_routers}x {best.topology.router_instance}",
            f"{best.capacity_rps / 1e3:.1f}k",
            f"${best.usd_per_hour:.2f}/hr",
            f"${best.usd_per_million_decisions:.4f}"))
    report_sink(format_table(
        ("target", "QoS layer", "router layer", "capacity",
         "bill", "USD/1M decisions"), pretty,
        title="Cheapest Table I deployments per admission target"))
    # The paper's headline point costs single-digit dollars per hour.
    headline = dict(rows)[100_000]
    assert headline.usd_per_hour < 12.0
    assert headline.capacity_rps > 100_000
