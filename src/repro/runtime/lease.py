"""Router-side credit-lease plane (hot-key tracking + local admission).

The credit-lease optimisation (DESIGN.md, "Credit leasing") moves
admission for *hot* QoS keys from the wire to the router: the router
asks the key's owning QoS server for a short-TTL lease of ``k`` credits
(protocol-v2 ``LEASE_REQ``), the server debits the bucket up front and
answers with a ``LEASE_GRANT``, and while the lease is live the router
admits requests for that key locally by decrementing the leased balance
— zero datagrams on the hot path.

Correctness contract (the over-admission bound):

- the server debits at *grant* time, so however the router spends (or
  loses) the balance, aggregate admission never exceeds bucket credit
  plus the sum of outstanding grants — itself capped per key by
  ``max_lease_fraction * capacity``;
- a lease may only *admit* locally, never deny: on a cache miss, an
  expired lease, or an insufficient balance the check falls through to
  the ordinary wire exchange, so leasing can starve nobody;
- the router stops admitting at the lease expiry it recorded locally
  and returns/renews slightly *before* that deadline, so the unused
  remainder is re-credited while the server still honours the ledger
  entry (a late return is simply dropped by the server: under-admission
  only, bounded by one grant per key per TTL).

The manager is wired between :class:`~repro.runtime.http_router.
RequestRouterDaemon` (which consults :meth:`LeaseManager.check_local`
on every check) and :class:`~repro.runtime.udp_channel.ChannelSet`
(which carries lease frames on the existing per-backend sockets and
feeds grants/revokes back through :meth:`LeaseManager.on_message`).
The transport is injected as two callables — ``send(backend, payload)``
and ``schedule(delay, fn)`` — so this module has no socket code and no
import cycle with the channel.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

from repro.core.config import RouterConfig
from repro.core.protocol import (
    LeaseGrant,
    LeaseRequest,
    LeaseRevoke,
    RequestIdGenerator,
    encode_lease_request_frame,
)

__all__ = ["HotKeyTracker", "LeaseManager", "RouterLease"]

#: Fraction of the granted TTL after which the router proactively
#: returns/renews.  The margin keeps the return inside the server's
#: ledger window even with one datagram's worth of delay.
_RENEW_FRACTION = 0.8

#: A pending LEASE_REQ with no grant after this many seconds is
#: forgotten (the datagram or its reply was lost); the key may re-ask.
_PENDING_TTL = 1.0


class HotKeyTracker:
    """Approximate per-key hit counter with periodic halving decay.

    A plain dict of counts, halved every ``window`` seconds so that
    sustained traffic keeps a key hot while bursts age out.  Updates
    are racy by design (a lost increment under concurrent handlers is
    harmless for a hotness heuristic); the decay pass is guarded by a
    non-blocking lock so exactly one thread pays for it.

    Memory bound: once ``max_keys`` distinct keys are tracked, *new*
    keys are not inserted — they simply cannot become hot until decay
    prunes cold entries — so a hostile key-churn workload cannot grow
    the tracker without bound.
    """

    __slots__ = ("threshold", "window", "max_keys",
                 "_counts", "_decay_at", "_decay_lock")

    def __init__(self, threshold: int, window: float, max_keys: int,
                 *, now: Optional[float] = None):
        self.threshold = threshold
        self.window = window
        self.max_keys = max_keys
        self._counts: dict[str, int] = {}
        self._decay_at = (time.monotonic() if now is None else now) + window
        self._decay_lock = threading.Lock()

    def hit(self, key: str, now: float) -> bool:
        """Count one check for ``key``; True when the key is hot."""
        self._maybe_decay(now)
        counts = self._counts
        value = counts.get(key)
        if value is None:
            if len(counts) >= self.max_keys:
                return False
            value = 0
        counts[key] = value = value + 1
        return value >= self.threshold

    def _maybe_decay(self, now: float) -> None:
        if now < self._decay_at \
                or not self._decay_lock.acquire(blocking=False):
            return
        try:
            # Catch up one halving per elapsed window, so a key that
            # stopped getting hits still cools off with wall time.
            while now >= self._decay_at:
                self._decay_at += self.window
                counts = self._counts
                if not counts:
                    self._decay_at = now + self.window
                    return
                self._counts = {k: v >> 1 for k, v in counts.items()
                                if v >= 2}
        finally:
            self._decay_lock.release()

    def count(self, key: str, now: Optional[float] = None) -> int:
        """Current count for ``key``, decayed to ``now`` when given."""
        if now is not None:
            self._maybe_decay(now)
        return self._counts.get(key, 0)

    def __len__(self) -> int:
        return len(self._counts)


class RouterLease:
    """One live lease held by the router: a local balance with a deadline."""

    __slots__ = ("key", "lease_id", "backend", "granted", "balance",
                 "expiry", "lock")

    def __init__(self, key: str, lease_id: int, backend: tuple[str, int],
                 granted: float, expiry: float):
        self.key = key
        self.lease_id = lease_id
        self.backend = backend
        self.granted = granted
        self.balance = granted
        self.expiry = expiry
        self.lock = threading.Lock()


class _PendingAsk:
    """A LEASE_REQ in flight, matched to its grant by request id."""

    __slots__ = ("key", "backend", "deadline", "span")

    def __init__(self, key: str, backend: tuple[str, int], deadline: float,
                 span=None):
        self.key = key
        self.backend = backend
        self.deadline = deadline
        self.span = span


class LeaseManager:
    """The router's lease cache: tracks hotness, asks, admits, renews.

    Thread model: ``check_local`` runs on every HTTP handler thread;
    ``on_message`` and the TTL callbacks run on the channel's event
    thread.  ``_lock`` guards the lease/pending/cooldown dicts; each
    :class:`RouterLease` carries its own lock for the balance so hot
    keys do not serialize against table mutations.
    """

    def __init__(self, config: RouterConfig, *,
                 tracer=None, clock: Callable[[], float] = time.monotonic):
        self._config = config
        self._clock = clock
        self._tracer = tracer
        self._tracker = HotKeyTracker(
            config.lease_hot_threshold, config.lease_window,
            config.lease_max_keys, now=clock())
        self._ids = RequestIdGenerator()
        self._lock = threading.Lock()
        self._leases: dict[str, RouterLease] = {}
        self._pending: dict[int, _PendingAsk] = {}
        self._pending_keys: set[str] = set()
        #: Keys recently refused a lease; no re-ask until the deadline.
        self._cooldown: dict[str, float] = {}
        # Injected by the router after the channel is built:
        #   send(backend, payload)   -- fire-and-forget datagram
        #   schedule(delay, fn)      -- run fn on the event thread later
        self.send: Optional[Callable[[tuple[str, int], bytes], None]] = None
        self.schedule: Optional[Callable[[float, Callable[[], None]], None]] \
            = None
        # Counters (GIL-atomic increments; exported via fn= callbacks).
        self.local_admits = 0
        self.requests_sent = 0
        self.grants = 0
        self.refusals = 0
        self.revoked = 0
        self.expired = 0
        self.returned_credits = 0.0
        self.renewals = 0
        self.send_errors = 0

    # ------------------------------------------------------------------ #
    # hot path (HTTP handler threads)
    # ------------------------------------------------------------------ #

    def check_local(self, key: str, cost: float,
                    backend: tuple[str, int], trace_id: int = 0) -> bool:
        """Try to admit ``key`` from leased balance; never denies.

        Returns True when the check was admitted locally (the caller
        skips the wire).  False means "no verdict": fall through to the
        ordinary wire exchange.  As a side effect, counts the key in the
        hotness tracker and fires a LEASE_REQ when the key crosses the
        hot threshold and no lease/ask is outstanding.
        """
        now = self._clock()
        hot = self._tracker.hit(key, now)
        # Lock-free hot-path read: dict.get is atomic under the GIL and
        # a stale/missing lease fails safe — the check falls through to
        # the ordinary wire exchange.  Balance mutation below takes the
        # per-lease lock.
        # janus-lint: disable=guard-inference
        lease = self._leases.get(key)
        if lease is not None and now < lease.expiry:
            admitted = False
            with lease.lock:
                if lease.balance >= cost:
                    lease.balance -= cost
                    admitted = True
            if admitted:
                self.local_admits += 1
                return True
            if hot:
                # The balance drained before the TTL: top up early (one
                # frame returns the dregs and asks afresh) instead of
                # paying the wire for the rest of the lease window.
                self._maybe_ask(key, backend, now, trace_id, refresh=lease)
        elif hot and lease is None:
            self._maybe_ask(key, backend, now, trace_id)
        return False

    def _maybe_ask(self, key: str, backend: tuple[str, int], now: float,
                   trace_id: int,
                   refresh: Optional[RouterLease] = None) -> None:
        """Fire one LEASE_REQ for a hot key, deduplicated and cooled.

        ``refresh`` names a live-but-drained lease to top up: its
        remaining balance is harvested into the request's return fields
        and the eventual grant replaces it in the cache.
        """
        send = self.send
        if send is None:
            return
        return_credits, return_lease_id = 0.0, 0
        with self._lock:
            # Expire lost asks first: a key whose LEASE_REQ datagram
            # vanished must be able to re-ask once its pending entry
            # ages out, without waiting for some other key's ask.
            self._expire_pending_locked(now)
            if key in self._pending_keys:
                return
            if refresh is None and key in self._leases:
                return
            cooldown = self._cooldown.get(key)
            if cooldown is not None:
                if now < cooldown:
                    return
                del self._cooldown[key]
            if refresh is None and len(self._leases) + len(self._pending_keys) \
                    >= self._config.lease_max_keys:
                return
            if refresh is not None:
                with refresh.lock:
                    return_credits = refresh.balance
                    refresh.balance = 0.0
                return_lease_id = refresh.lease_id
                self.renewals += 1
            request_id = self._ids.next_id()
            span = (self._tracer.start(trace_id, "router.lease_req",
                                       "router", {"key": key})
                    if trace_id and self._tracer is not None else None)
            self._pending[request_id] = _PendingAsk(
                key, backend, now + _PENDING_TTL, span)
            self._pending_keys.add(key)
        request = LeaseRequest(
            request_id=request_id, key=key,
            credits=self._config.lease_credits,
            ttl_ms=max(1, int(self._config.lease_ttl * 1000.0)),
            return_credits=return_credits,
            return_lease_id=return_lease_id)
        self._send_frame(backend, [request], trace_id)
        self.requests_sent += 1
        if return_credits:
            self.returned_credits += return_credits

    def _expire_pending_locked(self, now: float) -> None:
        """Drop asks whose grant never arrived (lost datagrams)."""
        if not self._pending:
            return
        dead = [rid for rid, ask in self._pending.items()
                if now >= ask.deadline]
        for rid in dead:
            ask = self._pending.pop(rid)
            self._pending_keys.discard(ask.key)
            if ask.span is not None:
                self._tracer.finish(ask.span, outcome="lost")

    def _send_frame(self, backend: tuple[str, int],
                    requests: list[LeaseRequest], trace_id: int = 0) -> None:
        """Encode and fire one LEASE_REQ frame; losses are tolerated."""
        send = self.send
        if send is None:
            return
        try:
            send(backend, encode_lease_request_frame(requests, trace_id))
        except OSError:
            self.send_errors += 1

    # ------------------------------------------------------------------ #
    # channel callbacks (event thread)
    # ------------------------------------------------------------------ #

    def on_message(self, message, backend: tuple[str, int]) -> None:
        """Dispatch a decoded LEASE_GRANT/LEASE_REVOKE from the channel."""
        if isinstance(message, LeaseGrant):
            self._on_grant(message, backend)
        elif isinstance(message, LeaseRevoke):
            self._on_revoke(message)

    def _on_grant(self, grant: LeaseGrant, backend: tuple[str, int]) -> None:
        now = self._clock()
        with self._lock:
            ask = self._pending.pop(grant.request_id, None)
            if ask is not None:
                self._pending_keys.discard(ask.key)
            if ask is None or ask.key != grant.key:
                # Unsolicited or stale (e.g. the renewal's grant raced a
                # revoke): any credit it carries is already debited on
                # the server and simply goes unspent — safe, and
                # reclaimed one TTL later by the server-side expiry.
                return
            if grant.lease_id == 0 or grant.credits <= 0.0:
                self.refusals += 1
                self._cooldown[ask.key] = now + self._config.lease_window
                if len(self._cooldown) > self._config.lease_max_keys:
                    self._cooldown = {k: t for k, t in self._cooldown.items()
                                      if t > now}
                if ask.span is not None:
                    self._tracer.finish(ask.span, outcome="refused")
                return
            ttl = grant.ttl_ms / 1000.0
            lease = RouterLease(grant.key, grant.lease_id, backend,
                                grant.credits, now + ttl)
            self._leases[grant.key] = lease
            self.grants += 1
            if ask.span is not None:
                self._tracer.finish(ask.span, outcome="granted",
                                    lease_id=grant.lease_id,
                                    credits=grant.credits)
        schedule = self.schedule
        if schedule is not None:
            schedule(ttl * _RENEW_FRACTION,
                     lambda: self._on_ttl(lease))

    def _on_revoke(self, revoke: LeaseRevoke) -> None:
        """Server-initiated revoke (rule push): drop the lease at once."""
        with self._lock:
            lease = self._leases.get(revoke.key)
            if lease is None or lease.lease_id != revoke.lease_id:
                return
            del self._leases[revoke.key]
            self.revoked += 1
        # The remaining balance is NOT returned: the server already
        # re-materialized the bucket from the new rule, and the old
        # ledger entry died with it.  Dropping the balance errs toward
        # under-admission, the safe side.

    def drop_moved(self, route) -> int:
        """Drop every lease whose key no longer routes to its backend.

        Called by :meth:`RequestRouterDaemon.apply_topology` at the
        reshard cutover: ``route`` is the router's *new* partition
        function.  A moved key's lease was minted by the old owner,
        whose transferred ledger entry travelled to the new owner
        inside the bucket snapshot — so the debit survives and the
        balance must NOT be returned (same under-admission-safe
        accounting as :meth:`_on_revoke`; returning it to the new
        owner would mint credit the snapshot already carries).
        """
        dropped = 0
        with self._lock:
            for key in [key for key, lease in self._leases.items()
                        if tuple(route(key)) != tuple(lease.backend)]:
                del self._leases[key]
                dropped += 1
            self.revoked += dropped
        return dropped

    def _on_ttl(self, lease: RouterLease) -> None:
        """Deadline callback: return the remainder, renew if still hot."""
        now = self._clock()
        with self._lock:
            current = self._leases.get(lease.key)
            if current is not lease:
                return                      # revoked or replaced meanwhile
            del self._leases[lease.key]
        with lease.lock:
            remainder = lease.balance
            lease.balance = 0.0
        self.expired += 1
        # Renew only for a lease that both saw real use this window and
        # whose key still counts as warm — an untouched balance means
        # the traffic moved on, so hand everything back.
        still_hot = (remainder < lease.granted
                     and self._tracker.count(lease.key, now)
                     >= max(1, self._config.lease_hot_threshold // 2))
        want = self._config.lease_credits if still_hot else 0.0
        if remainder <= 0.0 and not still_hot:
            return                          # nothing to say to the server
        with self._lock:
            request_id = self._ids.next_id()
            if still_hot:
                self._pending[request_id] = _PendingAsk(
                    lease.key, lease.backend, now + _PENDING_TTL)
                self._pending_keys.add(lease.key)
                self.renewals += 1
        request = LeaseRequest(
            request_id=request_id, key=lease.key, credits=want,
            ttl_ms=max(1, int(self._config.lease_ttl * 1000.0)),
            return_credits=remainder, return_lease_id=lease.lease_id)
        self._send_frame(lease.backend, [request])
        if want:
            self.requests_sent += 1
        if remainder:
            self.returned_credits += remainder

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    def active_leases(self) -> int:
        # Point-in-time gauge: len() is atomic under the GIL.
        # janus-lint: disable=guard-inference
        return len(self._leases)

    def outstanding_balance(self) -> float:
        """Sum of unspent leased credit held locally."""
        with self._lock:
            leases = list(self._leases.values())
        return sum(lease.balance for lease in leases)

    def stats(self) -> dict:
        return {
            "local_admits": self.local_admits,
            "requests_sent": self.requests_sent,
            "grants": self.grants,
            "refusals": self.refusals,
            "revoked": self.revoked,
            "expired": self.expired,
            "renewals": self.renewals,
            "returned_credits": self.returned_credits,
            "send_errors": self.send_errors,
            # Point-in-time gauge: len() is atomic under the GIL.
            "active": len(self._leases),  # janus-lint: disable=guard-inference
            "tracked_keys": len(self._tracker),
        }
