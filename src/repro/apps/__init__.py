"""Application substrates: the generic QoS wrapper and the photo-sharing app."""

from repro.apps.memcached import Memcached
from repro.apps.nosql import NoSqlService, OpResult, ThrottledError
from repro.apps.photoshare import PageView, PhotoShareApp
from repro.apps.webapp import (
    HTTP_FORBIDDEN,
    HTTP_OK,
    ServiceResult,
    SimWebService,
)

__all__ = [
    "HTTP_FORBIDDEN",
    "HTTP_OK",
    "Memcached",
    "NoSqlService",
    "OpResult",
    "PageView",
    "PhotoShareApp",
    "ServiceResult",
    "SimWebService",
    "ThrottledError",
]
