"""determinism: seeded RNGs only, no wall clocks, no set iteration."""

from __future__ import annotations

RULE = ["determinism"]
SCOPE = "simnet"


def test_unseeded_global_random_flagged(lint):
    result = lint("""
    import random

    def jitter():
        return random.random() * 0.1
    """, rules=RULE, subdir=SCOPE)
    assert [f.rule for f in result.findings] == ["determinism"]
    assert "random.random()" in result.findings[0].message


def test_seeded_random_instance_passes(lint):
    result = lint("""
    import random

    def make_stream(seed):
        rng = random.Random(seed ^ 0x9015)
        return rng.random()
    """, rules=RULE, subdir=SCOPE)
    assert result.ok


def test_aliased_module_tracked(lint):
    result = lint("""
    import random as _random

    def draw():
        return _random.randint(0, 10)
    """, rules=RULE, subdir="experiments")
    assert [f.rule for f in result.findings] == ["determinism"]


def test_from_import_of_random_function_flagged(lint):
    result = lint("""
    from random import shuffle

    def mix(items):
        shuffle(items)
    """, rules=RULE, subdir="workload")
    assert [f.rule for f in result.findings] == ["determinism"]


def test_wall_clocks_flagged(lint):
    result = lint("""
    import time
    from datetime import datetime

    def stamp():
        return time.time(), datetime.now()
    """, rules=RULE, subdir=SCOPE)
    assert [f.rule for f in result.findings] == ["determinism"] * 2


def test_set_iteration_flagged(lint):
    result = lint("""
    def visit(nodes):
        for node in set(nodes):
            node.fire()
        return [n.name for n in {n for n in nodes}]
    """, rules=RULE, subdir=SCOPE)
    assert [f.rule for f in result.findings] == ["determinism"] * 2
    assert "sorted" in result.findings[0].message


def test_sorted_set_iteration_passes(lint):
    result = lint("""
    def visit(nodes):
        for node in sorted(set(nodes)):
            node.fire()
    """, rules=RULE, subdir=SCOPE)
    assert result.ok


def test_out_of_scope_module_ignored(lint):
    result = lint("""
    import random

    def jitter():
        return random.random()
    """, rules=RULE, subdir="runtime")
    assert result.ok
