"""Tests for QoS key composition (§II, §IV use cases)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import ConfigurationError
from repro.core.keys import (
    bulk_keys,
    compose_key,
    ip_key,
    split_key,
    user_agent_key,
    user_database_key,
    user_key,
)


class TestComposition:
    def test_user_key(self):
        assert user_key("alice") == "user:alice"

    def test_user_database_key(self):
        assert user_database_key("alice", "photos") == "nosql:alice:photos"

    def test_ip_key(self):
        assert ip_key("10.0.0.1") == "ip:10.0.0.1"

    def test_user_agent_key_prefix(self):
        assert user_agent_key("Googlebot/2.1").startswith("ua:")

    def test_separator_in_component_is_escaped(self):
        # Different tuples must never alias the same key string.
        a = compose_key("nosql", "ali:ce", "db")
        b = compose_key("nosql", "ali", "ce:db")
        c = compose_key("nosql", "ali", "ce", "db")
        assert len({a, b, c}) == 3

    def test_empty_namespace_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_key("", "x")

    def test_empty_component_rejected(self):
        with pytest.raises(ConfigurationError):
            compose_key("ns", "")

    def test_bulk_keys(self):
        keys = bulk_keys("user", ["a", "b"])
        assert keys == ["user:a", "user:b"]


class TestRoundTrip:
    @given(st.lists(st.text(min_size=1, max_size=20), min_size=1, max_size=5))
    def test_split_inverts_compose(self, parts):
        key = compose_key("ns", *parts)
        assert split_key(key) == ["ns", *parts]

    @given(st.lists(st.text(alphabet=":\\ab", min_size=1, max_size=8),
                    min_size=1, max_size=4))
    def test_adversarial_separators_round_trip(self, parts):
        key = compose_key("n", *parts)
        assert split_key(key) == ["n", *parts]

    @given(
        st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=3),
        st.lists(st.text(min_size=1, max_size=10), min_size=1, max_size=3),
    )
    def test_injective(self, parts_a, parts_b):
        if parts_a != parts_b:
            assert compose_key("ns", *parts_a) != compose_key("ns", *parts_b)
