"""Server-side reshard state: transfer-window freeze + chunk intake.

One :class:`ReshardState` hangs off every :class:`QoSServerDaemon`
(procplane shard workers inherit it).  It is consulted on the worker
hot path through a single attribute load (``state.active`` is ``False``
outside a transfer window, making the steady-state cost one branch) and
mutated only by TOPOLOGY / SNAPSHOT_XFER frames:

- **PREPARE(e, map)** — install the pending map.  Until COMMIT/ABORT,
  every owned key whose owner under the *pending* map is not this
  server is *frozen*: admission requests get an immediate default
  reply (``is_default_reply`` set, the §III-B degradation model) and
  lease asks are refused — the old owner spends no credit that the
  in-flight snapshot already carried away.
- **SNAPSHOT chunk** — restore the carried buckets into the local
  controller, deduplicating ``(xfer_id, seq)`` so a retransmit after a
  lost ack never double-restores credit; always ack.
- **COMMIT(e)** — adopt the pending map as committed and lift the
  freeze.  **ABORT(e)** lifts the freeze without adopting.

Epochs make every message idempotent: announcements at or below the
committed epoch are acked but ignored.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Optional

from repro.core.hashing import crc32_of
from repro.core.protocol import (
    TOPOLOGY_ABORT,
    TOPOLOGY_COMMIT,
    TOPOLOGY_PREPARE,
    XFER_ACK_TOPOLOGY,
    SnapshotChunk,
    TopologyUpdate,
    XferAck,
)

__all__ = ["ReshardState"]

#: Transfers remembered for chunk deduplication; beyond this, the
#: oldest transfer's seen-set is dropped (its retransmits would by then
#: be long past the sender's retry budget anyway).
_MAX_REMEMBERED_XFERS = 64


class ReshardState:
    """Topology view of one QoS backend (thread-safe, hot-path cheap)."""

    def __init__(self, address: "tuple[str, int]", *,
                 default_verdict: bool = True):
        #: The address routers aim at this backend — a worker's private
        #: port in portmap mode, the shared fan-in address in reuseport
        #: mode (node-granularity ownership there).
        self.address = tuple(address)
        #: Verdict carried by transfer-window default replies.  Matches
        #: the router's fail-open default so the degradation model is
        #: consistent end to end.
        self.default_verdict = default_verdict
        self.committed_epoch = 0
        self._lock = threading.Lock()
        #: ``(epoch, backends)`` of an announced-but-uncommitted map;
        #: also readable without the lock (single reference load) by
        #: the hot path via :attr:`active` / :meth:`frozen`.
        self._pending: "Optional[tuple[int, tuple]]" = None
        self._committed_backends: "Optional[tuple]" = None
        self._seen: "OrderedDict[int, set[int]]" = OrderedDict()
        # Counters (GIL-atomic increments, read by metrics closures).
        self.transfer_default_replies = 0
        self.lease_refusals_frozen = 0
        self.chunks_received = 0
        self.chunks_duplicate = 0
        self.keys_restored = 0
        self.keys_purged = 0
        self.topology_frames = 0

    # ------------------------------------------------------------------ #
    # hot path
    # ------------------------------------------------------------------ #

    @property
    def active(self) -> bool:
        """Is a transfer window open (PREPARE seen, no COMMIT/ABORT)?"""
        return self._pending is not None

    def frozen(self, key: str) -> bool:
        """Is ``key`` moving away from this backend under the pending map?

        Only meaningful while :attr:`active`; the caller gates on that
        so the steady-state hot path pays one attribute load.
        """
        pending = self._pending
        if pending is None:
            return False
        backends = pending[1]
        return backends[crc32_of(key) % len(backends)] != self.address

    # ------------------------------------------------------------------ #
    # frame intake
    # ------------------------------------------------------------------ #

    def on_topology(self, update: TopologyUpdate, *,
                    local_keys=None, drop=None) -> XferAck:
        """Apply one TOPOLOGY announcement; returns the ack to send.

        At COMMIT, keys this backend no longer owns under the committed
        map are purged from the local controller via ``drop(keys)``
        (``local_keys()`` enumerates the resident table).  Their
        snapshots — credit and lease ledger — travelled during the
        window, so the stale residents would double-count credit in
        fleet-wide accounting and check-point stale values over the new
        owner's.  The purge runs outside this object's lock (``drop``
        takes the controller's shard locks).
        """
        self.topology_frames += 1
        committed = False
        with self._lock:
            if update.epoch > self.committed_epoch:
                if update.phase == TOPOLOGY_PREPARE:
                    self._pending = (update.epoch, update.backends)
                elif update.phase == TOPOLOGY_COMMIT:
                    self.committed_epoch = update.epoch
                    self._committed_backends = update.backends
                    self._pending = None
                    committed = True
                elif update.phase == TOPOLOGY_ABORT:
                    pending = self._pending
                    if pending is not None and pending[0] == update.epoch:
                        self._pending = None
        if committed and local_keys is not None and drop is not None:
            backends = update.backends
            moved = [key for key in local_keys()
                     if backends[crc32_of(key) % len(backends)]
                     != self.address]
            if moved:
                self.keys_purged += drop(moved)
        # Stale epochs still ack: the coordinator retransmits until
        # acked, and re-delivery after a commit must not wedge it.
        return XferAck(XFER_ACK_TOPOLOGY, update.epoch, update.phase)

    def on_chunk(self, chunk: SnapshotChunk, restore) -> XferAck:
        """Apply one SNAPSHOT_XFER chunk; returns the ack to send.

        ``restore(buckets)`` is the controller's restore entry point; it
        runs outside this object's lock (it takes the controller's own
        shard locks).  Duplicate ``(xfer_id, seq)`` chunks are acked
        without a second restore — between the first restore and a
        retransmit, live traffic may already have spent restored credit,
        and re-applying the snapshot would mint it back.
        """
        with self._lock:
            seen = self._seen.get(chunk.xfer_id)
            if seen is None:
                seen = set()
                self._seen[chunk.xfer_id] = seen
                while len(self._seen) > _MAX_REMEMBERED_XFERS:
                    self._seen.popitem(last=False)
            duplicate = chunk.seq in seen
            if not duplicate:
                seen.add(chunk.seq)
        if duplicate:
            self.chunks_duplicate += 1
        else:
            self.chunks_received += 1
            restore(chunk.buckets)
            self.keys_restored += len(chunk.buckets)
        return XferAck(chunk.xfer_id, chunk.epoch, chunk.seq)

    # ------------------------------------------------------------------ #

    def status(self) -> dict:
        pending = self._pending
        return {
            "address": list(self.address),
            "committed_epoch": self.committed_epoch,
            "pending_epoch": pending[0] if pending else None,
            "transfer_window_open": pending is not None,
            "transfer_default_replies": self.transfer_default_replies,
            "lease_refusals_frozen": self.lease_refusals_frozen,
            "chunks_received": self.chunks_received,
            "chunks_duplicate": self.chunks_duplicate,
            "keys_restored": self.keys_restored,
            "keys_purged": self.keys_purged,
        }
