"""Shared fixtures for the Janus reproduction test suite."""

from __future__ import annotations

import os

import pytest

from repro.core.clock import ManualClock
from repro.core.rules import QoSRule
from repro.core.admission import InMemoryRuleSource
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.rng import RngRegistry


@pytest.fixture
def clock() -> ManualClock:
    return ManualClock()


@pytest.fixture
def sim() -> Simulation:
    return Simulation()


@pytest.fixture
def rng() -> RngRegistry:
    return RngRegistry(seed=42)


@pytest.fixture
def net(sim, rng) -> Network:
    return Network(sim, rng, udp_loss=0.0)


@pytest.fixture
def rule_source() -> InMemoryRuleSource:
    return InMemoryRuleSource({
        "alice": QoSRule("alice", refill_rate=100.0, capacity=1000.0),
        "bob": QoSRule("bob", refill_rate=10.0, capacity=100.0),
        "deny": QoSRule("deny", refill_rate=0.0, capacity=0.0),
    })


@pytest.fixture
def lock_order_graph():
    """Enable the opt-in runtime lock-order detector for one test.

    Installs a process-wide :class:`repro.analysis.LockOrderGraph` so any
    :class:`repro.analysis.InstrumentedLock` constructed inside the test
    records acquisition-order edges and held durations.  When the
    ``JANUS_LOCK_REPORT`` environment variable names a file, the graph's
    report is persisted there on teardown for
    ``janus lint --runtime-report``.
    """
    from repro.analysis import install_graph, uninstall_graph

    graph = install_graph()
    try:
        yield graph
    finally:
        uninstall_graph()
        report_path = os.environ.get("JANUS_LOCK_REPORT")
        if report_path:
            graph.save(report_path)
