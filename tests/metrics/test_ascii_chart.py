"""Tests for ASCII chart rendering."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.ascii_chart import bar_chart, line_chart


class TestBarChart:
    def test_proportional_bars(self):
        text = bar_chart(["a", "b", "c"], [10.0, 20.0, 40.0], width=40)
        lines = text.splitlines()
        counts = [line.count("#") for line in lines]
        assert counts == [10, 20, 40]

    def test_labels_aligned(self):
        text = bar_chart(["short", "a-much-longer-label"], [1.0, 2.0])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_and_units(self):
        text = bar_chart(["x"], [12345.0], title="T:", unit=" rps")
        assert text.startswith("T:")
        assert "12.3k rps" in text

    def test_zero_values_ok(self):
        text = bar_chart(["a", "b"], [0.0, 0.0])
        assert "#" not in text

    @pytest.mark.parametrize("kwargs", [
        {"labels": [], "values": []},
        {"labels": ["a"], "values": [1.0, 2.0]},
        {"labels": ["a"], "values": [1.0], "width": 2},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            bar_chart(**kwargs)


class TestLineChart:
    def test_marks_follow_values(self):
        series = [(0.0, 0.0), (5.0, 50.0), (10.0, 100.0)]
        text = line_chart(series, width=20, height=10)
        lines = [l for l in text.splitlines() if "|" in l]
        # The max point sits on the top row, the min near the bottom.
        assert "*" in lines[0]
        assert "*" in lines[-1]

    def test_two_series_markers(self):
        a = [(0.0, 1.0), (1.0, 1.0)]
        b = [(0.0, 2.0), (1.0, 2.0)]
        text = line_chart(a, second=b, markers="*o")
        assert "*" in text and "o" in text

    def test_axis_labels(self):
        text = line_chart([(2.0, 130.0), (40.0, 100.0)], y_label="rps")
        assert "130" in text
        assert "40" in text.splitlines()[-2]
        assert "rps" in text

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            line_chart([])
        with pytest.raises(ConfigurationError):
            line_chart([(0.0, 1.0)], width=2)

    def test_fig13_shape_renders(self):
        """The burst-then-steady trace renders without error."""
        accepted = [(float(t), 130.0 if t < 25 else 100.0) for t in range(45)]
        rejected = [(float(t), 0.0 if t < 25 else 30.0) for t in range(45)]
        text = line_chart(accepted, second=rejected, title="fig13a")
        assert text.startswith("fig13a")
        assert text.count("\n") > 10
