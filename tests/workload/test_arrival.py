"""Tests for the arrival processes."""

from __future__ import annotations

import itertools
import statistics

import pytest

from repro.core.errors import ConfigurationError
from repro.workload.arrival import NoisyConstantArrivals, PoissonArrivals


class TestPoisson:
    def test_mean_rate(self):
        gaps = list(itertools.islice(PoissonArrivals(100.0, seed=1).gaps(), 20_000))
        assert 1.0 / statistics.mean(gaps) == pytest.approx(100.0, rel=0.05)

    def test_memoryless_cv_near_one(self):
        gaps = list(itertools.islice(PoissonArrivals(50.0, seed=2).gaps(), 20_000))
        cv = statistics.stdev(gaps) / statistics.mean(gaps)
        assert cv == pytest.approx(1.0, abs=0.05)

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)


class TestNoisyConstant:
    def test_mean_rate_near_base(self):
        gen = NoisyConstantArrivals(130.0, noise=0.1, seed=3)
        gaps = list(itertools.islice(gen.gaps(), 20_000))
        assert 1.0 / statistics.mean(gaps) == pytest.approx(130.0, rel=0.05)

    def test_much_smoother_than_poisson(self):
        gaps = list(itertools.islice(
            NoisyConstantArrivals(100.0, noise=0.1, seed=4).gaps(), 20_000))
        cv = statistics.stdev(gaps) / statistics.mean(gaps)
        assert cv < 0.3       # a load generator, not a Poisson process

    def test_epoch_rate_wobbles(self):
        """Per-epoch realized rates spread around the base (the 'noise')."""
        gen = NoisyConstantArrivals(100.0, noise=0.2, epoch=1.0, seed=5)
        gaps = gen.gaps()
        epoch_rates = []
        for _ in range(50):
            total, count = 0.0, 0
            while total < 1.0:
                total += next(gaps)
                count += 1
            epoch_rates.append(count / total)
        assert max(epoch_rates) > 105.0
        assert min(epoch_rates) < 95.0

    @pytest.mark.parametrize("kwargs", [
        {"base_rate": 0.0},
        {"base_rate": 10.0, "noise": 1.0},
        {"base_rate": 10.0, "epoch": 0.0},
    ])
    def test_invalid(self, kwargs):
        with pytest.raises(ConfigurationError):
            NoisyConstantArrivals(**kwargs)
