"""Tests for sliding-window latency observation."""

from __future__ import annotations

import pytest

from repro.core.errors import ConfigurationError
from repro.metrics.windows import SlidingWindowLatency


class TestWindowing:
    def test_statistics_over_live_samples(self, clock):
        window = SlidingWindowLatency(window=10.0, clock=clock)
        for latency in (0.001, 0.002, 0.003):
            window.record(latency)
        assert window.count() == 3
        assert window.mean() == pytest.approx(0.002)
        assert window.percentile(50.0) == pytest.approx(0.002)

    def test_old_samples_expire(self, clock):
        window = SlidingWindowLatency(window=5.0, clock=clock)
        window.record(1.0)          # a terrible outlier
        clock.advance(6.0)
        window.record(0.001)
        assert window.count() == 1
        assert window.mean() == pytest.approx(0.001)

    def test_total_recorded_counts_everything(self, clock):
        window = SlidingWindowLatency(window=1.0, clock=clock)
        for i in range(5):
            if i:
                clock.advance(2.0)      # each record expires the previous
            window.record(0.01)
        assert window.total_recorded == 5
        assert window.count() == 1

    def test_max_samples_bounds_memory(self, clock):
        window = SlidingWindowLatency(window=1e9, max_samples=10, clock=clock)
        for i in range(100):
            window.record(float(i))
        assert window.count() <= 10
        # Oldest evicted first: the survivors are the largest values.
        assert window.percentile(0.0) >= 90.0

    def test_empty_statistics_zero(self, clock):
        window = SlidingWindowLatency(clock=clock)
        assert window.mean() == 0.0
        assert window.percentile(99.0) == 0.0

    @pytest.mark.parametrize("kwargs", [
        {"window": 0.0},
        {"window": 1.0, "max_samples": 0},
    ])
    def test_invalid_construction(self, kwargs):
        with pytest.raises(ConfigurationError):
            SlidingWindowLatency(**kwargs)

    def test_negative_latency_rejected(self, clock):
        window = SlidingWindowLatency(clock=clock)
        with pytest.raises(ConfigurationError):
            window.record(-0.1)


class TestLbIntegration:
    def test_lb_observes_round_trips(self):
        from repro.core.config import ClusterTopology, JanusConfig
        from repro.core.rules import QoSRule
        from repro.server.cluster import SimJanusCluster
        from repro.workload.keygen import KeyCycle, uuid_keys
        from repro.workload.simclient import ClosedLoopClient

        cluster = SimJanusCluster(JanusConfig(topology=ClusterTopology(
            n_routers=2, n_qos_servers=1)))
        keys = uuid_keys(30)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, 1e9, 1e9))
        cluster.prewarm()
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), n_requests=50)
        cluster.sim.run(until=2.0)
        lb_latency = cluster.gateway_lb.latency
        assert lb_latency.total_recorded == 50
        # LB-observed time excludes the client hops: below ~1 ms typically.
        assert 0.0 < lb_latency.mean() < 2e-3
