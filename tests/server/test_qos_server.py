"""Tests for the simulated QoS server node (§III-C)."""

from __future__ import annotations

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import AdmissionConfig, ServerConfig
from repro.core.protocol import QoSRequest, QoSResponse
from repro.core.rules import QoSRule
from repro.server.qos_server import SimQoSServer, background_load
from repro.simnet.engine import Simulation
from repro.simnet.network import Network
from repro.simnet.node import SimNode
from repro.simnet.rng import RngRegistry


@pytest.fixture
def env():
    sim = Simulation()
    rng = RngRegistry(3)
    net = Network(sim, rng, udp_loss=0.0)
    source = InMemoryRuleSource({
        "alice": QoSRule("alice", refill_rate=1e6, capacity=1e6),
        "empty": QoSRule("empty", refill_rate=0.0, capacity=0.0),
    })
    server = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source, rng=rng)
    responses: list[QoSResponse] = []
    net.attach("rr-x", lambda src, p: responses.append(p))
    return sim, net, server, responses


class TestDecisions:
    def test_admit_known_key(self, env):
        sim, net, server, responses = env
        net.udp_send("rr-x", "qos-0", QoSRequest(1, "alice"))
        sim.run(until=0.05)
        assert len(responses) == 1
        assert responses[0].request_id == 1
        assert responses[0].allowed

    def test_deny_empty_rule(self, env):
        sim, net, server, responses = env
        net.udp_send("rr-x", "qos-0", QoSRequest(2, "empty"))
        sim.run(until=0.05)
        assert not responses[0].allowed

    def test_unknown_key_default_rule(self, env):
        sim, net, server, responses = env
        net.udp_send("rr-x", "qos-0", QoSRequest(3, "stranger"))
        sim.run(until=0.05)
        assert not responses[0].allowed     # DENY_ALL default

    def test_first_seen_key_pays_db_fetch(self, env):
        sim, net, server, responses = env
        net.udp_send("rr-x", "qos-0", QoSRequest(1, "alice"))
        sim.run(until=0.05)
        first_latency = responses[0]
        t_first = sim.now
        net.udp_send("rr-x", "qos-0", QoSRequest(2, "alice"))
        sim.run(until=0.1)
        # Can't compare timestamps directly post-hoc; assert via counters:
        assert server.controller.stats.rule_misses == 1
        assert server.controller.stats.rule_hits == 1

    def test_prewarm_skips_db_fetch(self):
        sim = Simulation()
        rng = RngRegistry(4)
        net = Network(sim, rng, udp_loss=0.0)
        source = InMemoryRuleSource({"k": QoSRule("k", 1e6, 1e6)})
        server = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                              rng=rng, warm=True)
        stamps = []
        net.attach("rr-x", lambda src, p: stamps.append(sim.now))
        net.udp_send("rr-x", "qos-0", QoSRequest(1, "k"))
        sim.run(until=0.05)
        # Warm turnaround ~ 2 hops + bursts: well under the rule-fetch time.
        assert stamps[0] < 400e-6

    def test_throughput_counter_window(self, env):
        sim, net, server, responses = env

        def feeder():
            for i in range(100):
                net.udp_send("rr-x", "qos-0", QoSRequest(i, "alice"))
                yield 0.001

        sim.spawn(feeder(), "feed")
        sim.run(until=0.05)
        server.begin_window()
        mid = server.decisions
        sim.run(until=0.2)
        assert server.decisions_in_window() == server.decisions - mid


class TestFailure:
    def test_failed_server_stops_responding(self, env):
        sim, net, server, responses = env
        net.udp_send("rr-x", "qos-0", QoSRequest(1, "alice"))
        sim.run(until=0.05)
        server.fail()
        net.udp_send("rr-x", "qos-0", QoSRequest(2, "alice"))
        sim.run(until=0.1)
        assert len(responses) == 1      # only the pre-failure response
        assert not net.is_attached("qos-0")


class TestMaintenance:
    def test_sync_picks_up_rule_change(self):
        sim = Simulation()
        rng = RngRegistry(5)
        net = Network(sim, rng, udp_loss=0.0)
        source = InMemoryRuleSource({"k": QoSRule("k", 5.0, 50.0)})
        config = ServerConfig(workers=2, admission=AdmissionConfig(
            sync_interval=0.5, checkpoint_interval=10.0))
        server = SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                              config=config, rng=rng)
        net.attach("rr-x", lambda src, p: None)
        net.udp_send("rr-x", "qos-0", QoSRequest(1, "k"))
        sim.run(until=0.2)
        source.put_rule(QoSRule("k", refill_rate=77.0, capacity=700.0))
        sim.run(until=1.2)       # past one sync interval
        bucket = server.controller.bucket_for("k")
        assert bucket.refill_rate == 77.0

    def test_checkpoint_reaches_source(self):
        sim = Simulation()
        rng = RngRegistry(6)
        net = Network(sim, rng, udp_loss=0.0)
        source = InMemoryRuleSource({"k": QoSRule("k", 0.0, 100.0)})
        config = ServerConfig(workers=2, admission=AdmissionConfig(
            sync_interval=50.0, checkpoint_interval=0.5))
        SimQoSServer(sim, net, "qos-0", "c3.xlarge", source,
                     config=config, rng=rng)
        net.attach("rr-x", lambda src, p: None)
        for i in range(5):
            net.udp_send("rr-x", "qos-0", QoSRequest(i, "k"))
        sim.run(until=1.5)
        assert source.get_rule("k").credit == pytest.approx(95.0, abs=0.5)


class TestBackgroundLoad:
    def test_consumes_requested_fraction(self, sim):
        node = SimNode(sim, "n", "c3.xlarge")
        node.begin_window()
        background_load(sim, node, cores_equiv=1.5)
        sim.run(until=0.5)
        assert node.cpu_utilization() == pytest.approx(1.5 / 4, rel=0.05)

    def test_zero_is_noop(self, sim):
        node = SimNode(sim, "n", "c3.xlarge")
        background_load(sim, node, cores_equiv=0.0)
        sim.run(until=0.1)
        assert node.cpu_utilization() == 0.0
