"""Regression gate for the credit-lease plane (PR 7).

Runs the lease-on vs lease-off A/B of :mod:`repro.metrics.leasepath`
over real loopback sockets and writes ``BENCH_lease.json`` at the
repository root for the performance trajectory:

- **hot-key throughput** — 8 closed-loop clients hammering 4 hot keys
  through ``router.qos_exchange``: leased local admission versus the
  PR-3 channel wire path; gate: ≥ 2× the channel path.
- **over-admission bound** — one finite rule hammered with leasing on;
  gate: measured admission beyond ``capacity + refill × elapsed`` must
  stay within the sampled outstanding-grant bound (debit-at-grant).
- **idle added latency** — the interleaved single-client ``GET /qos``
  pair over a cold key set (no key goes hot); gate: lease-enabled p99
  ≤ 10% over the lease-disabled router.

Both wall-clock gates are statements about scheduling more than
arithmetic, so on hosts exposing a single CPU the measurement is still
taken and recorded but the assertions are skipped (the wirepath gate
treats core count the same way).  The over-admission gate is credit
arithmetic and holds on any host.

``LEASE_CHECKS`` (env) scales the per-client check count down for smoke
runs.  Run directly with ``make bench-lease``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.metrics.leasepath import run_lease_ab, write_report

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The ISSUE-7 acceptance bars.
TARGET_SPEEDUP = 2.0
MAX_IDLE_P99_OVERHEAD = 0.10
GATE_CLIENTS = 8
#: Cores needed for the wall-clock assertions to be meaningful.
MIN_CPUS_FOR_GATE = 2

CHECKS_PER_CLIENT = int(os.environ.get("LEASE_CHECKS", "2000"))


@pytest.fixture(scope="module")
def lease_report():
    report = run_lease_ab(
        clients=GATE_CLIENTS,
        checks_per_client=CHECKS_PER_CLIENT)
    write_report(REPO_ROOT / "BENCH_lease.json", report)
    return report


def test_lease_report_written(lease_report, report_sink):
    r = lease_report
    lines = ["Credit-lease plane: local admission vs channel wire path"]
    for p in r.points:
        lines.append(
            f"  {p.arm:>5s} clients={p.clients} hot_keys={p.hot_keys} "
            f"{p.checks_per_sec:>9,.0f} checks/s  "
            f"p50={p.p50_ms:.3f}ms p99={p.p99_ms:.3f}ms  "
            f"local={p.local_admits} asks={p.lease_requests}")
    over = r.overadmission
    lines.append(
        f"  over-admission: allowed={over['allowed_total']} vs bound "
        f"{over['admitted_bound']} (+outstanding ≤ "
        f"{over['outstanding_bound']}); within={over['within_bound']}")
    overhead = r.idle_p99_overhead()
    lines.append(
        f"  speedup @{GATE_CLIENTS} clients: {r.speedup():.2f}x "
        f"(target {TARGET_SPEEDUP}x); idle p99 overhead: "
        f"{overhead * 100.0:+.1f}% "
        f"(limit +{MAX_IDLE_P99_OVERHEAD * 100.0:.0f}%)")
    report_sink("\n".join(lines))
    assert (REPO_ROOT / "BENCH_lease.json").exists()
    # Every configured point ran to completion with real responses.
    assert all(p.checks > 0 and p.checks_per_sec > 0 for p in r.points)
    # The lease arm actually exercised the lease plane.
    lease_point = r.point("lease")
    assert lease_point is not None and lease_point.local_admits > 0
    assert r.speedup() is not None
    assert overhead is not None


def test_lease_throughput_gate(lease_report):
    """Headline: leased local admission ≥ 2× the channel wire path."""
    cpus = os.cpu_count() or 1
    speedup = lease_report.speedup()
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; "
            f"throughput recorded ({speedup:.2f}x) but the "
            f"{TARGET_SPEEDUP}x gate needs real concurrency")
    assert speedup >= TARGET_SPEEDUP, (
        f"lease path only {speedup:.2f}x the channel wire path at "
        f"{GATE_CLIENTS} clients (target {TARGET_SPEEDUP}x)")


def test_overadmission_bound_gate(lease_report):
    """Debit-at-grant: admission beyond the refill budget stays within
    the outstanding-grant bound.  Credit arithmetic — no CPU guard."""
    over = lease_report.overadmission
    assert over, "over-admission measurement missing from the report"
    assert over["within_bound"], (
        f"admitted {over['allowed_total']} checks against a bound of "
        f"{over['admitted_bound']} + outstanding "
        f"{over['outstanding_bound']} (over by {over['over_admission']})")
    # The measurement must have exercised leasing, or the bound is vacuous.
    assert over["lease_grants"] > 0 and over["lease_local_admits"] > 0


def test_lease_idle_latency_gate(lease_report):
    """The lease plane must not tax cold keys: p99 ≤ 10% over no-lease."""
    cpus = os.cpu_count() or 1
    overhead = lease_report.idle_p99_overhead()
    if cpus < MIN_CPUS_FOR_GATE:
        pytest.skip(
            f"host exposes {cpus} CPU(s) < {MIN_CPUS_FOR_GATE}; idle "
            f"overhead recorded ({overhead * 100.0:+.1f}%) but "
            f"sub-millisecond p99s on one core are scheduler noise")
    assert overhead <= MAX_IDLE_P99_OVERHEAD, (
        f"lease-enabled idle p99 is {overhead * 100.0:+.1f}% over the "
        f"lease-disabled router "
        f"(limit +{MAX_IDLE_P99_OVERHEAD * 100.0:.0f}%)")
