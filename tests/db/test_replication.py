"""Tests for Multi-AZ master/standby replication and failover (§III-D)."""

from __future__ import annotations

import pytest

from repro.core.errors import ReplicationError
from repro.core.rules import QoSRule
from repro.db.replication import ReplicatedDatabase
from repro.db.rulestore import RuleStore


@pytest.fixture
def db() -> ReplicatedDatabase:
    return ReplicatedDatabase()


class TestReplication:
    def test_writes_reach_standby(self, db):
        store = RuleStore(db)
        store.put_rule(QoSRule("k", 1.0, 10.0))
        # Verify by failing over and reading from the promoted standby.
        db.fail_master()
        assert store.get_rule("k") is not None

    def test_failover_switches_az(self, db):
        old_master = db.master_name
        new_master = db.fail_master()
        assert new_master != old_master
        assert db.master_name == new_master
        assert db.failovers == 1
        assert not db.has_standby

    def test_double_failure_raises(self, db):
        db.fail_master()
        with pytest.raises(ReplicationError):
            db.fail_master()

    def test_failover_callback_fires(self, db):
        seen = []
        db.on_failover = seen.append
        promoted = db.fail_master()
        assert seen == [promoted]

    def test_writes_after_failover_work(self, db):
        store = RuleStore(db)
        store.put_rule(QoSRule("before", 1.0, 10.0))
        db.fail_master()
        store.put_rule(QoSRule("after", 2.0, 20.0))
        assert store.count() == 2

    def test_launch_standby_copies_state(self, db):
        store = RuleStore(db)
        for i in range(20):
            store.put_rule(QoSRule(f"k{i}", 1.0, 10.0))
        db.fail_master()
        db.launch_standby()
        assert db.has_standby
        # New standby must carry the data: fail over onto it and read.
        db.fail_master()
        assert store.count() == 20

    def test_launch_standby_when_present_rejected(self, db):
        with pytest.raises(ReplicationError):
            db.launch_standby()

    def test_new_standby_receives_subsequent_writes(self, db):
        store = RuleStore(db)
        db.fail_master()
        db.launch_standby()
        store.put_rule(QoSRule("late", 1.0, 10.0))
        db.fail_master()
        assert store.get_rule("late") is not None


class TestEngineCompat:
    def test_statement_counters(self, db):
        RuleStore(db)       # issues CREATE TABLE
        before = db.statements_executed
        db.execute("SELECT COUNT(*) FROM qos_rules")
        assert db.statements_executed == before + 1

    def test_table_names(self, db):
        RuleStore(db)
        assert db.table_names() == ["qos_rules"]

    def test_full_checkpoint_cycle_through_ha(self, db):
        """The §II-D recovery path: credits checkpointed before a database
        failover survive it and seed a replacement QoS server."""
        from repro.core.admission import AdmissionController
        from repro.core.clock import ManualClock
        store = RuleStore(db)
        store.put_rule(QoSRule("k", refill_rate=0.0, capacity=100.0))
        clock = ManualClock()
        controller = AdmissionController(store, clock=clock)
        for _ in range(30):
            controller.check("k")
        controller.checkpoint()
        db.fail_master()
        replacement = AdmissionController(store, clock=clock)
        assert replacement.check("k")
        bucket = replacement.bucket_for("k")
        assert bucket.peek_credit() == pytest.approx(69.0)
