"""Ablation: duplicate-decision suppression (extension vs paper protocol).

The paper's server is stateless with respect to request ids, so a retry
that crosses a delayed response consumes an extra credit.  This ablation
measures the quota error under increasingly marginal timeouts, with and
without the :mod:`repro.core.dedup` extension enabled.
"""

from __future__ import annotations

import pytest

from repro.core.admission import InMemoryRuleSource
from repro.core.config import RouterConfig, ServerConfig
from repro.core.rules import QoSRule
from repro.metrics.report import format_table
from repro.server.qos_server import SimQoSServer
from repro.server.router import SimRequestRouter
from repro.simnet.engine import Simulation
from repro.simnet.network import LatencyModel, Network
from repro.simnet.rng import RngRegistry

N_REQUESTS = 60


def run_case(timeout: float, dedup: bool) -> float:
    """Returns credits consumed per logical request (ideal: 1.0)."""
    sim = Simulation()
    rng = RngRegistry(11)
    # One-way latency around 260 us: aggressive timeouts will retry.
    slow = LatencyModel(floor=230e-6, median_extra=30e-6, sigma=0.4)
    net = Network(sim, rng, internal=slow, udp_loss=0.0)
    source = InMemoryRuleSource(
        {"k": QoSRule("k", refill_rate=0.0, capacity=10_000.0)})
    server = SimQoSServer(
        sim, net, "qos-0", "c3.xlarge", source,
        config=ServerConfig(workers=4,
                            dedup_window=5.0 if dedup else None),
        rng=rng, warm=True)
    router = SimRequestRouter(
        sim, net, "rr-0", "c3.xlarge", ["qos-0"],
        config=RouterConfig(udp_timeout=timeout, max_retries=5), rng=rng)
    completed = []

    def client():
        for _ in range(N_REQUESTS):
            response = yield from router.handle("k")
            completed.append(response)

    sim.spawn(client(), "c")
    sim.run(until=5.0)
    consumed = 10_000.0 - server.controller.bucket_for("k").peek_credit()
    return consumed / len(completed)


@pytest.mark.parametrize("dedup", [False, True],
                         ids=["paper-stateless", "dedup-extension"])
def test_dedup_overconsumption(benchmark, dedup):
    ratio = benchmark.pedantic(run_case, args=(450e-6, dedup),
                               rounds=1, iterations=1)
    if dedup:
        assert ratio == pytest.approx(1.0, abs=0.02)
    else:
        assert ratio > 1.1          # measurable quota over-consumption


def test_dedup_ablation_report(benchmark, report_sink):
    def sweep():
        rows = []
        for timeout_us in (450, 700, 2000):
            plain = run_case(timeout_us * 1e-6, dedup=False)
            fixed = run_case(timeout_us * 1e-6, dedup=True)
            rows.append((timeout_us, f"{plain:.2f}", f"{fixed:.2f}"))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report_sink(format_table(
        ("UDP timeout (us)", "credits/request (paper)",
         "credits/request (dedup)"), rows,
        title="Ablation: duplicate-decision quota error vs timeout "
              "(one-way latency ~260 us; ideal = 1.00)"))
    # Dedup holds the ideal at every timeout; the stateless server's error
    # grows as the timeout tightens toward the network RTT.
    for _, plain, fixed in rows:
        assert float(fixed) == pytest.approx(1.0, abs=0.02)
    assert float(rows[0][1]) > float(rows[-1][1])
