"""Integration tests for the full simulated cluster (Fig. 1)."""

from __future__ import annotations

import pytest

from repro.core.config import ClusterTopology, JanusConfig
from repro.core.rules import QoSRule
from repro.server.cluster import SimJanusCluster
from repro.workload.keygen import KeyCycle, uuid_keys
from repro.workload.simclient import ClosedLoopClient


def build(topology=None, **kwargs) -> tuple[SimJanusCluster, list[str]]:
    config = JanusConfig(topology=topology or ClusterTopology(
        n_routers=2, n_qos_servers=2))
    cluster = SimJanusCluster(config, **kwargs)
    keys = uuid_keys(100)
    for k in keys:
        cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
    cluster.prewarm()
    return cluster, keys


class TestWiring:
    def test_layer_counts(self):
        cluster, _ = build(ClusterTopology(n_routers=3, n_qos_servers=5))
        assert len(cluster.routers) == 3
        assert len(cluster.qos_servers) == 5
        assert len(cluster.gateway_lb.routers) == 3

    def test_endpoint_resolves_to_routers(self):
        cluster, _ = build()
        resolver = cluster.new_resolver()
        assert resolver.resolve_one(cluster.endpoint) in {"rr-0", "rr-1"}

    def test_routers_share_partition_map(self):
        cluster, keys = build(ClusterTopology(n_routers=4, n_qos_servers=3))
        for key in keys[:30]:
            targets = {r.route(key) for r in cluster.routers}
            assert len(targets) == 1

    def test_ha_pairs_created_when_requested(self):
        cluster, _ = build(ClusterTopology(n_routers=1, n_qos_servers=2,
                                           qos_ha=True))
        assert all(pair is not None for pair in cluster.ha_pairs)
        assert cluster.active_qos_server(0).name == "qos-0"


class TestTrafficFlow:
    def test_closed_loop_clients_complete(self):
        cluster, keys = build()
        clients = [ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i),
                                    mode="gateway", n_requests=50)
                   for i in range(3)]
        cluster.sim.run(until=5.0)
        assert all(c.done for c in clients)
        assert sum(len(c.log) for c in clients) == 150
        assert all(r.allowed for c in clients for r in c.log.records)

    def test_dns_mode_clients_complete(self):
        cluster, keys = build()
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="dns", n_requests=40)
        cluster.sim.run(until=5.0)
        assert client.done
        assert len(client.log) == 40

    def test_quota_enforced_end_to_end(self):
        cluster, _ = build()
        cluster.rules.put_rule(
            QoSRule("limited", refill_rate=1.0, capacity=10.0))
        client = ClosedLoopClient(cluster, "c0", lambda: "limited",
                                  mode="gateway", n_requests=40)
        cluster.sim.run(until=5.0)
        # Burst capacity 10 plus ~zero refilled in the short run.
        assert client.log.n_allowed <= 12
        assert client.log.n_rejected >= 28

    def test_throughput_window_measures(self):
        cluster, keys = build()
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway")
        cluster.sim.run(until=0.2)
        cluster.begin_window()
        cluster.sim.run(until=0.6)
        assert cluster.window_seconds() == pytest.approx(0.4)
        assert cluster.router_throughput() > 100
        assert cluster.qos_throughput() > 100
        assert 0.0 < cluster.qos_cpu() <= 1.0
        assert 0.0 < cluster.router_cpu() <= 1.0

    def test_failover_under_traffic(self):
        """Killing an HA master mid-traffic costs at most a TTL window."""
        topo = ClusterTopology(n_routers=1, n_qos_servers=2, qos_ha=True)
        config = JanusConfig(topology=topo, dns_ttl=0.2)
        cluster = SimJanusCluster(config)
        keys = uuid_keys(50)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        client = ClosedLoopClient(cluster, "c0", KeyCycle(keys),
                                  mode="gateway")
        cluster.sim.run(until=1.0)
        cluster.ha_pairs[0].fail_master()
        cluster.sim.run(until=3.0)
        promoted = cluster.active_qos_server(0)
        assert promoted.name == "qos-0-slave"
        assert promoted.decisions > 0
        # Only genuine verdicts after the TTL window: defaults are bounded.
        late = [r for r in client.log.records if r.finished_at > 1.5]
        genuine = [r for r in late if not r.is_default_reply]
        assert len(genuine) > 0.9 * len(late)


class TestMultiProcessModel:
    """``ServerConfig.processes > 1``: the DES model of the process plane."""

    def _build(self, processes=2):
        from repro.core.config import ServerConfig

        config = JanusConfig(
            topology=ClusterTopology(n_routers=1, n_qos_servers=2),
            server=ServerConfig(workers=2, processes=processes))
        cluster = SimJanusCluster(config)
        keys = uuid_keys(60)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        return cluster, keys

    def test_traffic_flows_and_quota_holds(self):
        cluster, keys = self._build()
        clients = [ClosedLoopClient(cluster, f"c{i}", KeyCycle(keys, i),
                                    mode="gateway", n_requests=40)
                   for i in range(2)]
        cluster.sim.run(until=5.0)
        assert all(c.done for c in clients)
        assert all(r.allowed for c in clients for r in c.log.records)

    def test_decisions_spread_across_process_controllers(self):
        from repro.core.hashing import crc32_of

        cluster, keys = self._build(processes=4)
        server = cluster.qos_servers[0]
        assert len(server.controllers) == 4
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway",
                         n_requests=200)
        cluster.sim.run(until=5.0)
        # Each key's bucket lives in exactly the controller its global
        # interleaved shard selects (node i + 2*p of 8, so the intra-node
        # pick is crc32 // 2 mod 4); across 60 uuid keys every shard is
        # populated, and each controller owns() exactly its own keys.
        for p, controller in enumerate(server.controllers):
            assert controller.shard_range == (0 + 2 * p, 8)
            for key in controller.local_keys():
                assert (crc32_of(key) // 2) % 4 == p
                assert controller.owns(key)
        populated = sum(1 for c in server.controllers if c.table_size())
        assert populated == 4
        # The node view aggregates the shards.
        assert server.table_size() == sum(
            c.table_size() for c in server.controllers)

    def test_snapshot_restore_routes_by_shard(self):
        cluster, keys = self._build(processes=2)
        server = cluster.qos_servers[0]
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway",
                         n_requests=100)
        cluster.sim.run(until=5.0)
        snapshots = server.bucket_snapshots()
        assert snapshots
        fresh = cluster.qos_servers[1]
        restored = fresh.restore_snapshots(snapshots)
        assert restored == len(snapshots)

    def test_ha_with_processes_composes(self):
        """HA + processes > 1: replication covers every worker shard.

        The old HAPair replicated one controller per node and the
        cluster rejected the combination outright; replication now goes
        through ``bucket_snapshots``/``restore_snapshots``, so a
        multi-process master's full table reaches the slave and a
        failover loses at most one replication interval of credit.
        """
        from repro.core.config import ServerConfig

        config = JanusConfig(
            topology=ClusterTopology(n_routers=1, n_qos_servers=1,
                                     qos_ha=True),
            server=ServerConfig(workers=2, processes=2,
                                ha_replication_interval=0.5))
        cluster = SimJanusCluster(config)
        keys = uuid_keys(40)
        for k in keys:
            cluster.rules.put_rule(QoSRule(k, refill_rate=1e6, capacity=1e6))
        cluster.prewarm()
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway",
                         n_requests=120)
        cluster.sim.run(until=5.0)
        pair = cluster.ha_pairs[0]
        master, slave = pair.master, pair.slave
        assert pair.replications > 0
        assert len(master.controllers) == 2
        # Every populated master shard replicated to the slave, not
        # just controllers[0].
        assert slave.table_size() == master.table_size()
        promoted = cluster.fail_qos_server(0)
        assert promoted is slave
        assert cluster.active_qos_server(0) is slave
        assert promoted.table_size() == master.table_size()

    def test_resize_still_rejects_ha_pairs(self):
        """The resize path stays precisely scoped to plain servers."""
        from repro.core.errors import ConfigurationError

        cluster, _ = build(ClusterTopology(n_routers=1, n_qos_servers=2,
                                           qos_ha=True))
        with pytest.raises(ConfigurationError, match="HA"):
            cluster.resize_qos(3)

    def test_dead_node_replacement_reseeds_from_snapshot(self):
        """Kill-a-node-mid-burst: remove dead, add replacement, re-seed.

        The simnet mirror of the live dead-node reshard: the replacement
        comes back under the same DNS name with the pre-kill snapshot's
        credit, so the routers never remap and the moved keys keep their
        buckets (loss bounded by the snapshot's age).
        """
        cluster, keys = self._build(processes=2)
        ClosedLoopClient(cluster, "c0", KeyCycle(keys), mode="gateway",
                         n_requests=100)
        cluster.sim.run(until=5.0)
        victim = cluster.qos_servers[0]
        seed = victim.bucket_snapshots()
        assert seed
        report = cluster.fail_qos_server(0, seed_snapshots=seed)
        assert not victim.running
        assert report.servers_retired == (victim.name,)
        replacement = cluster.qos_servers[0]
        assert replacement is not victim
        assert replacement.running
        assert replacement.table_size() == len(seed)
        resolver = cluster.new_resolver()
        assert resolver.resolve_one(
            cluster.qos_service_names[0]) == replacement.name
        # Deterministic mid-burst replay: more traffic flows to the
        # replacement and completes.
        more = ClosedLoopClient(cluster, "c1", KeyCycle(keys), mode="gateway",
                                n_requests=60)
        cluster.sim.run(until=12.0)
        assert more.done
