"""Bench: regenerate Table I (EC2 instance catalog)."""

from __future__ import annotations

from repro.experiments import table1


def test_table1(benchmark, report_sink):
    rows = benchmark(table1.run)
    assert len(rows) == 7
    assert rows[0]["instance"] == "c3.large"
    assert rows[4]["vcpu_cores"] == 32
    report_sink(table1.report())
